"""Node failure/repair traces: deterministic event lists and MTBF sampling.

A failure takes ``nodes`` nodes out of the machine over ``[down_time,
up_time)``.  Traces are plain data — sorted tuples of
:class:`NodeFailure` — so they are picklable (the experiment engine ships
them to pool workers), hashable into cache fingerprints, and replayable
bit-for-bit.

Two sources:

* hand-written event lists (``FailureTrace([NodeFailure(...), ...])``) for
  targeted scenarios and tests;
* :func:`mtbf_trace`, a seeded generator drawing failure arrivals from a
  Poisson process at rate ``total_nodes / mtbf`` (each node fails
  independently with the given mean time between failures) and repair
  durations from an exponential with mean ``mttr`` — the standard renewal
  model of the resource-volatility literature.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True, slots=True)
class NodeFailure:
    """One failure interval: ``nodes`` nodes down over ``[down_time, up_time)``.

    The repair time is part of the event because the simulator's
    information model gives the scheduler a repair ETA the moment the
    failure strikes (the outage becomes a finite capacity reservation in
    the availability profile).
    """

    down_time: float
    up_time: float
    nodes: int

    def __post_init__(self) -> None:
        if self.down_time < 0:
            raise ValueError(f"down_time must be non-negative, got {self.down_time}")
        if self.up_time <= self.down_time:
            raise ValueError(
                f"up_time {self.up_time} must be after down_time {self.down_time}"
            )
        if self.nodes <= 0:
            raise ValueError(f"nodes must be positive, got {self.nodes}")

    @property
    def duration(self) -> float:
        return self.up_time - self.down_time

    @property
    def node_seconds(self) -> float:
        """Capacity lost to this failure (nodes x outage duration)."""
        return self.nodes * self.duration


class FailureTrace:
    """An immutable, time-sorted sequence of :class:`NodeFailure` events."""

    __slots__ = ("_failures",)

    def __init__(self, failures: Iterable[NodeFailure] = ()) -> None:
        self._failures: tuple[NodeFailure, ...] = tuple(
            sorted(failures, key=lambda f: (f.down_time, f.up_time, f.nodes))
        )

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._failures)

    def __iter__(self) -> Iterator[NodeFailure]:
        return iter(self._failures)

    def __bool__(self) -> bool:
        return bool(self._failures)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FailureTrace):
            return NotImplemented
        return self._failures == other._failures

    def __hash__(self) -> int:
        return hash(self._failures)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FailureTrace({len(self._failures)} failures)"

    @property
    def failures(self) -> tuple[NodeFailure, ...]:
        return self._failures

    # -- aggregate queries ----------------------------------------------------

    def max_concurrent_down(self) -> int:
        """Peak number of nodes simultaneously down (event sweep)."""
        events: list[tuple[float, int]] = []
        for f in self._failures:
            events.append((f.down_time, f.nodes))
            events.append((f.up_time, -f.nodes))
        # Repairs apply before failures at the same instant, matching the
        # simulator's NODE_UP-before-NODE_DOWN event ordering.
        events.sort(key=lambda e: (e[0], e[1]))
        down = peak = 0
        for _time, delta in events:
            down += delta
            peak = max(peak, down)
        return peak

    def lost_node_seconds(self) -> float:
        """Total capacity removed by the trace, in node-seconds."""
        return sum(f.node_seconds for f in self._failures)

    def capacity_steps(self, total_nodes: int) -> list[tuple[float, int]]:
        """Capacity as ``(time, capacity_from_time)`` breakpoints.

        The implicit capacity before the first breakpoint is
        ``total_nodes``; suitable for
        :meth:`repro.core.schedule.Schedule.validate`'s ``capacity``
        argument.
        """
        deltas: dict[float, int] = {}
        for f in self._failures:
            deltas[f.down_time] = deltas.get(f.down_time, 0) - f.nodes
            deltas[f.up_time] = deltas.get(f.up_time, 0) + f.nodes
        steps: list[tuple[float, int]] = []
        level = total_nodes
        for time in sorted(deltas):
            if deltas[time] == 0:
                continue
            level += deltas[time]
            steps.append((time, level))
        return steps

    def validate_for(self, total_nodes: int) -> None:
        """Raise ``ValueError`` if the trace can down more nodes than exist."""
        peak = self.max_concurrent_down()
        if peak > total_nodes:
            raise ValueError(
                f"failure trace downs up to {peak} concurrent nodes on a "
                f"{total_nodes}-node machine"
            )

    def fingerprint(self) -> str:
        """Deterministic content digest (experiment-engine cache keys)."""
        hasher = hashlib.sha256()
        for f in self._failures:
            hasher.update(f"{f.down_time!r},{f.up_time!r},{f.nodes}\n".encode("ascii"))
        return hasher.hexdigest()


def mtbf_trace(
    *,
    total_nodes: int,
    horizon: float,
    mtbf: float,
    mttr: float,
    seed: int = 0,
    max_nodes_per_failure: int = 1,
    max_down_fraction: float = 0.5,
) -> FailureTrace:
    """Sample a failure trace from per-node MTBF / MTTR statistics.

    Failure arrivals follow a Poisson process at rate ``total_nodes /
    mtbf`` over ``[0, horizon)``; each failure takes ``1 ..
    max_nodes_per_failure`` nodes (uniform) down for an exponential
    duration of mean ``mttr``.  Draws that would push the concurrently-down
    count above ``max_down_fraction * total_nodes`` are skipped, so the
    machine never loses more than that share of its capacity — mirroring a
    site that escalates to emergency maintenance rather than letting the
    whole system rot.  Fully deterministic for a given ``seed``.
    """
    if total_nodes <= 0:
        raise ValueError(f"total_nodes must be positive, got {total_nodes}")
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    if mtbf <= 0 or mttr <= 0:
        raise ValueError("mtbf and mttr must be positive")
    if not 1 <= max_nodes_per_failure <= total_nodes:
        raise ValueError("max_nodes_per_failure must be in [1, total_nodes]")
    if not 0.0 < max_down_fraction <= 1.0:
        raise ValueError("max_down_fraction must be in (0, 1]")

    rng = random.Random(seed)
    rate = total_nodes / mtbf
    cap = max(1, int(max_down_fraction * total_nodes))
    failures: list[NodeFailure] = []
    active: list[NodeFailure] = []  # repairs pending, for the concurrency cap
    t = 0.0
    while True:
        t += rng.expovariate(rate)
        if t >= horizon:
            break
        nodes = rng.randint(1, max_nodes_per_failure)
        active = [f for f in active if f.up_time > t]
        down = sum(f.nodes for f in active)
        if down + nodes > cap:
            continue  # skip: the site would not tolerate a deeper outage
        repair = rng.expovariate(1.0 / mttr)
        failure = NodeFailure(down_time=t, up_time=t + repair, nodes=nodes)
        failures.append(failure)
        active.append(failure)
    return FailureTrace(failures)

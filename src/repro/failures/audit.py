"""Resilience exactness oracle: audit a simulation run against its failure trace.

The fault-injection subsystem promises *exact* accounting: no job lost or
double-counted across kills and requeues, every execution interval (final
records and interrupted attempts alike) within the machine's time-varying
capacity, and the resilience counters internally consistent.
:func:`audit_run` re-derives all of that from first principles — the job
stream, the failure trace, and the :class:`~repro.core.simulator.
SimulationResult` — and raises :class:`AuditError` on the first violation.

The audit is deliberately independent of the simulator's bookkeeping: it
sweeps raw intervals rather than trusting ``Machine``'s capacity log, so a
bug in either side trips it.  Benches and the chaos CI job run it after
every injected scenario.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids core<->failures cycle)
    from repro.core.job import Job
    from repro.core.simulator import SimulationResult
    from repro.failures.trace import FailureTrace


class AuditError(AssertionError):
    """The run's resilience accounting is inconsistent with its inputs."""


_REL_TOL = 1e-9


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= _REL_TOL * max(1.0, abs(a), abs(b))


def audit_run(
    result: "SimulationResult",
    jobs: Iterable["Job"],
    trace: "FailureTrace",
    total_nodes: int,
    *,
    recovery: str | None = None,
) -> dict[str, float]:
    """Audit ``result`` against the stream and failure trace it came from.

    Checks, raising :class:`AuditError` on the first failure:

    * **conservation** — every submitted job appears exactly once in
      ``schedule`` or ``cancelled_queued``, never both, none invented;
    * **identity** — final records keep the original submission identity
      (submit time, width, estimate), so response times span the original
      submission even across reruns;
    * **attempt ordering** — a job's interrupted attempts and final record
      never overlap and appear in start order;
    * **capacity** — the sweep over *all* execution intervals (final and
      interrupted) never exceeds the trace's time-varying capacity;
    * **counters** — ``lost_node_seconds`` equals the trace total; kill,
      interrupt and abandon counts balance; wasted work and requeue delay
      are non-negative, and exact where the ``recovery`` spec pins them
      down (``"abandon"`` and ``"resubmit*"``).

    Returns the derived tallies (job/kill/interrupt/abandon counts, wasted
    node-seconds recomputed where possible) for tests to assert against.
    """
    stream = list(jobs)
    stream_ids = {job.job_id for job in stream}
    if len(stream_ids) != len(stream):
        raise AuditError("input stream reuses job ids; audit is meaningless")
    originals = {job.job_id: job for job in stream}

    # -- conservation ---------------------------------------------------------
    scheduled_ids = {item.job.job_id for item in result.schedule}
    cancelled_ids = set(result.cancelled_queued)
    if len(result.cancelled_queued) != len(cancelled_ids):
        raise AuditError("cancelled_queued lists a job twice")
    overlap = scheduled_ids & cancelled_ids
    if overlap:
        raise AuditError(
            f"jobs {sorted(overlap)} both scheduled and cancelled-while-queued"
        )
    accounted = scheduled_ids | cancelled_ids
    if accounted != stream_ids:
        lost = sorted(stream_ids - accounted)
        invented = sorted(accounted - stream_ids)
        raise AuditError(
            f"job conservation violated: lost={lost[:5]} invented={invented[:5]}"
        )

    # -- identity -------------------------------------------------------------
    for item in result.schedule:
        original = originals[item.job.job_id]
        if (
            item.job.submit_time != original.submit_time
            or item.job.nodes != original.nodes
            or item.job.estimate != original.estimate
        ):
            raise AuditError(
                f"job {item.job.job_id} lost its submission identity across "
                "recovery (submit time, width and estimate must survive reruns)"
            )

    # -- attempt ordering -----------------------------------------------------
    attempts: dict[int, list[tuple[float, float]]] = {}
    for item in result.interrupted:
        attempts.setdefault(item.job.job_id, []).append(
            (item.start_time, item.end_time)
        )
        if item.job.job_id not in stream_ids:
            raise AuditError(f"interrupted attempt of unknown job {item.job.job_id}")
        if not item.cancelled:
            raise AuditError(
                f"interrupted attempt of job {item.job.job_id} not marked cancelled"
            )
    for job_id, spans in attempts.items():
        ordered = sorted(spans)
        if ordered != spans:
            raise AuditError(f"attempts of job {job_id} out of start order")
        final = result.schedule[job_id] if job_id in result.schedule else None
        if final is not None:
            ordered.append((final.start_time, final.end_time))
        for (s0, e0), (s1, e1) in zip(ordered, ordered[1:]):
            if e0 > s1 + _REL_TOL * max(1.0, abs(e0)):
                raise AuditError(
                    f"attempts of job {job_id} overlap: [{s0}, {e0}) then [{s1}, {e1})"
                )

    # -- capacity sweep -------------------------------------------------------
    intervals = [
        (item.start_time, item.end_time, item.job.nodes)
        for item in list(result.schedule) + list(result.interrupted)
        if item.end_time > item.start_time
    ]
    # Tags order equal-time events: releases (0) before capacity changes (1)
    # before allocations (2) — mirrors Schedule.validate.
    events: list[tuple[float, int, int]] = []
    for start, end, nodes in intervals:
        events.append((start, 2, nodes))
        events.append((end, 0, -nodes))
    for time, level in trace.capacity_steps(total_nodes):
        if level < 0:
            raise AuditError(f"trace drives capacity negative at t={time}")
        events.append((time, 1, level))
    events.sort(key=lambda e: (e[0], e[1]))
    used, cap = 0, total_nodes
    for time, tag, value in events:
        if tag == 1:
            cap = value
        else:
            used += value
        if used > cap:
            raise AuditError(
                f"capacity exceeded at t={time}: {used} nodes in use, "
                f"capacity {cap} (attempts included)"
            )

    # -- counters -------------------------------------------------------------
    if not _close(result.lost_node_seconds, trace.lost_node_seconds()):
        raise AuditError(
            f"lost_node_seconds {result.lost_node_seconds} != trace total "
            f"{trace.lost_node_seconds()}"
        )
    kills = len(result.failure_killed)
    interrupts = len(result.interrupted)
    abandoned = kills - interrupts
    if abandoned < 0:
        raise AuditError(
            f"{interrupts} interrupted attempts but only {kills} failure kills"
        )
    for job_id in result.failure_killed:
        if job_id not in stream_ids:
            raise AuditError(f"failure_killed lists unknown job {job_id}")
    cancelled_records = {
        item.job.job_id for item in result.schedule if item.cancelled
    }
    killed_by_user = set(result.killed_running)
    # Every abandon decision leaves a cancelled final record that no user
    # kill explains.
    failure_cancelled = cancelled_records - killed_by_user
    if recovery == "abandon":
        if interrupts:
            raise AuditError("abandon policy produced interrupted attempts")
        if set(result.failure_killed) - cancelled_records:
            raise AuditError("abandoned job lacks a cancelled final record")
    if result.wasted_node_seconds < -_REL_TOL:
        raise AuditError(f"negative wasted work: {result.wasted_node_seconds}")
    if result.requeue_delay < -_REL_TOL:
        raise AuditError(f"negative requeue delay: {result.requeue_delay}")

    wasted_expected: float | None = None
    if recovery == "abandon":
        wasted_expected = sum(
            (item.end_time - item.start_time) * item.job.nodes
            for item in result.schedule
            if item.cancelled and item.job.job_id in set(result.failure_killed)
        )
    elif recovery is not None and recovery.split(":")[0] == "resubmit":
        if abandoned:
            raise AuditError("resubmit policy abandoned a job")
        wasted_expected = sum(
            (item.end_time - item.start_time) * item.job.nodes
            for item in result.interrupted
        )
    if wasted_expected is not None and not _close(
        result.wasted_node_seconds, wasted_expected
    ):
        raise AuditError(
            f"wasted_node_seconds {result.wasted_node_seconds} != recomputed "
            f"{wasted_expected} under {recovery!r}"
        )

    return {
        "jobs": float(len(stream)),
        "kills": float(kills),
        "interrupted": float(interrupts),
        "abandoned": float(abandoned),
        "failure_cancelled": float(len(failure_cancelled)),
        "wasted_recomputed": (
            wasted_expected if wasted_expected is not None else float("nan")
        ),
    }

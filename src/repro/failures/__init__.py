"""Fault injection: node failure/repair traces and job recovery policies.

Section 2 of the paper reminds the designer that a schedule is subject to
"the sudden failure of a hardware component" and that jobs may "fail to
run".  This package supplies the failure model the core simulator honours:

* :class:`~repro.failures.trace.FailureTrace` — a deterministic list of
  :class:`~repro.failures.trace.NodeFailure` intervals (plus the seeded
  :func:`~repro.failures.trace.mtbf_trace` MTBF/MTTR generator) that the
  simulator merges into its event loop as ``NODE_DOWN`` / ``NODE_UP``
  events;
* :class:`~repro.failures.recovery.RecoveryPolicy` — the pluggable policy
  deciding what happens to a running job killed by a failure
  (:class:`~repro.failures.recovery.AbandonPolicy`,
  :class:`~repro.failures.recovery.ResubmitPolicy`,
  :class:`~repro.failures.recovery.CheckpointRestartPolicy`);
* :func:`~repro.failures.audit.audit_run` — the exactness oracle: no job
  lost or double-counted across kills and requeues, every execution
  interval (final and interrupted) within the time-varying capacity.

The on-line information model: a failure is a *surprise* (schedulers learn
about it only when it happens), but the repair time is known once the node
is down — the resource manager has a repair ETA — so planning disciplines
see the outage as a capacity reservation ``[down, up)`` in the availability
profile and keep backfilling around it.
"""

from repro.failures.recovery import (
    AbandonPolicy,
    CheckpointRestartPolicy,
    RecoveryOutcome,
    RecoveryPolicy,
    ResubmitPolicy,
    recovery_from_spec,
)
from repro.failures.trace import FailureTrace, NodeFailure, mtbf_trace
from repro.failures.audit import audit_run

__all__ = [
    "AbandonPolicy",
    "CheckpointRestartPolicy",
    "FailureTrace",
    "NodeFailure",
    "RecoveryOutcome",
    "RecoveryPolicy",
    "ResubmitPolicy",
    "audit_run",
    "mtbf_trace",
    "recovery_from_spec",
]

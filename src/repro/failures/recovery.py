"""Recovery policies: what happens to a running job killed by a node failure.

The simulator consults exactly one :class:`RecoveryPolicy` per run.  When a
``NODE_DOWN`` event forces a running job off the machine, the policy
receives the *original* job, the wall-clock the interrupted attempt
executed, and the job's cumulative checkpointed progress, and answers with
a :class:`RecoveryOutcome`:

* ``resubmit_at is None`` — **abandon**: the partial execution enters the
  final schedule as a cancelled record and the job is never rerun;
* otherwise — requeue a rerun of ``remaining_runtime`` seconds at
  ``resubmit_at``, carrying ``saved`` seconds of checkpointed progress
  forward (``overhead`` of the rerun is restart replay, not progress).

Three policies cover the design space the resilience literature spans:
lose the work (:class:`AbandonPolicy`), rerun from scratch
(:class:`ResubmitPolicy`), or rerun from the last checkpoint at the price
of a periodic-checkpoint model and a restart overhead
(:class:`CheckpointRestartPolicy`).

Policies are cheap value objects with a canonical ``spec`` string
(``"checkpoint:interval=3600,overhead=60"``) so the experiment engine can
fingerprint them into cache keys and rebuild them inside pool workers —
:func:`recovery_from_spec` is the inverse.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

from repro.core.job import Job


@dataclass(frozen=True, slots=True)
class RecoveryOutcome:
    """The policy's verdict on one interrupted attempt."""

    #: When to resubmit the job (``None`` abandons it).
    resubmit_at: float | None
    #: Execution time of the rerun (includes ``overhead``).
    remaining_runtime: float = 0.0
    #: Cumulative checkpointed progress carried into the rerun.
    saved: float = 0.0
    #: Restart replay included at the head of the rerun; it consumes
    #: machine time without advancing progress.
    overhead: float = 0.0


class RecoveryPolicy(abc.ABC):
    """Decides the fate of jobs interrupted by node failures."""

    #: Canonical spec string (parsable by :func:`recovery_from_spec`);
    #: used in engine cache fingerprints.
    spec: str = "abandon"

    @abc.abstractmethod
    def on_interrupt(
        self,
        job: Job,
        *,
        now: float,
        executed: float,
        saved: float,
        overhead_paid: float,
    ) -> RecoveryOutcome:
        """Handle one interrupted attempt.

        ``job`` is the *original* submission (full runtime), ``executed``
        the wall-clock this attempt ran before the kill, ``saved`` the
        progress checkpointed before this attempt started, and
        ``overhead_paid`` the restart replay the attempt began with.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.spec!r}>"


class AbandonPolicy(RecoveryPolicy):
    """Interrupted jobs are lost: partial execution recorded, no rerun."""

    spec = "abandon"

    def on_interrupt(
        self,
        job: Job,
        *,
        now: float,
        executed: float,
        saved: float,
        overhead_paid: float,
    ) -> RecoveryOutcome:
        return RecoveryOutcome(resubmit_at=None)


class ResubmitPolicy(RecoveryPolicy):
    """Requeue the whole job after ``delay`` seconds; all progress is lost."""

    def __init__(self, delay: float = 0.0) -> None:
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.delay = delay
        self.spec = "resubmit" if delay == 0 else f"resubmit:delay={delay!r}"

    def on_interrupt(
        self,
        job: Job,
        *,
        now: float,
        executed: float,
        saved: float,
        overhead_paid: float,
    ) -> RecoveryOutcome:
        return RecoveryOutcome(
            resubmit_at=now + self.delay,
            remaining_runtime=job.runtime,
            saved=0.0,
            overhead=0.0,
        )


class CheckpointRestartPolicy(RecoveryPolicy):
    """Periodic checkpointing: rerun from the last checkpoint plus overhead.

    The job checkpoints every ``interval`` seconds of *progress*
    (``interval == 0`` models continuous checkpointing); a rerun replays
    ``overhead`` seconds of restart work before resuming, and is requeued
    ``delay`` seconds after the kill.  Work since the last checkpoint —
    and any restart replay in flight — is wasted.
    """

    def __init__(
        self, interval: float = 3600.0, overhead: float = 0.0, delay: float = 0.0
    ) -> None:
        if interval < 0:
            raise ValueError(f"interval must be non-negative, got {interval}")
        if overhead < 0:
            raise ValueError(f"overhead must be non-negative, got {overhead}")
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.interval = interval
        self.overhead = overhead
        self.delay = delay
        parts = [f"interval={interval!r}", f"overhead={overhead!r}"]
        if delay:
            parts.append(f"delay={delay!r}")
        self.spec = "checkpoint:" + ",".join(parts)

    def on_interrupt(
        self,
        job: Job,
        *,
        now: float,
        executed: float,
        saved: float,
        overhead_paid: float,
    ) -> RecoveryOutcome:
        progressed = max(0.0, executed - overhead_paid)
        total = saved + progressed
        if self.interval == 0:
            checkpointed = total
        else:
            checkpointed = math.floor(total / self.interval) * self.interval
        # Progress can only move forward: a kill during restart replay
        # keeps the checkpoint it was replaying towards.
        checkpointed = min(max(checkpointed, saved), job.runtime)
        remaining = job.runtime - checkpointed + self.overhead
        return RecoveryOutcome(
            resubmit_at=now + self.delay,
            remaining_runtime=remaining,
            saved=checkpointed,
            overhead=self.overhead,
        )


def recovery_from_spec(spec: "str | RecoveryPolicy") -> RecoveryPolicy:
    """Build a policy from its canonical spec string.

    Accepted forms: ``"abandon"``, ``"resubmit"``,
    ``"resubmit:delay=30"``, ``"checkpoint:interval=3600,overhead=60"``
    (``delay`` optional on both parametrised forms).  A
    :class:`RecoveryPolicy` instance passes through unchanged.
    """
    if isinstance(spec, RecoveryPolicy):
        return spec
    head, _, tail = spec.partition(":")
    params: dict[str, float] = {}
    if tail:
        for item in tail.split(","):
            key, sep, value = item.partition("=")
            if not sep:
                raise ValueError(f"malformed recovery spec parameter {item!r} in {spec!r}")
            try:
                params[key.strip()] = float(value)
            except ValueError as exc:
                raise ValueError(f"malformed recovery spec {spec!r}: {exc}") from None
    try:
        if head == "abandon":
            if params:
                raise TypeError("abandon takes no parameters")
            return AbandonPolicy()
        if head == "resubmit":
            return ResubmitPolicy(**params)
        if head == "checkpoint":
            return CheckpointRestartPolicy(**params)
    except TypeError as exc:
        raise ValueError(f"malformed recovery spec {spec!r}: {exc}") from None
    raise ValueError(
        f"unknown recovery policy {head!r}; expected abandon, resubmit or checkpoint"
    )

"""Calibrated synthetic stand-in for the CTC SP2 workload trace.

The paper drives its evaluation with the Cornell Theory Center SP2 batch
trace (July 1996 – May 1997, 79,164 jobs, 430-node batch partition).  The
real trace is proprietary-ish (published in the Parallel Workloads Archive,
which we cannot reach offline), so this module generates a synthetic trace
with the *shape* properties the paper's conclusions rest on, following the
published characterisations of the CTC workload (Hotovy, JSSPP'96;
Feitelson's archive notes):

* **widths** concentrated on small counts and powers of two — roughly a
  third of the jobs are serial, the tail reaches the full partition but
  fewer than 0.2 % of jobs exceed 256 nodes (the paper deletes those);
* **runtimes** heavy-tailed over five orders of magnitude (seconds to the
  18 h class limit), modelled as a three-component lognormal mixture;
* **estimates** are LoadLeveler *class limits*: users pick a wall-clock
  class no smaller than their runtime, usually over-conservatively, so
  runtime/estimate ratios are loose and spiky — the property that makes
  backfilling interesting;
* **arrivals** follow a nonhomogeneous Poisson process with daily and
  weekly cycles (day:night and weekday:weekend contrasts), which is what
  makes a Weibull a better interarrival fit than an exponential — the
  paper's Section 6.2 observation;
* **load** calibrated so demand slightly exceeds a 256-node machine
  (the paper's central modification: replaying a 430-node trace on 256
  nodes creates a persistent and growing backlog).

Absolute response times are NOT expected to match the paper (theirs came
from one specific trace); the reproduction targets are the qualitative
relations between algorithms.  See DESIGN.md, substitution 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.job import Job

#: LoadLeveler-style wall-clock classes of the CTC machine (seconds).
CTC_CLASS_LIMITS = (900.0, 3600.0, 10800.0, 21600.0, 43200.0, 64800.0)

#: (width, probability) table for the node-count distribution.  Entries with
#: width ``None`` draw uniformly from the accompanying range.  Calibrated to
#: the published CTC histogram: ~36 % serial, spikes at powers of two,
#: thin tail past 256.
_NODE_TABLE: tuple[tuple[int | tuple[int, int] | None, float], ...] = (
    (1, 0.360),
    (2, 0.065),
    (3, 0.030),
    (4, 0.075),
    ((5, 7), 0.030),
    (8, 0.080),
    ((9, 15), 0.035),
    (16, 0.085),
    ((17, 31), 0.030),
    (32, 0.070),
    ((33, 63), 0.025),
    (64, 0.055),
    ((65, 127), 0.020),
    (128, 0.025),
    ((129, 255), 0.008),
    (256, 0.005),
    ((257, 430), 0.002),
)

#: Lognormal runtime mixture: (weight, median seconds, sigma of log).
_RUNTIME_MIXTURE = (
    (0.30, 180.0, 1.2),
    (0.45, 2400.0, 1.1),
    (0.25, 15000.0, 0.8),
)


@dataclass(slots=True)
class CTCModel:
    """Parameterised CTC-like workload generator.

    The defaults reproduce the trace shape described in the module
    docstring; every knob is exposed so sensitivity studies can vary one
    property at a time.
    """

    #: Mean arrivals per day, averaged over the weekly cycle.
    jobs_per_day: float = 237.0
    #: Widest job the site accepts (the CTC batch partition width).
    max_nodes: int = 430
    #: Wall-clock classes whose limits become user estimates.
    class_limits: tuple[float, ...] = CTC_CLASS_LIMITS
    #: Probability that the user picks the *smallest* admissible class; each
    #: following class is taken with geometrically decaying probability.
    class_tightness: float = 0.45
    #: Peak-hour arrival rate relative to the nightly trough.
    day_night_ratio: float = 3.0
    #: Weekday arrival rate relative to weekend.
    weekday_weekend_ratio: float = 2.2
    #: Number of distinct users; user activity is Zipf-distributed.
    n_users: int = 200
    node_table: tuple[tuple[int | tuple[int, int] | None, float], ...] = _NODE_TABLE
    runtime_mixture: tuple[tuple[float, float, float], ...] = _RUNTIME_MIXTURE

    _widths: np.ndarray = field(init=False, repr=False, default=None)  # type: ignore[assignment]
    _width_probs: np.ndarray = field(init=False, repr=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        total = sum(p for _spec, p in self.node_table)
        if not math.isclose(total, 1.0, rel_tol=1e-6):
            raise ValueError(f"node table probabilities sum to {total}, expected 1")
        if self.jobs_per_day <= 0:
            raise ValueError("jobs_per_day must be positive")
        if not 0 < self.class_tightness <= 1:
            raise ValueError("class_tightness must be in (0, 1]")

    # -- samplers ---------------------------------------------------------------

    def sample_nodes(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` job widths, clipped to ``max_nodes``."""
        specs = [spec for spec, _p in self.node_table]
        probs = np.array([p for _spec, p in self.node_table])
        probs = probs / probs.sum()
        choices = rng.choice(len(specs), size=size, p=probs)
        out = np.empty(size, dtype=np.int64)
        for i, c in enumerate(choices):
            spec = specs[c]
            if isinstance(spec, tuple):
                lo, hi = spec
                out[i] = rng.integers(lo, hi + 1)
            else:
                out[i] = spec
        return np.minimum(out, self.max_nodes)

    def sample_runtimes(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw runtimes from the lognormal mixture, capped at the top class."""
        weights = np.array([w for w, _m, _s in self.runtime_mixture])
        weights = weights / weights.sum()
        comp = rng.choice(len(weights), size=size, p=weights)
        medians = np.array([m for _w, m, _s in self.runtime_mixture])[comp]
        sigmas = np.array([s for _w, _m, s in self.runtime_mixture])[comp]
        runtimes = np.exp(np.log(medians) + sigmas * rng.standard_normal(size))
        return np.clip(runtimes, 1.0, self.class_limits[-1])

    def sample_estimates(self, rng: np.random.Generator, runtimes: np.ndarray) -> np.ndarray:
        """Pick the class limit each user requests for their runtime.

        The user must choose a class at least as large as the real runtime
        (otherwise the job would be killed); the smallest admissible class
        is taken with probability ``class_tightness``, each following class
        with geometrically decaying probability.
        """
        limits = np.asarray(self.class_limits)
        estimates = np.empty_like(runtimes)
        geometric = rng.random(runtimes.size)
        for i, rt in enumerate(runtimes):
            first = int(np.searchsorted(limits, rt, side="left"))
            first = min(first, limits.size - 1)
            span = limits.size - first
            # Inverse-CDF of the truncated geometric distribution.
            u = geometric[i]
            p = self.class_tightness
            norm = 1.0 - (1.0 - p) ** span
            k = int(math.floor(math.log1p(-u * norm) / math.log1p(-p))) if p < 1.0 else 0
            estimates[i] = limits[min(first + k, limits.size - 1)]
        return estimates

    def arrival_rate(self, t: float) -> float:
        """Arrival rate (jobs/second) at trace-relative time ``t``.

        The trace starts 00:00 on a Monday.  The daily cycle peaks around
        14:00; the weekly cycle suppresses Saturday/Sunday.
        """
        base = self.jobs_per_day / 86400.0
        hour = (t % 86400.0) / 3600.0
        day = int(t // 86400.0) % 7
        d = self.day_night_ratio
        daily = (2.0 / (1.0 + d)) * (1.0 + (d - 1.0) / 2.0 * (1.0 - math.cos(2.0 * math.pi * (hour - 2.0) / 24.0)))
        w = self.weekday_weekend_ratio
        weekly = (7.0 * w) / (5.0 * w + 2.0) if day < 5 else 7.0 / (5.0 * w + 2.0)
        return base * daily * weekly

    def sample_arrivals(self, rng: np.random.Generator, n_jobs: int) -> np.ndarray:
        """Arrival instants via thinning of a nonhomogeneous Poisson process."""
        peak = self.jobs_per_day / 86400.0 * self.day_night_ratio * 1.2
        arrivals = np.empty(n_jobs)
        t = 0.0
        i = 0
        # Draw exponential gaps in blocks to amortise RNG overhead.
        while i < n_jobs:
            block = max(1024, (n_jobs - i) * 2)
            gaps = rng.exponential(1.0 / peak, size=block)
            accept = rng.random(block)
            for gap, u in zip(gaps, accept):
                t += gap
                if u <= self.arrival_rate(t) / peak:
                    arrivals[i] = t
                    i += 1
                    if i == n_jobs:
                        break
        return arrivals

    def sample_users(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Zipf-distributed user ids in ``[0, n_users)``."""
        ranks = np.arange(1, self.n_users + 1, dtype=np.float64)
        probs = 1.0 / ranks
        probs /= probs.sum()
        return rng.choice(self.n_users, size=size, p=probs)

    # -- entry point --------------------------------------------------------------

    def generate(self, n_jobs: int, seed: int = 0) -> list[Job]:
        """Generate a full synthetic trace of ``n_jobs`` jobs."""
        if n_jobs < 0:
            raise ValueError("n_jobs must be non-negative")
        if n_jobs == 0:
            return []
        rng = np.random.default_rng(seed)
        arrivals = self.sample_arrivals(rng, n_jobs)
        nodes = self.sample_nodes(rng, n_jobs)
        runtimes = self.sample_runtimes(rng, n_jobs)
        estimates = self.sample_estimates(rng, runtimes)
        users = self.sample_users(rng, n_jobs)
        return [
            Job(
                job_id=i,
                submit_time=float(arrivals[i]),
                nodes=int(nodes[i]),
                runtime=float(runtimes[i]),
                estimate=float(estimates[i]),
                user=int(users[i]),
            )
            for i in range(n_jobs)
        ]


#: Number of jobs in the paper's CTC workload (Table 1).
PAPER_CTC_JOBS = 79_164


def ctc_like_workload(n_jobs: int = PAPER_CTC_JOBS, seed: int = 0, **overrides: object) -> list[Job]:
    """Generate a CTC-like trace with the default calibration.

    Keyword overrides are forwarded to :class:`CTCModel` — e.g.
    ``ctc_like_workload(5000, seed=7, jobs_per_day=300)``.
    """
    return CTCModel(**overrides).generate(n_jobs, seed=seed)  # type: ignore[arg-type]

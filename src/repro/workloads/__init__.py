"""Workload substrate: traces, models and generators (Section 6).

The paper evaluates on three workloads (Table 1):

* the **CTC trace** — 79,164 batch jobs from the Cornell Theory Center SP2,
  July 1996 – May 1997, with jobs wider than 256 nodes removed;
* a **probability-distribution workload** — 50,000 jobs sampled from a
  Weibull interarrival fit plus binned (nodes, requested time, runtime)
  histograms extracted from the CTC trace (Section 6.2);
* a **randomized workload** — 50,000 jobs with uniformly distributed
  parameters per Table 2 (Section 6.3).

We do not ship the proprietary CTC trace; :mod:`repro.workloads.swf` reads
the real thing (Standard Workload Format, as published in Feitelson's
Parallel Workloads Archive) if you have it, and
:mod:`repro.workloads.ctc` generates a calibrated synthetic stand-in with
the same shape properties (see DESIGN.md, substitution 1).
"""

from repro.workloads.swf import (
    ParseReport,
    SWFField,
    parse_swf,
    read_swf,
    read_swf_with_header,
    write_swf,
)
from repro.workloads.ctc import CTCModel, ctc_like_workload
from repro.workloads.probabilistic import ProbabilisticModel
from repro.workloads.randomized import RandomizedModel, randomized_workload
from repro.workloads.transforms import (
    cap_nodes,
    renumber,
    scale_interarrival,
    take_prefix,
    with_exact_estimates,
    with_scaled_estimates,
)
from repro.workloads.stats import WorkloadStats, workload_stats
from repro.workloads.goodness import (
    KSResult,
    compare_interarrival_models,
    ks_test,
    weibull_ks,
)
from repro.workloads.feedback import (
    ClosedLoopResult,
    UserProfile,
    default_population,
    run_closed_loop,
)

__all__ = [
    "CTCModel",
    "ClosedLoopResult",
    "KSResult",
    "ParseReport",
    "ProbabilisticModel",
    "RandomizedModel",
    "SWFField",
    "UserProfile",
    "WorkloadStats",
    "cap_nodes",
    "compare_interarrival_models",
    "ctc_like_workload",
    "default_population",
    "ks_test",
    "parse_swf",
    "randomized_workload",
    "read_swf",
    "read_swf_with_header",
    "renumber",
    "run_closed_loop",
    "scale_interarrival",
    "take_prefix",
    "weibull_ks",
    "with_exact_estimates",
    "with_scaled_estimates",
    "workload_stats",
    "write_swf",
]

"""The probability-distribution workload model (Section 6.2).

"An analysis of the CTC workload trace yields that a Weibull distribution
matches best the submission times of the jobs in the trace.  It is
difficult to find a suitable distribution for the other parameters.
Therefore, bins are created for every possible requested resource number
(between 1 and 256), various ranges of requested time and of actual
execution length.  Then probability values are calculated for each bin from
the CTC trace.  Randomized values are used and associated to the bins
according to their probability."

:class:`ProbabilisticModel` implements exactly this two-part construction:

* interarrival times: a Weibull distribution fitted by maximum likelihood
  to the source trace's interarrival gaps (pure-NumPy Newton iteration, no
  SciPy dependency);
* job parameters: a joint histogram over ``(nodes, requested-time range,
  runtime range)`` cells with geometric time-range boundaries; sampling
  picks a cell by its empirical probability, then draws the two times
  uniformly inside their ranges (runtime capped at the drawn estimate, as
  in the source trace where the limit is enforced).

``fit`` + ``sample`` round-trips a trace into "a workload that is very
similar to the [source] data set" while decoupling it from the source's
specific job sequence — the paper's answer to the limited length of real
traces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.job import Job


@dataclass(frozen=True, slots=True)
class WeibullFit:
    """Weibull(shape, scale) parameters and fit diagnostics."""

    shape: float
    scale: float
    n_samples: int
    log_likelihood: float

    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return self.scale * rng.weibull(self.shape, size=size)


def fit_weibull(samples: Sequence[float] | np.ndarray, *, tol: float = 1e-10, max_iter: int = 200) -> WeibullFit:
    """Maximum-likelihood Weibull fit.

    Solves the profile-likelihood equation for the shape ``k``::

        1/k = sum(x^k ln x) / sum(x^k) - mean(ln x)

    by Newton iteration with a bisection fallback, then sets the scale to
    ``(mean(x^k))^(1/k)``.  Zero samples are excluded (a zero interarrival
    gap carries no information about the continuous distribution).
    """
    x = np.asarray(samples, dtype=np.float64)
    x = x[x > 0]
    if x.size < 2:
        raise ValueError(f"need at least 2 positive samples, got {x.size}")
    logx = np.log(x)
    mean_logx = float(logx.mean())

    def g(k: float) -> float:
        xk = np.power(x, k)
        return float((xk * logx).sum() / xk.sum() - mean_logx - 1.0 / k)

    # Bracket the root: g is increasing in k, g(k) -> -inf as k -> 0+.
    lo, hi = 1e-3, 1.0
    while g(hi) < 0 and hi < 1e3:
        lo, hi = hi, hi * 2.0
    k = 0.5 * (lo + hi)
    for _ in range(max_iter):
        val = g(k)
        if abs(val) < tol:
            break
        # Numeric derivative; fall back to bisection if the step escapes the
        # bracket (g is monotone, so the bracket always contains the root).
        eps = max(1e-8, 1e-8 * k)
        deriv = (g(k + eps) - val) / eps
        if val < 0:
            lo = k
        else:
            hi = k
        step = k - val / deriv if deriv > 0 else None
        k = step if step is not None and lo < step < hi else 0.5 * (lo + hi)

    scale = float(np.power(np.power(x, k).mean(), 1.0 / k))
    loglik = float(
        x.size * (math.log(k) - k * math.log(scale))
        + (k - 1.0) * logx.sum()
        - np.power(x / scale, k).sum()
    )
    return WeibullFit(shape=float(k), scale=scale, n_samples=int(x.size), log_likelihood=loglik)


def geometric_edges(max_value: float, *, base: float = 2.0, first: float = 60.0) -> np.ndarray:
    """Time-range boundaries ``[0, first, first*base, ...]`` covering ``max_value``."""
    if max_value <= 0:
        return np.array([0.0, first])
    edges = [0.0, first]
    while edges[-1] < max_value:
        edges.append(edges[-1] * base)
    return np.asarray(edges)


class ProbabilisticModel:
    """Weibull interarrivals + joint (nodes, estimate-range, runtime-range) bins."""

    def __init__(
        self,
        weibull: WeibullFit,
        cells: np.ndarray,
        probabilities: np.ndarray,
        estimate_edges: np.ndarray,
        runtime_edges: np.ndarray,
    ) -> None:
        self.weibull = weibull
        self._cells = cells                # (n_cells, 3): nodes, est_bin, run_bin
        self._probabilities = probabilities
        self.estimate_edges = estimate_edges
        self.runtime_edges = runtime_edges

    # -- fitting -----------------------------------------------------------------

    @classmethod
    def fit(
        cls,
        jobs: Sequence[Job],
        *,
        time_bin_base: float = 2.0,
        first_bin: float = 60.0,
    ) -> "ProbabilisticModel":
        """Extract the statistical model from a source trace."""
        if len(jobs) < 3:
            raise ValueError("need at least 3 jobs to fit the model")
        ordered = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
        submits = np.array([j.submit_time for j in ordered])
        gaps = np.diff(submits)
        weibull = fit_weibull(gaps[gaps > 0])

        estimates = np.array([j.estimated_runtime for j in ordered])
        runtimes = np.array([j.runtime for j in ordered])
        nodes = np.array([j.nodes for j in ordered])
        est_edges = geometric_edges(float(estimates.max()), base=time_bin_base, first=first_bin)
        run_edges = geometric_edges(float(runtimes.max()), base=time_bin_base, first=first_bin)
        est_bins = np.clip(np.searchsorted(est_edges, estimates, side="left") - 1, 0, None)
        run_bins = np.clip(np.searchsorted(run_edges, runtimes, side="left") - 1, 0, None)

        keys = np.stack([nodes, est_bins, run_bins], axis=1)
        cells, counts = np.unique(keys, axis=0, return_counts=True)
        probabilities = counts / counts.sum()
        return cls(weibull, cells, probabilities, est_edges, run_edges)

    # -- sampling -----------------------------------------------------------------

    def sample(self, n_jobs: int, seed: int = 0) -> list[Job]:
        """Draw a fresh workload of ``n_jobs`` jobs from the fitted model."""
        if n_jobs < 0:
            raise ValueError("n_jobs must be non-negative")
        if n_jobs == 0:
            return []
        rng = np.random.default_rng(seed)
        gaps = self.weibull.sample(rng, n_jobs)
        submits = np.cumsum(gaps)
        picks = rng.choice(len(self._probabilities), size=n_jobs, p=self._probabilities)
        u_est = rng.random(n_jobs)
        u_run = rng.random(n_jobs)
        jobs: list[Job] = []
        for i in range(n_jobs):
            node_count, est_bin, run_bin = self._cells[picks[i]]
            est_lo, est_hi = self._bin_range(self.estimate_edges, int(est_bin))
            run_lo, run_hi = self._bin_range(self.runtime_edges, int(run_bin))
            estimate = est_lo + u_est[i] * (est_hi - est_lo)
            runtime = run_lo + u_run[i] * (run_hi - run_lo)
            # The source machine kills jobs at the limit, so realised
            # runtimes never exceed the estimate.
            runtime = min(runtime, estimate)
            runtime = max(runtime, 1.0)
            estimate = max(estimate, runtime)
            jobs.append(
                Job(
                    job_id=i,
                    submit_time=float(submits[i]),
                    nodes=int(node_count),
                    runtime=float(runtime),
                    estimate=float(estimate),
                )
            )
        return jobs

    @staticmethod
    def _bin_range(edges: np.ndarray, index: int) -> tuple[float, float]:
        index = min(index, len(edges) - 2)
        return float(edges[index]), float(edges[index + 1])

    # -- diagnostics ----------------------------------------------------------------

    @property
    def n_cells(self) -> int:
        return len(self._probabilities)

    def cell_table(self) -> list[tuple[int, int, int, float]]:
        """(nodes, estimate_bin, runtime_bin, probability) rows, most likely first."""
        order = np.argsort(-self._probabilities)
        return [
            (
                int(self._cells[i][0]),
                int(self._cells[i][1]),
                int(self._cells[i][2]),
                float(self._probabilities[i]),
            )
            for i in order
        ]

"""Command line: ``repro-workload`` — inspect, generate and convert workloads.

Subcommands::

    repro-workload describe trace.swf          # stats + model fit + cycles
    repro-workload describe --synthetic ctc --jobs 5000
    repro-workload generate ctc out.swf --jobs 5000 --seed 7
    repro-workload generate randomized out.swf --jobs 2000
    repro-workload resample trace.swf out.swf --jobs 10000   # Section 6.2

The `describe` report is the verification step Section 6.2 demands before
trusting a model: marginals, interarrival model comparison (Weibull vs
exponential), and the daily/weekly cycles.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.job import Job


def _load(args: argparse.Namespace) -> list[Job]:
    from repro.workloads.ctc import ctc_like_workload
    from repro.workloads.randomized import randomized_workload
    from repro.workloads.swf import ParseReport, read_swf

    if args.trace is not None:
        report = ParseReport()
        jobs = read_swf(args.trace, report=report)
        # Surface what lenient parsing dropped before any statistics are
        # computed over the (possibly shrunk) stream.
        print(f"--- ingestion ({args.trace}) ---")
        print(report.describe())
        print()
        return jobs
    if args.synthetic == "ctc":
        return ctc_like_workload(args.jobs, seed=args.seed)
    if args.synthetic == "randomized":
        return randomized_workload(args.jobs, seed=args.seed)
    raise SystemExit("describe needs a trace path or --synthetic")


def cmd_describe(args: argparse.Namespace) -> int:
    from repro.workloads.cycles import (
        DAY_LABELS,
        HOUR_LABELS,
        format_profile,
        hourly_profile,
        peak_to_trough,
        weekday_profile,
    )
    from repro.workloads.goodness import compare_interarrival_models
    from repro.workloads.stats import workload_stats

    jobs = _load(args)
    if not jobs:
        print("empty workload", file=sys.stderr)
        return 1
    print(f"--- statistics ({len(jobs)} jobs) ---")
    print(workload_stats(jobs, args.nodes).describe())

    try:
        cmp = compare_interarrival_models(jobs)
        print("\n--- interarrival model (Section 6.2) ---")
        print(
            f"Weibull(shape={cmp.weibull.shape:.3f}, scale={cmp.weibull.scale:.1f}s)  "
            f"KS={cmp.weibull_ks.statistic:.4f}"
        )
        print(
            f"Exponential(scale={cmp.exponential_scale:.1f}s)           "
            f"KS={cmp.exponential_ks.statistic:.4f}"
        )
        verdict = "Weibull" if cmp.weibull_preferred else "Exponential"
        print(f"preferred: {verdict} (log-likelihood advantage "
              f"{cmp.loglik_advantage:+.1f})")
    except ValueError as exc:
        print(f"\n(interarrival model skipped: {exc})")

    hourly = hourly_profile(jobs)
    weekly = weekday_profile(jobs)
    print(f"\n--- daily cycle (peak/trough {peak_to_trough(hourly):.1f}x) ---")
    print(format_profile(hourly, HOUR_LABELS))
    print(f"\n--- weekly cycle (peak/trough {peak_to_trough(weekly):.1f}x) ---")
    print(format_profile(weekly, DAY_LABELS))
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    from repro.workloads.ctc import ctc_like_workload
    from repro.workloads.randomized import randomized_workload
    from repro.workloads.swf import write_swf

    if args.model == "ctc":
        jobs = ctc_like_workload(args.jobs, seed=args.seed)
        header = f"synthetic CTC-like workload, {args.jobs} jobs, seed {args.seed}"
    else:
        jobs = randomized_workload(args.jobs, seed=args.seed)
        header = f"randomized workload (Table 2), {args.jobs} jobs, seed {args.seed}"
    write_swf(jobs, args.output, header=header)
    print(f"wrote {len(jobs)} jobs to {args.output}")
    return 0


def cmd_resample(args: argparse.Namespace) -> int:
    from repro.workloads.probabilistic import ProbabilisticModel
    from repro.workloads.swf import read_swf, write_swf

    source = read_swf(args.trace)
    model = ProbabilisticModel.fit(source)
    jobs = model.sample(args.jobs, seed=args.seed)
    write_swf(
        jobs,
        args.output,
        header=(
            f"Section 6.2 resample of {args.trace} "
            f"({model.n_cells} cells, Weibull shape {model.weibull.shape:.3f})"
        ),
    )
    print(f"fitted {model.n_cells} cells; wrote {len(jobs)} jobs to {args.output}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-workload", description="Workload inspection and generation."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    describe = sub.add_parser("describe", help="statistics, model fit and cycles")
    describe.add_argument("trace", nargs="?", type=Path, default=None)
    describe.add_argument("--synthetic", choices=("ctc", "randomized"), default=None)
    describe.add_argument("--jobs", type=int, default=5000)
    describe.add_argument("--seed", type=int, default=0)
    describe.add_argument("--nodes", type=int, default=256)
    describe.set_defaults(func=cmd_describe)

    generate = sub.add_parser("generate", help="write a synthetic workload as SWF")
    generate.add_argument("model", choices=("ctc", "randomized"))
    generate.add_argument("output", type=Path)
    generate.add_argument("--jobs", type=int, default=5000)
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(func=cmd_generate)

    resample = sub.add_parser(
        "resample", help="fit the Section 6.2 model to a trace and sample"
    )
    resample.add_argument("trace", type=Path)
    resample.add_argument("output", type=Path)
    resample.add_argument("--jobs", type=int, default=5000)
    resample.add_argument("--seed", type=int, default=0)
    resample.set_defaults(func=cmd_resample)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

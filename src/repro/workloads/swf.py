"""Standard Workload Format (SWF) reader and writer.

The Parallel Workloads Archive [1] — cited by the paper as the source of
real traces — publishes every trace (including the CTC SP2 trace the paper
uses) in the Standard Workload Format: one job per line, 18
whitespace-separated fields, ``;``-prefixed header comments.  This module
converts between SWF and :class:`repro.core.job.Job` streams, so the real
CTC trace can be dropped into every experiment unchanged.

Field semantics follow the archive definition; values of ``-1`` mean
"unknown".  We map:

* submit time  <- field 2 (seconds since trace start),
* runtime      <- field 4 (realised wall-clock seconds),
* nodes        <- field 8 (requested processors), falling back to field 5
  (allocated processors) when the request is unknown — the paper's rigid
  job model needs exactly one width per job,
* estimate     <- field 9 (requested/limit time), ``None`` when unknown,
* user         <- field 12.

Everything else rides along in ``Job.meta`` so a read-write round trip
preserves the trace.

[1] D.G. Feitelson.  Parallel Workloads Archive.
    https://www.cs.huji.ac.il/labs/parallel/workload/
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping, TextIO

from repro.core.job import Job


class SWFField(enum.IntEnum):
    """Column indices of the 18 SWF fields."""

    JOB_NUMBER = 0
    SUBMIT_TIME = 1
    WAIT_TIME = 2
    RUN_TIME = 3
    ALLOCATED_PROCESSORS = 4
    AVERAGE_CPU_TIME = 5
    USED_MEMORY = 6
    REQUESTED_PROCESSORS = 7
    REQUESTED_TIME = 8
    REQUESTED_MEMORY = 9
    STATUS = 10
    USER_ID = 11
    GROUP_ID = 12
    EXECUTABLE = 13
    QUEUE = 14
    PARTITION = 15
    PRECEDING_JOB = 16
    THINK_TIME = 17


#: Meta keys for the SWF fields that Job does not model directly.
_META_FIELDS = {
    "wait_time": SWFField.WAIT_TIME,
    "average_cpu_time": SWFField.AVERAGE_CPU_TIME,
    "used_memory": SWFField.USED_MEMORY,
    "requested_memory": SWFField.REQUESTED_MEMORY,
    "status": SWFField.STATUS,
    "group_id": SWFField.GROUP_ID,
    "executable": SWFField.EXECUTABLE,
    "queue": SWFField.QUEUE,
    "partition": SWFField.PARTITION,
    "preceding_job": SWFField.PRECEDING_JOB,
    "think_time": SWFField.THINK_TIME,
}


class SWFParseError(ValueError):
    """Raised when a line is not valid SWF."""


class _RowProblem(ValueError):
    """Internal: one unusable data row, tagged with its report category."""

    def __init__(self, category: str, message: str) -> None:
        self.category = category
        super().__init__(message)


@dataclass(slots=True)
class ParseReport:
    """What lenient SWF parsing silently did to the trace.

    Real archive traces carry cancelled-before-start jobs (negative
    runtime), rows with unknown width on both processor fields, torn or
    non-numeric lines, and submissions recorded out of order.  Lenient
    parsing has always dropped the unusable ones; this report makes the
    damage visible — counts per category plus the first
    :data:`MAX_EXAMPLES` offending line numbers — so an operator can
    decide whether a trace is trustworthy instead of discovering
    silently-shrunk workloads downstream.

    ``out_of_order_submit`` rows are *counted but kept*: the readers sort
    by submission anyway, so ordering is an anomaly worth flagging, not a
    reason to drop data.
    """

    #: Offending line numbers retained per category.
    MAX_EXAMPLES = 5

    #: Data lines seen (blank lines and ``;`` comments excluded).
    total_lines: int = 0
    #: Jobs successfully parsed (out-of-order rows included).
    parsed: int = 0
    #: Torn/non-numeric rows, or negative submit times.
    malformed: int = 0
    #: Rows with ``runtime < 0`` (cancelled before start).
    negative_runtime: int = 0
    #: Rows with no positive width on either processor field.
    zero_width: int = 0
    #: Rows submitted earlier than a preceding row (kept, not dropped).
    out_of_order_submit: int = 0
    #: First offending line numbers, per category.
    examples: dict[str, list[int]] = field(default_factory=dict)

    @property
    def dropped(self) -> int:
        return self.malformed + self.negative_runtime + self.zero_width

    @property
    def clean(self) -> bool:
        return self.dropped == 0 and self.out_of_order_submit == 0

    def note(self, category: str, lineno: int) -> None:
        setattr(self, category, getattr(self, category) + 1)
        lines = self.examples.setdefault(category, [])
        if len(lines) < self.MAX_EXAMPLES:
            lines.append(lineno)

    def describe(self) -> str:
        lines = [
            f"parsed {self.parsed}/{self.total_lines} data line(s)"
            + ("" if self.dropped else ", nothing dropped")
        ]
        for category, label in (
            ("malformed", "malformed (torn/non-numeric/negative submit)"),
            ("negative_runtime", "negative runtime (cancelled before start)"),
            ("zero_width", "zero width (no positive processor count)"),
            ("out_of_order_submit", "out-of-order submit (kept, re-sorted)"),
        ):
            count = getattr(self, category)
            if count:
                where = ", ".join(str(n) for n in self.examples.get(category, []))
                more = "..." if count > self.MAX_EXAMPLES else ""
                lines.append(f"  {label}: {count}  (lines {where}{more})")
        return "\n".join(lines)


@dataclass(frozen=True, slots=True)
class SWFHeader:
    """Parsed ``;``-comment header of an SWF file.

    The archive defines a set of standard header fields; the ones relevant
    to this library are surfaced as typed attributes, everything else is
    kept verbatim in :attr:`fields`.
    """

    fields: Mapping[str, str]

    @property
    def max_nodes(self) -> int | None:
        raw = self.fields.get("MaxNodes") or self.fields.get("MaxProcs")
        try:
            return int(raw) if raw is not None else None
        except ValueError:
            return None

    @property
    def unix_start_time(self) -> int | None:
        raw = self.fields.get("UnixStartTime")
        try:
            return int(raw) if raw is not None else None
        except ValueError:
            return None

    @property
    def computer(self) -> str | None:
        return self.fields.get("Computer")

    @property
    def start_weekday(self) -> int | None:
        """Day-of-week of trace time 0 (0 = Monday), derived from
        ``UnixStartTime`` — needed to align :class:`TimeWindow`-based
        policies with a real trace's calendar."""
        start = self.unix_start_time
        if start is None:
            return None
        # The Unix epoch (1970-01-01) was a Thursday = weekday 3.
        return (3 + start // 86_400) % 7


def parse_swf_header(lines: Iterable[str]) -> SWFHeader:
    """Extract ``; Key: Value`` header fields from SWF comment lines."""
    fields: dict[str, str] = {}
    for line in lines:
        text = line.strip()
        if not text.startswith(";"):
            continue
        body = text.lstrip(";").strip()
        if ":" not in body:
            continue
        key, _, value = body.partition(":")
        key = key.strip()
        if key and key not in fields:
            fields[key] = value.strip()
    return SWFHeader(fields=fields)


def read_swf_with_header(
    path: str | Path, *, strict: bool = False
) -> tuple[list[Job], SWFHeader, ParseReport]:
    """Read an SWF file returning the jobs, the header and a parse report.

    The :class:`ParseReport` records what lenient parsing dropped (and
    how many rows arrived out of submission order); ``repro-workload
    describe`` prints it.
    """
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        lines = handle.readlines()
    header = parse_swf_header(line for line in lines if line.lstrip().startswith(";"))
    report = ParseReport()
    jobs = sorted(
        parse_swf(lines, strict=strict, report=report),
        key=lambda j: (j.submit_time, j.job_id),
    )
    return jobs, header, report


def parse_swf(
    lines: Iterable[str],
    *,
    strict: bool = False,
    report: ParseReport | None = None,
) -> Iterator[Job]:
    """Parse SWF text into jobs, skipping comments and malformed rows.

    With ``strict=True`` malformed rows raise :class:`SWFParseError` instead
    of being skipped.  Jobs with unknown width on both processor fields, or
    with negative runtimes (cancelled before start), are treated as
    malformed: the paper's rigid model cannot schedule them.

    A caller-supplied :class:`ParseReport` is filled in as the stream is
    consumed — counts of dropped rows per category, out-of-order
    submissions (counted but kept), and the first offending line numbers.
    """
    last_submit = float("-inf")
    for lineno, line in enumerate(lines, start=1):
        text = line.strip()
        if not text or text.startswith(";"):
            continue
        if report is not None:
            report.total_lines += 1
        fields = text.split()
        if len(fields) < 18:
            if strict:
                raise SWFParseError(f"line {lineno}: expected 18 fields, got {len(fields)}")
            if report is not None:
                report.note("malformed", lineno)
            continue
        try:
            job = _job_from_fields(fields)
        except _RowProblem as exc:
            if strict:
                raise SWFParseError(f"line {lineno}: {exc}") from exc
            if report is not None:
                report.note(exc.category, lineno)
            continue
        except (ValueError, IndexError) as exc:
            if strict:
                raise SWFParseError(f"line {lineno}: {exc}") from exc
            if report is not None:
                report.note("malformed", lineno)
            continue
        if job is not None:
            if report is not None:
                report.parsed += 1
                if job.submit_time < last_submit:
                    report.note("out_of_order_submit", lineno)
                last_submit = max(last_submit, job.submit_time)
            yield job


def _job_from_fields(fields: list[str]) -> Job | None:
    job_id = int(fields[SWFField.JOB_NUMBER])
    submit = float(fields[SWFField.SUBMIT_TIME])
    runtime = float(fields[SWFField.RUN_TIME])
    requested = int(float(fields[SWFField.REQUESTED_PROCESSORS]))
    allocated = int(float(fields[SWFField.ALLOCATED_PROCESSORS]))
    nodes = requested if requested > 0 else allocated
    if nodes <= 0:
        raise _RowProblem(
            "zero_width", f"job {job_id}: no positive processor count"
        )
    if runtime < 0:
        raise _RowProblem(
            "negative_runtime",
            f"job {job_id}: negative runtime {runtime} (cancelled before start)",
        )
    if submit < 0:
        raise _RowProblem("malformed", f"job {job_id}: negative submit time {submit}")
    requested_time = float(fields[SWFField.REQUESTED_TIME])
    estimate = requested_time if requested_time >= 0 else None
    user = int(fields[SWFField.USER_ID])
    meta = {key: fields[idx] for key, idx in _META_FIELDS.items()}
    return Job(
        job_id=job_id,
        submit_time=submit,
        nodes=nodes,
        runtime=runtime,
        estimate=estimate,
        user=max(user, 0),
        meta=meta,
    )


def read_swf(
    path: str | Path, *, strict: bool = False, report: ParseReport | None = None
) -> list[Job]:
    """Read a whole SWF file into a job list sorted by submission."""
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        jobs = list(parse_swf(handle, strict=strict, report=report))
    jobs.sort(key=lambda j: (j.submit_time, j.job_id))
    return jobs


def write_swf(
    jobs: Iterable[Job],
    target: str | Path | TextIO,
    *,
    header: str | None = None,
) -> None:
    """Write jobs as SWF.  Unknown fields are written as ``-1``."""
    own = isinstance(target, (str, Path))
    handle: TextIO = open(target, "w", encoding="utf-8") if own else target  # type: ignore[assignment,arg-type]
    try:
        if header:
            for line in header.splitlines():
                handle.write(f"; {line}\n")
        for job in jobs:
            meta = job.meta
            row = [
                str(job.job_id),
                _fmt(job.submit_time),
                str(meta.get("wait_time", -1)),
                _fmt(job.runtime),
                str(job.nodes),
                str(meta.get("average_cpu_time", -1)),
                str(meta.get("used_memory", -1)),
                str(job.nodes),
                _fmt(job.estimate) if job.estimate is not None else "-1",
                str(meta.get("requested_memory", -1)),
                str(meta.get("status", 1)),
                str(job.user),
                str(meta.get("group_id", -1)),
                str(meta.get("executable", -1)),
                str(meta.get("queue", -1)),
                str(meta.get("partition", -1)),
                str(meta.get("preceding_job", -1)),
                str(meta.get("think_time", -1)),
            ]
            handle.write(" ".join(row) + "\n")
    finally:
        if own:
            handle.close()


def _fmt(value: float) -> str:
    """SWF numbers: integral values without trailing '.0'."""
    return str(int(value)) if float(value).is_integer() else repr(float(value))

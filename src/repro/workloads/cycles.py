"""Arrival-cycle analysis: daily and weekly submission patterns.

The CTC workload's daily and weekly cycles are what make its interarrivals
Weibull-like (Section 6.2) and what the Example 5 policy's 7am–8pm rule is
built around.  This module extracts those cycles from any trace:

* :func:`hourly_profile` / :func:`weekday_profile` — arrival-rate shares
  by hour of day and day of week (Monday-epoch convention, matching
  :class:`repro.workloads.ctc.CTCModel` and
  :class:`repro.schedulers.regimes.TimeWindow`);
* :func:`peak_to_trough` — the day/night contrast figure;
* :func:`profile_distance` — total-variation distance between two
  profiles, the calibration check between a synthetic generator and its
  target trace.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.job import Job

DAY = 86_400.0
WEEK = 7 * DAY


def hourly_profile(jobs: Sequence[Job], *, offset_hours: float = 0.0) -> np.ndarray:
    """Share of submissions per hour of day (length 24, sums to 1).

    ``offset_hours`` shifts trace time to local wall-clock when the trace
    epoch is not midnight.
    """
    if not jobs:
        raise ValueError("empty workload")
    hours = (
        ((np.array([j.submit_time for j in jobs]) / 3600.0) + offset_hours) % 24.0
    ).astype(np.int64)
    counts = np.bincount(hours, minlength=24).astype(np.float64)
    return counts / counts.sum()


def weekday_profile(jobs: Sequence[Job], *, offset_days: int = 0) -> np.ndarray:
    """Share of submissions per day of week (length 7, Monday first)."""
    if not jobs:
        raise ValueError("empty workload")
    days = (
        (np.array([j.submit_time for j in jobs]) // DAY).astype(np.int64) + offset_days
    ) % 7
    counts = np.bincount(days, minlength=7).astype(np.float64)
    return counts / counts.sum()


def peak_to_trough(profile: np.ndarray) -> float:
    """Largest share over smallest non-zero share (cycle contrast)."""
    positive = profile[profile > 0]
    if positive.size == 0:
        return 1.0
    return float(profile.max() / positive.min())


def profile_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Total-variation distance between two normalised profiles (0..1)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"profile shapes differ: {a.shape} vs {b.shape}")
    return float(0.5 * np.abs(a - b).sum())


def format_profile(profile: np.ndarray, labels: Sequence[str], *, width: int = 40) -> str:
    """ASCII bars of a normalised profile."""
    peak = profile.max() or 1.0
    lines = []
    for label, share in zip(labels, profile):
        bar = "#" * round(share / peak * width)
        lines.append(f"  {label:>4} {bar:<{width}} {share * 100:5.1f}%")
    return "\n".join(lines)


HOUR_LABELS = [f"{h:02d}h" for h in range(24)]
DAY_LABELS = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"]

"""Goodness-of-fit checks for workload models (Section 6.2's verification).

"Again conformity with future real job data is essential and must be
verified."  The paper asserts a Weibull "matches best" the CTC submission
gaps; this module provides the machinery to make such statements:

* :func:`ks_statistic` / :func:`ks_test` — the one-sample
  Kolmogorov–Smirnov statistic against an arbitrary CDF, with the
  asymptotic p-value (Kolmogorov distribution series — self-contained, no
  SciPy);
* :func:`weibull_ks` — KS test of samples against a fitted
  :class:`~repro.workloads.probabilistic.WeibullFit`;
* :func:`compare_interarrival_models` — fit Weibull and exponential to a
  trace's gaps and report which "matches best" by KS distance and by
  log-likelihood (reproducing the paper's model-selection step).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.job import Job
from repro.workloads.probabilistic import WeibullFit, fit_weibull


@dataclass(frozen=True, slots=True)
class KSResult:
    """Kolmogorov–Smirnov test outcome."""

    statistic: float
    p_value: float
    n_samples: int

    def rejects(self, alpha: float = 0.05) -> bool:
        """True when the null (samples follow the CDF) is rejected."""
        return self.p_value < alpha


def ks_statistic(samples: Sequence[float] | np.ndarray, cdf: Callable[[np.ndarray], np.ndarray]) -> float:
    """Sup-distance between the empirical CDF and ``cdf``."""
    x = np.sort(np.asarray(samples, dtype=np.float64))
    n = x.size
    if n == 0:
        raise ValueError("need at least one sample")
    theoretical = np.asarray(cdf(x), dtype=np.float64)
    ecdf_hi = np.arange(1, n + 1) / n
    ecdf_lo = np.arange(0, n) / n
    return float(np.max(np.maximum(ecdf_hi - theoretical, theoretical - ecdf_lo)))


def kolmogorov_sf(x: float, terms: int = 100) -> float:
    """Survival function of the Kolmogorov distribution.

    ``Q(x) = 2 * sum_{k>=1} (-1)^(k-1) exp(-2 k^2 x^2)``, clamped to
    [0, 1].  Converges extremely fast for x > 0.2.
    """
    if x <= 0:
        return 1.0
    total = 0.0
    for k in range(1, terms + 1):
        term = math.exp(-2.0 * k * k * x * x)
        total += term if k % 2 else -term
        if term < 1e-12:
            break
    return min(1.0, max(0.0, 2.0 * total))


def ks_test(
    samples: Sequence[float] | np.ndarray,
    cdf: Callable[[np.ndarray], np.ndarray],
) -> KSResult:
    """One-sample KS test with the asymptotic p-value."""
    x = np.asarray(samples, dtype=np.float64)
    d = ks_statistic(x, cdf)
    n = x.size
    # Stephens' small-sample correction for the asymptotic distribution.
    effective = (math.sqrt(n) + 0.12 + 0.11 / math.sqrt(n)) * d
    return KSResult(statistic=d, p_value=kolmogorov_sf(effective), n_samples=n)


def weibull_cdf(fit: WeibullFit) -> Callable[[np.ndarray], np.ndarray]:
    """CDF of a fitted Weibull, usable with :func:`ks_test`."""
    def cdf(x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        out = np.zeros_like(x)
        positive = x > 0
        out[positive] = 1.0 - np.exp(-np.power(x[positive] / fit.scale, fit.shape))
        return out

    return cdf


def weibull_ks(samples: Sequence[float] | np.ndarray, fit: WeibullFit) -> KSResult:
    """KS test of positive samples against a fitted Weibull."""
    x = np.asarray(samples, dtype=np.float64)
    return ks_test(x[x > 0], weibull_cdf(fit))


@dataclass(frozen=True, slots=True)
class ModelComparison:
    """Which interarrival model 'matches best' (the Section 6.2 decision)."""

    weibull: WeibullFit
    weibull_ks: KSResult
    exponential_scale: float
    exponential_ks: KSResult
    #: log-likelihood difference (weibull - exponential); > 0 favours Weibull.
    loglik_advantage: float

    @property
    def weibull_preferred(self) -> bool:
        return (
            self.weibull_ks.statistic <= self.exponential_ks.statistic
            or self.loglik_advantage > 0
        )


def compare_interarrival_models(jobs: Sequence[Job]) -> ModelComparison:
    """Fit Weibull and exponential to a trace's submission gaps and compare."""
    submits = np.sort(np.asarray([j.submit_time for j in jobs], dtype=np.float64))
    gaps = np.diff(submits)
    gaps = gaps[gaps > 0]
    if gaps.size < 8:
        raise ValueError("need at least 8 positive interarrival gaps")
    weib = fit_weibull(gaps)
    w_ks = weibull_ks(gaps, weib)
    scale = float(gaps.mean())

    def exp_cdf(x: np.ndarray) -> np.ndarray:
        return 1.0 - np.exp(-np.asarray(x) / scale)

    e_ks = ks_test(gaps, exp_cdf)
    exp_loglik = float(-gaps.size * math.log(scale) - gaps.sum() / scale)
    return ModelComparison(
        weibull=weib,
        weibull_ks=w_ks,
        exponential_scale=scale,
        exponential_ks=e_ks,
        loglik_advantage=weib.log_likelihood - exp_loglik,
    )

"""Workload summary statistics.

Used by the paper-style workload tables (Table 1), by the similarity check
between a source trace and its probabilistic resample (the paper's "In the
first simulation mainly consistence between the results for the CTC and the
artificial workload is checked"), and by the examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.job import Job


@dataclass(frozen=True, slots=True)
class WorkloadStats:
    """Aggregate shape statistics of a job stream."""

    n_jobs: int
    span: float                     # last submission - first submission
    mean_interarrival: float
    mean_nodes: float
    median_nodes: float
    serial_fraction: float          # share of 1-node jobs
    power_of_two_fraction: float    # share of power-of-two widths
    mean_runtime: float
    median_runtime: float
    mean_estimate: float
    mean_overestimate: float        # mean(estimate / runtime) over runtime > 0
    total_node_seconds: float
    offered_load: float             # node-seconds / (span * nodes), see below

    def describe(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"jobs                  {self.n_jobs}",
            f"span                  {self.span / 86400.0:.1f} days",
            f"mean interarrival     {self.mean_interarrival:.1f} s",
            f"mean / median width   {self.mean_nodes:.1f} / {self.median_nodes:.0f} nodes",
            f"serial jobs           {self.serial_fraction * 100.0:.1f} %",
            f"power-of-two widths   {self.power_of_two_fraction * 100.0:.1f} %",
            f"mean / median runtime {self.mean_runtime:.0f} / {self.median_runtime:.0f} s",
            f"mean overestimate     {self.mean_overestimate:.2f} x",
            f"offered load          {self.offered_load:.2f}",
        ]
        return "\n".join(lines)


def workload_stats(jobs: Sequence[Job], total_nodes: int = 256) -> WorkloadStats:
    """Compute :class:`WorkloadStats`; ``offered_load`` is relative to
    ``total_nodes`` (demand > 1 means a growing backlog)."""
    if not jobs:
        raise ValueError("empty workload")
    submits = np.array([j.submit_time for j in jobs])
    nodes = np.array([j.nodes for j in jobs], dtype=np.float64)
    runtimes = np.array([j.runtime for j in jobs])
    estimates = np.array([j.estimated_runtime for j in jobs])
    span = float(submits.max() - submits.min())
    gaps = np.diff(np.sort(submits))
    node_seconds = float((nodes * runtimes).sum())
    positive = runtimes > 0
    over = estimates[positive] / runtimes[positive]
    widths = nodes.astype(np.int64)
    p2 = (widths & (widths - 1)) == 0
    return WorkloadStats(
        n_jobs=len(jobs),
        span=span,
        mean_interarrival=float(gaps.mean()) if gaps.size else 0.0,
        mean_nodes=float(nodes.mean()),
        median_nodes=float(np.median(nodes)),
        serial_fraction=float((widths == 1).mean()),
        power_of_two_fraction=float(p2.mean()),
        mean_runtime=float(runtimes.mean()),
        median_runtime=float(np.median(runtimes)),
        mean_estimate=float(estimates.mean()),
        mean_overestimate=float(over.mean()) if over.size else 1.0,
        total_node_seconds=node_seconds,
        offered_load=node_seconds / (span * total_nodes) if span > 0 else float("inf"),
    )

"""The randomized workload (Section 6.3, Table 2).

"Totally randomized data are used as a third input data set.  The
administrator is aware of the fact that this workload will not represent
any real workload on her machine.  But she wants to determine the
performance of scheduling algorithms even in case of unusual job
combinations."

Table 2 gives the parameter ranges, all equally (uniformly) distributed:

====================================  ======================
Submission of jobs                    >= 1 job per hour
Requested number of nodes             1 – 256
Upper limit for the execution time    5 min – 24 h
Actual execution time                 1 s – upper limit
====================================  ======================

We read ">= 1 job per hour" as interarrival gaps uniform on ``[0, 3600]``
seconds (at least one arrival falls in every hour in expectation and the
distribution is "equally distributed" like the other parameters).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.job import Job

#: Number of jobs in the paper's randomized workload (Table 1).
PAPER_RANDOMIZED_JOBS = 50_000


@dataclass(frozen=True, slots=True)
class RandomizedModel:
    """Uniform-parameter workload generator per Table 2."""

    max_interarrival: float = 3600.0   # ">= 1 job per hour"
    min_nodes: int = 1
    max_nodes: int = 256
    min_estimate: float = 300.0        # 5 minutes
    max_estimate: float = 86400.0      # 24 hours
    min_runtime: float = 1.0           # 1 second

    def generate(self, n_jobs: int, seed: int = 0) -> list[Job]:
        if n_jobs < 0:
            raise ValueError("n_jobs must be non-negative")
        if n_jobs == 0:
            return []
        rng = np.random.default_rng(seed)
        gaps = rng.uniform(0.0, self.max_interarrival, size=n_jobs)
        submits = np.cumsum(gaps)
        nodes = rng.integers(self.min_nodes, self.max_nodes + 1, size=n_jobs)
        estimates = rng.uniform(self.min_estimate, self.max_estimate, size=n_jobs)
        runtimes = rng.uniform(self.min_runtime, estimates)
        return [
            Job(
                job_id=i,
                submit_time=float(submits[i]),
                nodes=int(nodes[i]),
                runtime=float(runtimes[i]),
                estimate=float(estimates[i]),
            )
            for i in range(n_jobs)
        ]


def randomized_workload(n_jobs: int = PAPER_RANDOMIZED_JOBS, seed: int = 0) -> list[Job]:
    """Generate the Table 2 workload with default parameters."""
    return RandomizedModel().generate(n_jobs, seed=seed)

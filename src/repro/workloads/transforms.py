"""Trace transforms used by the paper's experiments (Sections 6.1).

The administrator modifies the CTC trace before simulating:

* jobs wider than the 256-node batch partition are deleted
  (:func:`cap_nodes` — "less than 0.2 % of all jobs require more than 256
  nodes … she modifies the trace by simply deleting all those highly
  parallel jobs");
* hardware requests beyond node count are ignored (already dropped into
  ``Job.meta`` by the SWF reader);
* for the Table 6 study "the estimated execution times of the trace were
  simply replaced by the actual execution times"
  (:func:`with_exact_estimates`).

Plus general utilities for scaling studies: prefixes, renumbering,
interarrival scaling (load control).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.core.job import Job


def cap_nodes(jobs: Sequence[Job], max_nodes: int) -> list[Job]:
    """Delete jobs wider than ``max_nodes`` (the paper's trace modification)."""
    if max_nodes <= 0:
        raise ValueError("max_nodes must be positive")
    return [job for job in jobs if job.nodes <= max_nodes]


def with_exact_estimates(jobs: Sequence[Job]) -> list[Job]:
    """Replace every estimate by the actual runtime (Table 6 study)."""
    return [job.with_exact_estimate() for job in jobs]


def with_scaled_estimates(jobs: Sequence[Job], factor: float) -> list[Job]:
    """Scale every estimate relative to the actual runtime.

    ``factor > 1`` produces loose over-estimates (idle-resource waste
    before reservations, weaker backfilling); ``factor < 1`` produces
    under-estimates, i.e. jobs that overrun their declared limit — the
    failure mode of Example 4.  Estimate-accuracy sensitivity studies
    sweep this factor.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    return [replace(job, estimate=job.runtime * factor) for job in jobs]


def with_noisy_estimates(
    jobs: Sequence[Job], sigma: float, seed: int = 0
) -> list[Job]:
    """Replace estimates by ``runtime * exp(|N(0, sigma)|)``.

    ``sigma = 0`` yields exact estimates; growing ``sigma`` scrambles the
    *relative* accuracy across jobs, which is what actually degrades
    estimate-consuming schedulers — a uniform over-estimation factor (see
    :func:`with_scaled_estimates`) preserves every ordering decision and
    barely moves the results.  The half-normal keeps estimates upper
    bounds, matching the paper's job model.
    """
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    import numpy as np

    rng = np.random.default_rng(seed)
    factors = np.exp(np.abs(rng.normal(0.0, sigma, size=len(jobs))))
    # Direct construction instead of dataclasses.replace: this runs once
    # per job on every scenario compile, and replace()'s field
    # introspection dominates the whole compile at trace scale.
    return [
        Job(
            job.job_id,
            job.submit_time,
            job.nodes,
            job.runtime,
            job.runtime * float(f),
            job.user,
            job.weight,
            job.meta,
        )
        for job, f in zip(jobs, factors)
    ]


def take_prefix(jobs: Sequence[Job], n: int) -> list[Job]:
    """First ``n`` jobs by submission order (scaled-down experiments)."""
    ordered = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
    return ordered[:n]


def renumber(jobs: Sequence[Job]) -> list[Job]:
    """Re-assign consecutive ids in submission order (after filtering)."""
    ordered = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
    return [replace(job, job_id=i) for i, job in enumerate(ordered)]


def scale_interarrival(jobs: Sequence[Job], factor: float) -> list[Job]:
    """Multiply all submission times by ``factor``.

    ``factor < 1`` compresses the trace (higher offered load), ``factor > 1``
    stretches it.  Used by the load-sensitivity ablation.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    return [replace(job, submit_time=job.submit_time * factor) for job in jobs]


def random_cancellations(
    jobs: Sequence[Job], fraction: float, seed: int = 0
) -> list["Cancellation"]:
    """Failure-injection stream: cancel a random fraction of the jobs.

    Each selected job is cancelled at a uniform instant within
    ``[submit, submit + 2 x estimated runtime]`` — early draws withdraw it
    from the queue, later ones kill it mid-run (or no-op if it already
    finished), exercising all three simulator paths.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    import random as _random

    from repro.core.simulator import Cancellation

    rng = _random.Random(seed)
    picked = [job for job in jobs if rng.random() < fraction]
    return [
        Cancellation(
            time=job.submit_time
            + rng.uniform(0.0, 2.0 * max(job.estimated_runtime, 1.0)),
            job_id=job.job_id,
        )
        for job in picked
    ]


def merge_workloads(*streams: Sequence[Job]) -> list[Job]:
    """Interleave several job streams into one, renumbering ids.

    Submission times are kept as-is (streams are assumed to share a time
    origin); original ids are preserved in ``meta['source_id']`` along
    with the stream index in ``meta['source_stream']``.
    """
    merged: list[Job] = []
    for stream_index, stream in enumerate(streams):
        for job in stream:
            meta = dict(job.meta)
            meta.setdefault("source_id", job.job_id)
            meta.setdefault("source_stream", stream_index)
            merged.append(replace(job, meta=meta))
    merged.sort(key=lambda j: (j.submit_time, j.meta.get("source_stream", 0), j.meta.get("source_id", 0)))
    return [replace(job, job_id=i) for i, job in enumerate(merged)]


def tag_interactive(
    jobs: Sequence[Job], fraction: float, seed: int = 0, *, max_nodes: int = 8
) -> list[Job]:
    """Mark a random fraction of narrow jobs as interactive.

    Interactive work (Example 5's Rule 1 carve-out) is narrow and short in
    practice, so only jobs at most ``max_nodes`` wide are eligible.  The
    tag lands in ``meta['interactive']``, the key
    :func:`repro.partitions.example5_partitioning` routes on.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    import random as _random

    rng = _random.Random(seed)
    out = []
    for job in jobs:
        if job.nodes <= max_nodes and rng.random() < fraction:
            meta = dict(job.meta)
            meta["interactive"] = True
            out.append(replace(job, meta=meta))
        else:
            out.append(job)
    return out


def shift_to_zero(jobs: Sequence[Job]) -> list[Job]:
    """Shift submissions so the earliest is at time 0."""
    if not jobs:
        return []
    t0 = min(job.submit_time for job in jobs)
    if t0 == 0:
        return list(jobs)
    return [replace(job, submit_time=job.submit_time - t0) for job in jobs]

"""Closed-loop (feedback) workload generation (Section 2.4).

Two of the paper's listed dependences concern the workload model itself:

* "The workload model may not be correct if users adapt their submission
  pattern due to their knowledge of the policy rules."
* "The workload model must be modified as the number of users and/or the
  types and sizes of submitted jobs change over time."

Open-loop traces (Section 6) cannot express either.  This module provides
a *closed-loop* generator: a population of users who submit a job, wait
for its completion, think for a while, and submit the next one — the
standard think-time model of interactive batch users.  Because the next
submission time depends on the previous completion, the offered load
adapts to scheduler quality: a better scheduler elicits more work, which
is precisely the coupling Section 2.4 warns about.

:func:`run_closed_loop` co-simulates the user population with any
:class:`~repro.core.scheduler.Scheduler` by interleaving simulator runs
is not possible (the stream must react to completions), so it embeds the
same event loop as :class:`repro.core.simulator.Simulator` with user
events added.  The result separates cleanly: a realised trace (reusable
as an open-loop workload) plus the schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.events import EventKind, EventQueue
from repro.core.job import Job
from repro.core.machine import Machine
from repro.core.schedule import Schedule, ScheduledJob
from repro.core.scheduler import RunningJob, Scheduler, SchedulerContext
from repro.core.state import SchedulingState, verify_every_from_env


@dataclass(slots=True)
class UserProfile:
    """Behavioural parameters of one simulated user."""

    user_id: int
    #: Mean think time between a completion and the next submission (s).
    mean_think_time: float
    #: Job width distribution: (widths, probabilities).
    widths: Sequence[int]
    width_probs: Sequence[float]
    #: Lognormal runtime parameters (median, sigma).
    runtime_median: float
    runtime_sigma: float
    #: Estimate slack: estimate = runtime * Uniform(1, max_slack).
    max_slack: float = 4.0
    #: Users abandon the machine when their last response time exceeded
    #: this multiple of the runtime (None: never) — the Section 2.4
    #: "users adapt their submission pattern" effect.
    balk_slowdown: float | None = None


@dataclass(slots=True)
class ClosedLoopResult:
    """Realised trace and schedule of a closed-loop run."""

    schedule: Schedule
    trace: list[Job]
    #: Number of submissions per user (abandonment shows up as low counts).
    submissions_per_user: dict[int, int] = field(default_factory=dict)
    abandoned_users: set[int] = field(default_factory=set)

    @property
    def total_jobs(self) -> int:
        return len(self.trace)


def default_population(
    n_users: int,
    *,
    seed: int = 0,
    mean_think_time: float = 1800.0,
    balk_slowdown: float | None = None,
) -> list[UserProfile]:
    """A CTC-flavoured user population: mostly narrow jobs, a few wide users."""
    rng = np.random.default_rng(seed)
    users = []
    for uid in range(n_users):
        wide_user = rng.random() < 0.15
        widths = (16, 32, 64, 128) if wide_user else (1, 2, 4, 8)
        users.append(
            UserProfile(
                user_id=uid,
                mean_think_time=float(rng.uniform(0.5, 1.5) * mean_think_time),
                widths=widths,
                width_probs=(0.4, 0.3, 0.2, 0.1),
                runtime_median=float(rng.uniform(200.0, 5000.0)),
                runtime_sigma=1.0,
                balk_slowdown=balk_slowdown,
            )
        )
    return users


def run_closed_loop(
    users: Sequence[UserProfile],
    scheduler: Scheduler,
    total_nodes: int,
    *,
    horizon: float,
    seed: int = 0,
) -> ClosedLoopResult:
    """Co-simulate a user population with a scheduler until ``horizon``.

    Submissions stop at the horizon; everything already queued or running
    is allowed to finish, so the returned schedule is complete and valid.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    rng = np.random.default_rng(seed)
    machine = Machine(total_nodes)
    machine.reset()
    scheduler.reset()
    events = EventQueue()
    running: dict[int, RunningJob] = {}
    state = SchedulingState(total_nodes, verify_every=verify_every_from_env())
    ctx = SchedulerContext(machine, running, state=state)
    completed: list[ScheduledJob] = []
    trace: list[Job] = []
    submissions: dict[int, int] = {u.user_id: 0 for u in users}
    abandoned: set[int] = set()
    profiles = {u.user_id: u for u in users}
    next_job_id = 0

    def make_job(user: UserProfile, submit: float) -> Job:
        nonlocal next_job_id
        width = int(rng.choice(user.widths, p=np.asarray(user.width_probs)))
        width = min(width, total_nodes)
        runtime = float(
            np.exp(np.log(user.runtime_median) + user.runtime_sigma * rng.standard_normal())
        )
        runtime = min(max(runtime, 1.0), 64_800.0)
        estimate = runtime * float(rng.uniform(1.0, user.max_slack))
        job = Job(
            job_id=next_job_id,
            submit_time=submit,
            nodes=width,
            runtime=runtime,
            estimate=estimate,
            user=user.user_id,
        )
        next_job_id += 1
        return job

    def user_reacts(item: ScheduledJob) -> None:
        """Completion feedback: think, maybe balk, then submit again."""
        user = profiles[item.job.user]
        if user.user_id in abandoned:
            return
        if (
            user.balk_slowdown is not None
            and item.job.runtime > 0
            and item.response_time / item.job.runtime > user.balk_slowdown
        ):
            abandoned.add(user.user_id)
            return
        think = float(rng.exponential(user.mean_think_time))
        submit = item.end_time + think
        if submit < horizon:
            events.push(submit, EventKind.SUBMISSION, make_job(user, submit))

    # Initial submissions: each user arrives within their first think time.
    for user in users:
        first = float(rng.uniform(0.0, user.mean_think_time))
        if first < horizon:
            events.push(first, EventKind.SUBMISSION, make_job(user, first))

    now = 0.0
    while events:
        now = events.peek().time
        ctx.now = now
        while events and events.peek().time == now:
            event = events.pop()
            if event.kind is EventKind.COMPLETION:
                item: ScheduledJob = event.payload
                machine.release(item.job.job_id)
                del running[item.job.job_id]
                state.on_release(item.job.job_id)
                completed.append(item)
                scheduler.on_complete(item.job, ctx)
                user_reacts(item)
            elif event.kind is EventKind.SUBMISSION:
                job: Job = event.payload
                trace.append(job)
                submissions[job.user] += 1
                state.note_enqueued(job.nodes)
                scheduler.on_submit(job, ctx)

        for job in scheduler.select_jobs(ctx):
            machine.allocate(job)
            item = ScheduledJob(job=job, start_time=now, end_time=now + job.runtime)
            running[job.job_id] = RunningJob(job=job, start_time=now)
            state.note_dequeued(job.nodes)
            state.on_start(job.job_id, job.estimated_runtime, job.nodes)
            events.push(item.end_time, EventKind.COMPLETION, item)

    return ClosedLoopResult(
        schedule=Schedule(completed),
        trace=sorted(trace, key=lambda j: (j.submit_time, j.job_id)),
        submissions_per_user=submissions,
        abandoned_users=abandoned,
    )

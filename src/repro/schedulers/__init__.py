"""The paper's scheduler zoo.

Section 5 of the paper evaluates seven algorithm families, each reduced to
two orthogonal choices:

* an **order policy** — how the wait queue is ordered (submission order for
  FCFS and Garey & Graham; SMART-FFIA / SMART-NFIW shelf orders; the PSRS
  non-preemptive conversion order), and
* a **servicing discipline** — how the ordered queue is turned into start
  decisions (head-blocking greedy list scheduling, conservative
  backfilling, EASY backfilling, or Garey & Graham's any-fit greedy).

Every cell of the paper's Tables 3–6 is one ``(order policy, discipline)``
pair; :mod:`repro.schedulers.registry` enumerates them all.
"""

from repro.schedulers.base import (
    Discipline,
    OrderPolicy,
    OrderedQueueScheduler,
    SubmitOrderPolicy,
)
from repro.schedulers.disciplines import (
    AnyFitDiscipline,
    ConservativeBackfill,
    EasyBackfill,
    HeadBlockingDiscipline,
)
from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.garey_graham import GareyGrahamScheduler
from repro.schedulers.smart import (
    SmartOrderPolicy,
    smart_order,
    SmartVariant,
)
from repro.schedulers.psrs import PsrsOrderPolicy, psrs_order, preemptive_psrs
from repro.schedulers.weights import area_weight, unit_weight
from repro.schedulers.registry import (
    SchedulerConfig,
    build_scheduler,
    paper_configurations,
    register_discipline,
    register_row,
    registered_columns,
    registered_configurations,
    registered_rows,
    unregister_discipline,
    unregister_row,
)
from repro.schedulers.baselines import (
    KeyOrderPolicy,
    RandomOrderPolicy,
    all_baselines,
    baseline_scheduler,
)
from repro.schedulers.regimes import (
    WEEKDAY_DAYTIME,
    RegimeSwitchingScheduler,
    TimeWindow,
    example5_combined_scheduler,
)
from repro.schedulers.drain import (
    DrainDiscipline,
    DrainingScheduler,
    Reservation,
    example4_reservations,
)
from repro.schedulers.slack import SlackBackfill
from repro.schedulers.admission import (
    ClassPriorityOrderPolicy,
    UserLimitDiscipline,
)

__all__ = [
    "AnyFitDiscipline",
    "ClassPriorityOrderPolicy",
    "ConservativeBackfill",
    "Discipline",
    "DrainDiscipline",
    "DrainingScheduler",
    "EasyBackfill",
    "FCFSScheduler",
    "GareyGrahamScheduler",
    "HeadBlockingDiscipline",
    "KeyOrderPolicy",
    "OrderPolicy",
    "OrderedQueueScheduler",
    "PsrsOrderPolicy",
    "RandomOrderPolicy",
    "RegimeSwitchingScheduler",
    "Reservation",
    "SchedulerConfig",
    "SlackBackfill",
    "SmartOrderPolicy",
    "SmartVariant",
    "SubmitOrderPolicy",
    "UserLimitDiscipline",
    "TimeWindow",
    "WEEKDAY_DAYTIME",
    "all_baselines",
    "area_weight",
    "baseline_scheduler",
    "build_scheduler",
    "example4_reservations",
    "example5_combined_scheduler",
    "paper_configurations",
    "preemptive_psrs",
    "psrs_order",
    "register_discipline",
    "register_row",
    "registered_columns",
    "registered_configurations",
    "registered_rows",
    "smart_order",
    "unit_weight",
    "unregister_discipline",
    "unregister_row",
]

"""Drain windows / advance reservations (Example 4 and Section 2).

Example 4: "Every weekday at 10am the entire machine must be available to
a theoretical chemistry class for 1 hour."  Section 2 likewise mentions
systems that "allow reservation of resources before the actual job
submission", a feature "especially beneficial for multisite metacomputing
[17]".

:class:`DrainDiscipline` wraps any servicing discipline so that scheduled
work never collides with a set of machine reservations:

* while a reservation is active, nothing starts;
* ahead of one, a job is eligible only if its *projected* end
  (``now + estimate``) lands before the reservation starts;
* after each decision the scheduler requests a timer at the next relevant
  boundary, so the machine resumes the instant a reservation ends rather
  than idling until the next job event.

The guarantee is exactly as strong as the estimates: a job that overruns
its estimate *will* collide with the class — which is Example 4's point
("as users are not able to provide accurate execution time estimates no
scheduling algorithm can generate good schedules").  The test suite
demonstrates both the guarantee under truthful estimates and the failure
under overruns, and ``examples/reserved_windows.py`` quantifies the cost
of draining.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.core.job import Job
from repro.core.scheduler import SchedulerContext
from repro.schedulers.base import Discipline, OrderedQueueScheduler, OrderPolicy
from repro.schedulers.regimes import TimeWindow


class ReservationLike(Protocol):
    """Anything with an active predicate and boundary queries."""

    def contains(self, time: float) -> bool: ...
    def next_start(self, time: float) -> float: ...
    def current_end(self, time: float) -> float: ...


@dataclass(frozen=True, slots=True)
class Reservation:
    """A one-shot whole-machine reservation over ``[start, end)``."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if not self.start < self.end:
            raise ValueError(f"need start < end, got [{self.start}, {self.end})")

    def contains(self, time: float) -> bool:
        return self.start <= time < self.end

    def next_start(self, time: float) -> float:
        if time < self.start:
            return self.start
        if time < self.end:
            return time
        return float("inf")

    def current_end(self, time: float) -> float:
        if not self.contains(time):
            raise ValueError(f"time {time} is outside the reservation")
        return self.end


class DrainDiscipline(Discipline):
    """Constrain an inner discipline around whole-machine reservations."""

    uses_estimates = True  # the drain guarantee is projected from estimates

    def __init__(self, inner: Discipline, reservations: Sequence[ReservationLike]) -> None:
        if not reservations:
            raise ValueError("DrainDiscipline needs at least one reservation")
        self.inner = inner
        self.reservations = tuple(reservations)
        self.name = f"drain({inner.name})"

    # -- helpers ---------------------------------------------------------------

    def _active(self, now: float) -> ReservationLike | None:
        for reservation in self.reservations:
            if reservation.contains(now):
                return reservation
        return None

    def _next_start(self, now: float) -> float:
        return min(
            (r.next_start(now) for r in self.reservations), default=float("inf")
        )

    # -- Discipline interface ----------------------------------------------------

    def select(self, queue: Sequence[Job], ctx: SchedulerContext) -> list[Job]:
        if not queue:
            return []
        now = ctx.now
        if self._active(now) is not None:
            return []
        horizon = self._next_start(now)
        if horizon == float("inf"):
            return self.inner.select(queue, ctx)
        # The inner discipline plans on ``ctx.profile`` snapshots itself;
        # filtering the queue here makes the context's incremental queue
        # statistics refuse (length mismatch), so the inner select falls
        # back to scanning ``eligible`` — never a stale cached minimum.
        eligible = [job for job in queue if now + job.estimated_runtime <= horizon]
        if not eligible:
            return []
        # Filtered queue: the order policy's columnar view (if any) no
        # longer lines up, so withdraw the hint from the inner discipline.
        ctx.queue_columns = None
        return self.inner.select(eligible, ctx)

    def next_wakeup(self, ctx: SchedulerContext) -> float | None:
        now = ctx.now
        active = self._active(now)
        if active is not None:
            return active.current_end(now)
        # Waking at the reservation start is pointless (nothing may run);
        # the useful boundary ahead is the end of the next occurrence.
        start = self._next_start(now)
        if start == float("inf"):
            return None
        for reservation in self.reservations:
            if reservation.contains(start):
                return reservation.current_end(start)
        return None


class DrainingScheduler(OrderedQueueScheduler):
    """An ordered-queue scheduler whose discipline honours reservations."""

    def __init__(
        self,
        order_policy: OrderPolicy,
        discipline: Discipline,
        reservations: Sequence[ReservationLike],
        name: str | None = None,
    ) -> None:
        drained = DrainDiscipline(discipline, reservations)
        super().__init__(order_policy, drained, name=name or drained.name)

    def next_wakeup(self, ctx: SchedulerContext) -> float | None:
        assert isinstance(self.discipline, DrainDiscipline)
        return self.discipline.next_wakeup(ctx)


def example4_reservations() -> list[TimeWindow]:
    """Example 4's rule: weekdays, 10am, one hour, whole machine."""
    return [TimeWindow(days=frozenset(range(5)), start_hour=10.0, end_hour=11.0)]

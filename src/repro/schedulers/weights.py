"""Job weight functions for the two objective regimes of the paper.

Section 4: during weekday daytime the objective is the (unweighted) average
response time — "the job weight is always 1"; at night it is the average
weighted response time with weight equal to the job's resource consumption,
"the product of the execution time and the number of required nodes".

The *objective* weighs jobs by their actual area; an *on-line scheduler*
cannot know actual runtimes, so ordering decisions (Smith ratios in SMART
and PSRS) use the estimated area instead.  Both functions live here so the
distinction is made exactly once.
"""

from __future__ import annotations

from typing import Callable

from repro.core.job import Job

WeightFn = Callable[[Job], float]


def unit_weight(job: Job) -> float:
    """Weight 1 for every job — the unweighted (daytime) regime."""
    return 1.0


def area_weight(job: Job) -> float:
    """Actual resource consumption ``nodes * runtime`` — the objective's weight."""
    return job.area


def estimated_area_weight(job: Job) -> float:
    """Projected resource consumption ``nodes * estimate``.

    What an on-line scheduler may use as a stand-in for :func:`area_weight`
    when ordering jobs.
    """
    return job.estimated_area


#: Named weight regimes used by the experiment harness.
WEIGHT_REGIMES: dict[str, tuple[WeightFn, WeightFn]] = {
    # regime -> (objective weight, scheduler-visible ordering weight)
    "unweighted": (unit_weight, unit_weight),
    "weighted": (area_weight, estimated_area_weight),
}

"""Classical list scheduling of Garey & Graham (Section 5.3).

"Always starts the next job for which enough resources are available.  Ties
can be broken in an arbitrary fashion."  We break ties by submission order
(the natural arbitrary choice and the one that makes runs deterministic).
No runtime knowledge is required, and backfilling is pointless: the
discipline never leaves a startable job waiting, so there is nothing to
backfill — which is why the Garey&Graham row of Tables 3–6 has only the
"Listscheduler" column.
"""

from __future__ import annotations

from repro.schedulers.base import OrderedQueueScheduler, SubmitOrderPolicy
from repro.schedulers.disciplines import AnyFitDiscipline


class GareyGrahamScheduler(OrderedQueueScheduler):
    """Greedy any-fit list scheduling over the submission order."""

    def __init__(self, name: str = "Garey&Graham") -> None:
        super().__init__(SubmitOrderPolicy(), AnyFitDiscipline(), name=name)

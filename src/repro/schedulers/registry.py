"""Open registry of scheduler configurations (rows × columns).

Tables 3–6 of the paper evaluate a 5 x 3 grid (minus the cells the paper
omits):

==============  =============  ============  ================
row             Listscheduler  Backfilling   EASY-Backfilling
==============  =============  ============  ================
FCFS            x              x             x (reference)
PSRS            x              x             x
SMART-FFIA      x              x             x
SMART-NFIW      x              x             x
Garey&Graham    x              —             —
==============  =============  ============  ================

"Backfilling" is conservative backfilling; Garey & Graham has no backfill
columns because any-fit scheduling already fills every hole.

The grid is no longer hardcoded: rows (order policies) and columns
(servicing disciplines) live in registries that user code can extend —

* :func:`register_row` adds an order-policy row; its factory receives
  ``(total_nodes, weight, recompute_threshold)`` and may ignore any of
  them.  A row can restrict itself to specific columns (Garey & Graham
  only makes sense as a list scheduler) and may override the column
  discipline entirely (Garey & Graham brings its own any-fit discipline).
* :func:`register_discipline` adds a servicing-discipline column; its
  factory takes no arguments.

Registered rows flow through the whole experiment stack — the grid
runner, the parallel engine, its result cache, and the table renderers —
exactly like the paper's five algorithms.  :func:`paper_configurations`
still enumerates exactly the 13 cells of the paper;
:func:`registered_configurations` enumerates everything currently
registered.  :func:`build_scheduler` instantiates any cell for a machine
size and weight regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.core.scheduler import Scheduler
from repro.schedulers.base import (
    Discipline,
    OrderedQueueScheduler,
    OrderPolicy,
    SubmitOrderPolicy,
)
from repro.schedulers.disciplines import (
    AnyFitDiscipline,
    ConservativeBackfill,
    EasyBackfill,
    HeadBlockingDiscipline,
)
from repro.schedulers.psrs import PsrsOrderPolicy
from repro.schedulers.smart import SmartOrderPolicy, SmartVariant
from repro.schedulers.weights import WeightFn, estimated_area_weight, unit_weight

#: ``factory(total_nodes, weight, recompute_threshold) -> OrderPolicy``
OrderFactory = Callable[[int, WeightFn, float], OrderPolicy]

#: ``factory() -> Discipline``
DisciplineFactory = Callable[[], Discipline]


@dataclass(frozen=True, slots=True)
class RowSpec:
    """A registered row: an order policy plus its grid placement."""

    key: str
    label: str
    order_factory: OrderFactory
    #: Columns this row participates in; ``None`` means every registered
    #: column.
    columns: tuple[str, ...] | None = None
    #: When set, this discipline is used regardless of the column (the
    #: Garey & Graham case: any-fit already fills every hole, so the row
    #: exists only under "list" and brings its own discipline).
    discipline_factory: DisciplineFactory | None = None
    #: Display name override for the built scheduler.
    scheduler_name: str | None = None


@dataclass(frozen=True, slots=True)
class ColumnSpec:
    """A registered column: a servicing discipline."""

    key: str
    label: str
    factory: DisciplineFactory


_ROW_REGISTRY: dict[str, RowSpec] = {}
_COLUMN_REGISTRY: dict[str, ColumnSpec] = {}

#: Human-readable labels, kept in sync by register/unregister calls.
ROW_LABELS: dict[str, str] = {}
COLUMN_LABELS: dict[str, str] = {}


def register_row(
    key: str,
    factory: OrderFactory,
    *,
    label: str | None = None,
    columns: Sequence[str] | None = None,
    discipline: DisciplineFactory | None = None,
    scheduler_name: str | None = None,
    replace: bool = False,
) -> RowSpec:
    """Register an order-policy row under ``key``.

    ``factory(total_nodes, weight, recompute_threshold)`` must return a
    fresh :class:`OrderPolicy`; ``columns`` restricts the row to a subset
    of the registered disciplines; ``discipline`` overrides the column
    discipline entirely (see Garey & Graham).  Re-registering an existing
    key raises unless ``replace=True``.
    """
    if key in _ROW_REGISTRY and not replace:
        raise ValueError(f"row {key!r} is already registered (pass replace=True)")
    spec = RowSpec(
        key=key,
        label=label or key,
        order_factory=factory,
        columns=tuple(columns) if columns is not None else None,
        discipline_factory=discipline,
        scheduler_name=scheduler_name,
    )
    _ROW_REGISTRY[key] = spec
    ROW_LABELS[key] = spec.label
    return spec


def register_discipline(
    key: str,
    factory: DisciplineFactory,
    *,
    label: str | None = None,
    replace: bool = False,
) -> ColumnSpec:
    """Register a servicing-discipline column under ``key``."""
    if key in _COLUMN_REGISTRY and not replace:
        raise ValueError(f"column {key!r} is already registered (pass replace=True)")
    spec = ColumnSpec(key=key, label=label or key, factory=factory)
    _COLUMN_REGISTRY[key] = spec
    COLUMN_LABELS[key] = spec.label
    return spec


def unregister_row(key: str) -> None:
    """Remove a registered row (no-op when absent)."""
    _ROW_REGISTRY.pop(key, None)
    ROW_LABELS.pop(key, None)


def unregister_discipline(key: str) -> None:
    """Remove a registered column (no-op when absent)."""
    _COLUMN_REGISTRY.pop(key, None)
    COLUMN_LABELS.pop(key, None)


def registered_rows() -> tuple[str, ...]:
    """Row keys in registration order (the paper's five come first)."""
    return tuple(_ROW_REGISTRY)


def registered_columns() -> tuple[str, ...]:
    """Column keys in registration order (the paper's three come first)."""
    return tuple(_COLUMN_REGISTRY)


def row_label(key: str) -> str:
    """Display label for a row key; unregistered keys echo the key."""
    spec = _ROW_REGISTRY.get(key)
    return spec.label if spec is not None else key


def column_label(key: str) -> str:
    """Display label for a column key; unregistered keys echo the key."""
    spec = _COLUMN_REGISTRY.get(key)
    return spec.label if spec is not None else key


@dataclass(frozen=True, slots=True)
class SchedulerConfig:
    """One cell of the evaluation grid."""

    row: str
    column: str

    @property
    def key(self) -> str:
        return f"{self.row}/{self.column}"

    @property
    def label(self) -> str:
        return f"{row_label(self.row)} + {column_label(self.column)}"

    @property
    def is_reference(self) -> bool:
        """FCFS + EASY is the paper's 0% reference (the CTC production setup)."""
        return self.row == "fcfs" and self.column == "easy"


# -- the paper's grid ----------------------------------------------------------

#: The paper's row keys, in table order (the registry may hold more).
ROWS = ("fcfs", "psrs", "smart-ffia", "smart-nfiw", "gg")

#: The paper's column keys, in table order (the registry may hold more).
COLUMNS = ("list", "conservative", "easy")

register_discipline("list", HeadBlockingDiscipline, label="Listscheduler")
register_discipline("conservative", ConservativeBackfill, label="Backfilling")
register_discipline("easy", EasyBackfill, label="EASY-Backfilling")

register_row(
    "fcfs",
    lambda total_nodes, weight, threshold: SubmitOrderPolicy(),
    label="FCFS",
)
register_row(
    "psrs",
    lambda total_nodes, weight, threshold: PsrsOrderPolicy(
        total_nodes, weight=weight, recompute_threshold=threshold
    ),
    label="PSRS",
)
register_row(
    "smart-ffia",
    lambda total_nodes, weight, threshold: SmartOrderPolicy(
        total_nodes,
        variant=SmartVariant.FFIA,
        weight=weight,
        recompute_threshold=threshold,
    ),
    label="SMART-FFIA",
)
register_row(
    "smart-nfiw",
    lambda total_nodes, weight, threshold: SmartOrderPolicy(
        total_nodes,
        variant=SmartVariant.NFIW,
        weight=weight,
        recompute_threshold=threshold,
    ),
    label="SMART-NFIW",
)
register_row(
    "gg",
    lambda total_nodes, weight, threshold: SubmitOrderPolicy(),
    label="Garey&Graham",
    columns=("list",),
    discipline=AnyFitDiscipline,
    scheduler_name="Garey&Graham",
)


def paper_configurations() -> Iterator[SchedulerConfig]:
    """The 13 grid cells of Tables 3–6, row-major in paper order.

    Always exactly the paper's cells, regardless of what else has been
    registered — use :func:`registered_configurations` for the full grid.
    """
    for row in ROWS:
        for column in COLUMNS:
            if row == "gg" and column != "list":
                continue  # backfilling is no benefit for any-fit scheduling
            yield SchedulerConfig(row=row, column=column)


def registered_configurations(
    rows: Sequence[str] | None = None,
) -> Iterator[SchedulerConfig]:
    """Every registered cell, row-major in registration order.

    ``rows`` restricts the enumeration to a subset of row keys (unknown
    keys raise).  Each row spans its declared columns, defaulting to every
    registered column.
    """
    wanted = tuple(rows) if rows is not None else registered_rows()
    for key in wanted:
        spec = _ROW_REGISTRY.get(key)
        if spec is None:
            raise ValueError(
                f"unknown row {key!r}; registered rows: {', '.join(_ROW_REGISTRY)}"
            )
        for column in spec.columns if spec.columns is not None else registered_columns():
            yield SchedulerConfig(row=key, column=column)


def build_scheduler(
    config: SchedulerConfig,
    total_nodes: int,
    *,
    weighted: bool = False,
    recompute_threshold: float = 2.0 / 3.0,
) -> Scheduler:
    """Instantiate the scheduler for one grid cell via the registries.

    ``weighted`` selects the ordering weight that SMART/PSRS use: job weight
    1 in the unweighted regime, estimated area in the weighted regime
    (Section 4; FCFS and Garey & Graham ignore weights entirely).
    """
    row = _ROW_REGISTRY.get(config.row)
    if row is None:
        raise ValueError(
            f"unknown row {config.row!r}; registered rows: {', '.join(_ROW_REGISTRY)}"
        )
    column = _COLUMN_REGISTRY.get(config.column)
    if column is None:
        raise ValueError(
            f"unknown column {config.column!r}; registered columns: "
            f"{', '.join(_COLUMN_REGISTRY)}"
        )
    weight = estimated_area_weight if weighted else unit_weight
    order = row.order_factory(total_nodes, weight, recompute_threshold)
    discipline = (
        row.discipline_factory() if row.discipline_factory is not None else column.factory()
    )
    name = row.scheduler_name or config.label
    return OrderedQueueScheduler(order, discipline, name=name)

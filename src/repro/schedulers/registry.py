"""Registry of the paper's scheduler configurations.

Tables 3–6 evaluate a 5 x 3 grid (minus the cells the paper omits):

==============  =============  ============  ================
row             Listscheduler  Backfilling   EASY-Backfilling
==============  =============  ============  ================
FCFS            x              x             x (reference)
PSRS            x              x             x
SMART-FFIA      x              x             x
SMART-NFIW      x              x             x
Garey&Graham    x              —             —
==============  =============  ============  ================

"Backfilling" is conservative backfilling; Garey & Graham has no backfill
columns because any-fit scheduling already fills every hole.
:func:`paper_configurations` enumerates the 13 cells;
:func:`build_scheduler` instantiates any of them for a machine size and
weight regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.scheduler import Scheduler
from repro.schedulers.base import (
    Discipline,
    OrderedQueueScheduler,
    OrderPolicy,
    SubmitOrderPolicy,
)
from repro.schedulers.disciplines import (
    AnyFitDiscipline,
    ConservativeBackfill,
    EasyBackfill,
    HeadBlockingDiscipline,
)
from repro.schedulers.psrs import PsrsOrderPolicy
from repro.schedulers.smart import SmartOrderPolicy, SmartVariant
from repro.schedulers.weights import WeightFn, estimated_area_weight, unit_weight

#: Row keys, in the paper's table order.
ROWS = ("fcfs", "psrs", "smart-ffia", "smart-nfiw", "gg")

#: Column keys, in the paper's table order.
COLUMNS = ("list", "conservative", "easy")

#: Human-readable labels matching the paper's tables.
ROW_LABELS = {
    "fcfs": "FCFS",
    "psrs": "PSRS",
    "smart-ffia": "SMART-FFIA",
    "smart-nfiw": "SMART-NFIW",
    "gg": "Garey&Graham",
}
COLUMN_LABELS = {
    "list": "Listscheduler",
    "conservative": "Backfilling",
    "easy": "EASY-Backfilling",
}


@dataclass(frozen=True, slots=True)
class SchedulerConfig:
    """One cell of the paper's evaluation grid."""

    row: str
    column: str

    @property
    def key(self) -> str:
        return f"{self.row}/{self.column}"

    @property
    def label(self) -> str:
        return f"{ROW_LABELS[self.row]} + {COLUMN_LABELS[self.column]}"

    @property
    def is_reference(self) -> bool:
        """FCFS + EASY is the paper's 0% reference (the CTC production setup)."""
        return self.row == "fcfs" and self.column == "easy"


def paper_configurations() -> Iterator[SchedulerConfig]:
    """The 13 grid cells of Tables 3–6, row-major in paper order."""
    for row in ROWS:
        for column in COLUMNS:
            if row == "gg" and column != "list":
                continue  # backfilling is no benefit for any-fit scheduling
            yield SchedulerConfig(row=row, column=column)


def _make_discipline(column: str, row: str) -> Discipline:
    if row == "gg":
        return AnyFitDiscipline()
    if column == "list":
        return HeadBlockingDiscipline()
    if column == "conservative":
        return ConservativeBackfill()
    if column == "easy":
        return EasyBackfill()
    raise ValueError(f"unknown column {column!r}")


def _make_order_policy(
    row: str,
    total_nodes: int,
    weight: WeightFn,
    recompute_threshold: float,
) -> OrderPolicy:
    if row in ("fcfs", "gg"):
        return SubmitOrderPolicy()
    if row == "psrs":
        return PsrsOrderPolicy(
            total_nodes, weight=weight, recompute_threshold=recompute_threshold
        )
    if row == "smart-ffia":
        return SmartOrderPolicy(
            total_nodes,
            variant=SmartVariant.FFIA,
            weight=weight,
            recompute_threshold=recompute_threshold,
        )
    if row == "smart-nfiw":
        return SmartOrderPolicy(
            total_nodes,
            variant=SmartVariant.NFIW,
            weight=weight,
            recompute_threshold=recompute_threshold,
        )
    raise ValueError(f"unknown row {row!r}")


def build_scheduler(
    config: SchedulerConfig,
    total_nodes: int,
    *,
    weighted: bool = False,
    recompute_threshold: float = 2.0 / 3.0,
) -> Scheduler:
    """Instantiate the scheduler for one grid cell.

    ``weighted`` selects the ordering weight that SMART/PSRS use: job weight
    1 in the unweighted regime, estimated area in the weighted regime
    (Section 4; FCFS and Garey & Graham ignore weights entirely).
    """
    weight = estimated_area_weight if weighted else unit_weight
    order = _make_order_policy(config.row, total_nodes, weight, recompute_threshold)
    discipline = _make_discipline(config.column, config.row)
    name = config.label if config.row != "gg" else ROW_LABELS["gg"]
    return OrderedQueueScheduler(order, discipline, name=name)

"""Order-policy / discipline composition of on-line schedulers.

Every scheduler in the paper's evaluation is a pair:

* an :class:`OrderPolicy` that maintains the *order* of the wait queue
  (submission order, a SMART shelf order, the PSRS conversion order), and
* a :class:`Discipline` that turns the ordered queue into start decisions
  (head-blocking list scheduling, EASY or conservative backfilling, or
  Garey & Graham's any-fit rule).

:class:`OrderedQueueScheduler` composes the two and implements the
:class:`~repro.core.scheduler.Scheduler` interface expected by the
simulator.
"""

from __future__ import annotations

import abc
from array import array
from typing import Sequence

from repro.core.job import Job
from repro.core.scheduler import NO_COALESCING, CoalescingCaps, Scheduler, SchedulerContext


class OrderPolicy(abc.ABC):
    """Maintains the ordering of the wait queue."""

    name: str = "order"

    #: True when the policy's ordering decisions read runtime estimates.
    uses_estimates: bool = False

    #: True when a newly enqueued job always orders *after* every job already
    #: queued and never reorders them — i.e. arrivals are pure appends.  The
    #: simulator's arrival-coalescing fast path requires it (an insertion
    #: anywhere else could change the queue head, and with it the decision).
    #: Only true for submission order: the simulator delivers arrivals in
    #: ``(submit_time, job_id)`` order, so an append keeps that order sorted.
    append_stable: bool = False

    def reset(self) -> None:
        """Drop all queued jobs (fresh simulation)."""

    @abc.abstractmethod
    def enqueue(self, job: Job, now: float) -> None:
        """A job arrived."""

    def enqueue_run(self, jobs: Sequence[Job], now: float) -> None:
        """Enqueue a time-ordered run of arrivals (batched :meth:`enqueue`).

        The default loops; append-stable policies override it with bulk
        appends for the simulator's arrival-coalescing fast path.
        """
        for job in jobs:
            self.enqueue(job, now)

    @abc.abstractmethod
    def remove(self, job: Job) -> None:
        """A queued job was started — drop it from the order."""

    @abc.abstractmethod
    def ordered(self, now: float) -> Sequence[Job]:
        """Current queue in service order.  Must not mutate on read... beyond
        internal reordering; the returned sequence is read by the discipline
        and must reflect every enqueued, not-yet-removed job exactly once."""

    def remove_indexed(self, indices: Sequence[int], jobs: Sequence[Job]) -> None:
        """Drop started jobs known by their positions in ``ordered()``.

        ``indices[k]`` is the position ``jobs[k]`` held in the sequence the
        last ``ordered()`` call returned, with no mutation in between.  The
        default ignores the positions and falls back to per-job
        :meth:`remove`; policies whose ``ordered()`` view *is* their backing
        store override this with direct deletion, skipping the O(queue)
        equality scan per started job that made ``list.remove`` the
        simulator's hottest line.
        """
        for job in jobs:
            self.remove(job)

    def queue_columns(self) -> "tuple[object, object] | None":
        """Columnar ``(nodes, estimated_runtime)`` arrays parallel to
        ``ordered()``, or ``None`` (the default) when the policy does not
        maintain them.  Disciplines use the columns to vectorise their
        candidate scans; the arrays must stay exact mirrors of the queue
        across enqueue/remove."""
        return None

    @abc.abstractmethod
    def __len__(self) -> int:
        ...


class SubmitOrderPolicy(OrderPolicy):
    """First-come-first-serve order: by submission time, ties by job id.

    The simulator already delivers submissions in that order, so a plain
    append keeps the invariant.
    """

    name = "submit-order"
    append_stable = True

    def __init__(self) -> None:
        self._queue: list[Job] = []
        # Columnar mirrors of the queue (node widths / runtime estimates),
        # maintained incrementally so backfilling disciplines can vectorise
        # their candidate scans without rebuilding arrays per decision.
        self._nodes = array("q")
        self._estimates = array("d")
        # The arrays mutate in place, so one tuple serves every
        # ``queue_columns`` call for the scheduler's lifetime.
        self._columns = (self._nodes, self._estimates)

    def reset(self) -> None:
        self._queue.clear()
        del self._nodes[:]
        del self._estimates[:]

    def enqueue(self, job: Job, now: float) -> None:
        self._queue.append(job)
        self._nodes.append(job.nodes)
        self._estimates.append(job.estimated_runtime)

    def enqueue_run(self, jobs: Sequence[Job], now: float) -> None:
        self._queue.extend(jobs)
        self._nodes.extend([job.nodes for job in jobs])
        self._estimates.extend([job.estimated_runtime for job in jobs])

    def remove(self, job: Job) -> None:
        idx = self._queue.index(job)
        del self._queue[idx]
        del self._nodes[idx]
        del self._estimates[idx]

    def remove_indexed(self, indices: Sequence[int], jobs: Sequence[Job]) -> None:
        # ordered() returns the backing list itself, so the indices address
        # it directly; delete from the back so earlier positions stay valid.
        queue = self._queue
        nodes = self._nodes
        estimates = self._estimates
        if len(indices) == 1:
            idx = indices[0]
            del queue[idx]
            del nodes[idx]
            del estimates[idx]
            return
        for idx in sorted(indices, reverse=True):
            del queue[idx]
            del nodes[idx]
            del estimates[idx]

    def ordered(self, now: float) -> Sequence[Job]:
        return self._queue

    def queue_columns(self) -> "tuple[object, object] | None":
        return self._columns

    def __len__(self) -> int:
        return len(self._queue)


class Discipline(abc.ABC):
    """Turns an ordered wait queue into "start these now" decisions."""

    name: str = "discipline"

    #: True when the discipline itself needs runtime estimates (backfilling).
    uses_estimates: bool = False

    #: Guarantee backing :attr:`~repro.core.scheduler.CoalescingCaps
    #: .blocked_arrivals`: once ``select`` has reached its fixpoint at an
    #: instant, appending arrivals that each request more nodes than are
    #: free cannot make the next ``select`` start anything (free nodes are
    #: unchanged, every projection is unchanged, and the newcomers are too
    #: wide to start or backfill).  True for all the paper's disciplines;
    #: wrappers that consult the clock (drain windows) must leave it False.
    coalesce_blocked_arrivals: bool = False

    #: Guarantee backing :attr:`~repro.core.scheduler.CoalescingCaps
    #: .idle_starts`: with an empty queue, arrivals that jointly fit the
    #: free nodes all start immediately, in arrival order.  True only for
    #: estimate-free greedy disciplines; backfilling disciplines leave it
    #: False — not because a lone fitting job would wait (it would not),
    #: but because opting out keeps their planning-profile bookkeeping on
    #: the oracle path, where reservations and shadow times are exercised
    #: by the equivalence suites (see docs/architecture.md).
    coalesce_idle_starts: bool = False

    @abc.abstractmethod
    def select(self, queue: Sequence[Job], ctx: SchedulerContext) -> list[Job]:
        """Jobs to start now, in start order.  Must not mutate ``queue``;
        jointly the result must fit ``ctx.free_nodes``."""

    def select_indexed(
        self, queue: Sequence[Job], ctx: SchedulerContext
    ) -> tuple[list[Job], Sequence[int] | None]:
        """Like :meth:`select`, also reporting queue positions when known.

        Returns ``(started, indices)`` where ``indices[k]`` is the position
        of ``started[k]`` in ``queue`` — or ``None`` when the discipline
        cannot vouch for positions (the default, and any wrapper that hands
        a *filtered* queue to an inner discipline).  Positions let the
        order policy delete started jobs directly instead of scanning with
        ``==`` per job.
        """
        return self.select(queue, ctx), None


class OrderedQueueScheduler(Scheduler):
    """A :class:`Scheduler` assembled from an order policy and a discipline."""

    def __init__(
        self,
        order_policy: OrderPolicy,
        discipline: Discipline,
        name: str | None = None,
    ) -> None:
        self.order_policy = order_policy
        self.discipline = discipline
        self.name = name or f"{order_policy.name}/{discipline.name}"
        self.uses_estimates = order_policy.uses_estimates or discipline.uses_estimates

    def reset(self) -> None:
        self.order_policy.reset()

    def on_submit(self, job: Job, ctx: SchedulerContext) -> None:
        self.order_policy.enqueue(job, ctx.now)

    def on_submit_run(self, jobs: Sequence[Job], ctx: SchedulerContext) -> None:
        self.order_policy.enqueue_run(jobs, ctx.now)

    def on_cancel(self, job: Job, ctx: SchedulerContext) -> None:
        self.order_policy.remove(job)

    def select_jobs(self, ctx: SchedulerContext) -> list[Job]:
        queue = self.order_policy.ordered(ctx.now)
        if not queue:
            return []
        if ctx.vectorize:
            ctx.queue_columns = self.order_policy.queue_columns()
        started, indices = self.discipline.select_indexed(queue, ctx)
        ctx.queue_columns = None
        if started:
            if indices is not None:
                self.order_policy.remove_indexed(indices, started)
            else:
                for job in started:
                    self.order_policy.remove(job)
        return started

    def coalescing_caps(self) -> CoalescingCaps:
        """Coalescing guarantees derived from the policy/discipline pair.

        Every capability additionally requires that *this object* still
        runs the plain composition — a subclass overriding any lifecycle
        hook (``DrainingScheduler``'s timers, say) withdraws all
        guarantees, because the simulator would be skipping the very calls
        the subclass added.
        """
        cls = type(self)
        plain = (
            cls.select_jobs is OrderedQueueScheduler.select_jobs
            and cls.on_submit is OrderedQueueScheduler.on_submit
            and cls.on_submit_run is OrderedQueueScheduler.on_submit_run
            and cls.on_cancel is OrderedQueueScheduler.on_cancel
            and cls.on_complete is Scheduler.on_complete
            and cls.next_wakeup is Scheduler.next_wakeup
        )
        if not plain:
            return NO_COALESCING
        stable = self.order_policy.append_stable
        return CoalescingCaps(
            blocked_arrivals=stable and self.discipline.coalesce_blocked_arrivals,
            idle_starts=stable and self.discipline.coalesce_idle_starts,
            empty_drain=True,
        )

    @property
    def pending_count(self) -> int:
        return len(self.order_policy)

"""Order-policy / discipline composition of on-line schedulers.

Every scheduler in the paper's evaluation is a pair:

* an :class:`OrderPolicy` that maintains the *order* of the wait queue
  (submission order, a SMART shelf order, the PSRS conversion order), and
* a :class:`Discipline` that turns the ordered queue into start decisions
  (head-blocking list scheduling, EASY or conservative backfilling, or
  Garey & Graham's any-fit rule).

:class:`OrderedQueueScheduler` composes the two and implements the
:class:`~repro.core.scheduler.Scheduler` interface expected by the
simulator.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.core.job import Job
from repro.core.scheduler import Scheduler, SchedulerContext


class OrderPolicy(abc.ABC):
    """Maintains the ordering of the wait queue."""

    name: str = "order"

    #: True when the policy's ordering decisions read runtime estimates.
    uses_estimates: bool = False

    def reset(self) -> None:
        """Drop all queued jobs (fresh simulation)."""

    @abc.abstractmethod
    def enqueue(self, job: Job, now: float) -> None:
        """A job arrived."""

    @abc.abstractmethod
    def remove(self, job: Job) -> None:
        """A queued job was started — drop it from the order."""

    @abc.abstractmethod
    def ordered(self, now: float) -> Sequence[Job]:
        """Current queue in service order.  Must not mutate on read... beyond
        internal reordering; the returned sequence is read by the discipline
        and must reflect every enqueued, not-yet-removed job exactly once."""

    @abc.abstractmethod
    def __len__(self) -> int:
        ...


class SubmitOrderPolicy(OrderPolicy):
    """First-come-first-serve order: by submission time, ties by job id.

    The simulator already delivers submissions in that order, so a plain
    append keeps the invariant.
    """

    name = "submit-order"

    def __init__(self) -> None:
        self._queue: list[Job] = []

    def reset(self) -> None:
        self._queue.clear()

    def enqueue(self, job: Job, now: float) -> None:
        self._queue.append(job)

    def remove(self, job: Job) -> None:
        self._queue.remove(job)

    def ordered(self, now: float) -> Sequence[Job]:
        return self._queue

    def __len__(self) -> int:
        return len(self._queue)


class Discipline(abc.ABC):
    """Turns an ordered wait queue into "start these now" decisions."""

    name: str = "discipline"

    #: True when the discipline itself needs runtime estimates (backfilling).
    uses_estimates: bool = False

    @abc.abstractmethod
    def select(self, queue: Sequence[Job], ctx: SchedulerContext) -> list[Job]:
        """Jobs to start now, in start order.  Must not mutate ``queue``;
        jointly the result must fit ``ctx.free_nodes``."""


class OrderedQueueScheduler(Scheduler):
    """A :class:`Scheduler` assembled from an order policy and a discipline."""

    def __init__(
        self,
        order_policy: OrderPolicy,
        discipline: Discipline,
        name: str | None = None,
    ) -> None:
        self.order_policy = order_policy
        self.discipline = discipline
        self.name = name or f"{order_policy.name}/{discipline.name}"
        self.uses_estimates = order_policy.uses_estimates or discipline.uses_estimates

    def reset(self) -> None:
        self.order_policy.reset()

    def on_submit(self, job: Job, ctx: SchedulerContext) -> None:
        self.order_policy.enqueue(job, ctx.now)

    def on_cancel(self, job: Job, ctx: SchedulerContext) -> None:
        self.order_policy.remove(job)

    def select_jobs(self, ctx: SchedulerContext) -> list[Job]:
        queue = self.order_policy.ordered(ctx.now)
        if not queue:
            return []
        started = self.discipline.select(queue, ctx)
        for job in started:
            self.order_policy.remove(job)
        return started

    @property
    def pending_count(self) -> int:
        return len(self.order_policy)

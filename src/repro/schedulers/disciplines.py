"""Servicing disciplines: list scheduling, any-fit, EASY and conservative
backfilling.

The paper's Tables 3–6 have one column per discipline:

* **Listscheduler** — greedy head-blocking list scheduling: "the next job in
  the list is started as soon as the necessary resources are available"
  (Section 5.1).  If the head does not fit, everything waits.
* **Backfilling** — *conservative* backfilling (Feitelson & Weil): a job may
  jump the queue only if it does not increase the projected completion time
  of *any* job ahead of it (Section 5.2).
* **EASY-Backfilling** — Lifka's variant: a job may jump only if it does not
  postpone the projected start of the *first* job in the queue.

Garey & Graham's classical list scheduling is a fourth discipline
(:class:`AnyFitDiscipline`): start any job for which enough resources are
available, no estimates needed — "application of backfilling will be of no
benefit for this method" because it never leaves a startable job waiting.

All projections use the user estimate; actual runtimes may be shorter, so
backfilled jobs can still delay queued work relative to plain FCFS — the
behaviour the paper points out at the end of Section 5.2.

Both backfilling disciplines plan on ``ctx.profile`` — a snapshot of the
incrementally-maintained availability state (or a ``from_running`` rebuild
when the driving loop keeps no state).  The snapshot is theirs to mutate:
tentative starts and reservations go straight into it and die with the
decision point, so early completions are still absorbed automatically — the
next snapshot reflects them.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.job import Job
from repro.core.profile import _OVERRUN_EPSILON, AvailabilityProfile
from repro.core.scheduler import SchedulerContext
from repro.core.vector import numpy_or_none
from repro.schedulers.base import Discipline


def _min_queue_nodes(queue: Sequence[Job], ctx: SchedulerContext) -> int:
    """Narrowest job in ``queue`` — incremental stat when valid, else a scan."""
    cached = ctx.queue_min_nodes(len(queue))
    if cached is not None:
        return cached
    return min(job.nodes for job in queue)


def _reserve_from_now(
    profile: AvailabilityProfile, now: float, duration: float, nodes: int
) -> None:
    """Commit a tentative start at ``now`` the way ``from_running`` projects it.

    Zero-duration estimates are clamped to the overrun epsilon — exactly the
    clamp the reference constructor applies to a projected end at ``now`` —
    so snapshot-based planning stays bit-identical to a rebuild.

    ``now`` is always the snapshot's origin here (EASY plans on a snapshot
    taken at the decision instant), and EASY snapshots are prefix-anchored,
    so the origin fast path applies and yields the same breakpoints and
    levels as ``reserve(now, ...)``.
    """
    profile.reserve_from_origin(duration if duration > 0 else _OVERRUN_EPSILON, nodes)


class HeadBlockingDiscipline(Discipline):
    """Greedy list scheduling: start queue-head jobs while they fit."""

    name = "list"
    uses_estimates = False
    coalesce_blocked_arrivals = True
    coalesce_idle_starts = True

    def select(self, queue: Sequence[Job], ctx: SchedulerContext) -> list[Job]:
        if not queue:
            return []
        free = ctx.free_nodes
        started: list[Job] = []
        for job in queue:
            if job.nodes > free:
                break
            started.append(job)
            free -= job.nodes
        return started

    def select_indexed(
        self, queue: Sequence[Job], ctx: SchedulerContext
    ) -> tuple[list[Job], Sequence[int] | None]:
        started = self.select(queue, ctx)
        return started, range(len(started))


class AnyFitDiscipline(Discipline):
    """Garey & Graham: start every queued job that fits, scanning in order.

    A single in-order pass is exact: free nodes only shrink during the pass,
    and the simulator re-invokes the discipline whenever nodes are released.
    """

    name = "any-fit"
    uses_estimates = False
    coalesce_blocked_arrivals = True
    coalesce_idle_starts = True

    def select(self, queue: Sequence[Job], ctx: SchedulerContext) -> list[Job]:
        started, _indices = self.select_indexed(queue, ctx)
        return started

    def select_indexed(
        self, queue: Sequence[Job], ctx: SchedulerContext
    ) -> tuple[list[Job], Sequence[int] | None]:
        if not queue:
            return [], None
        free = ctx.free_nodes
        started: list[Job] = []
        indices: list[int] = []
        for idx, job in enumerate(queue):
            if job.nodes <= free:
                started.append(job)
                indices.append(idx)
                free -= job.nodes
                if free == 0:
                    break
        return started, indices


class EasyBackfill(Discipline):
    """EASY backfilling (Lifka): never postpone the projected start of the head.

    Implementation: start head jobs greedily; when the head blocks, compute
    its *shadow time* (earliest projected start) and the *extra nodes* (nodes
    free at the shadow time beyond the head's request).  A candidate may be
    backfilled if it fits now and either finishes (by its estimate) before
    the shadow time or uses only extra nodes.  The shadow is recomputed
    after every backfill, which keeps the no-postponement invariant exact
    even when a backfilled job's reservation reshapes the profile.

    The queue walk is index-based: a ``taken`` mask plus a head cursor
    replace the old list mutation (``pop(0)`` / ``remove``), which went
    quadratic on wide startable queues.  The planning profile is one
    ``ctx.profile`` snapshot taken lazily when the head first blocks; jobs
    started this decision point are reserved into it incrementally, which
    is function-identical to the old rebuild-per-backfill.
    """

    name = "easy"
    uses_estimates = True
    coalesce_blocked_arrivals = True
    #: Scratch arrays for the columnar walk, lazily sized (instance attr).
    _buffers = None

    def select(self, queue: Sequence[Job], ctx: SchedulerContext) -> list[Job]:
        started, _indices = self.select_indexed(queue, ctx)
        return started

    def select_indexed(
        self, queue: Sequence[Job], ctx: SchedulerContext
    ) -> tuple[list[Job], Sequence[int] | None]:
        if not queue:
            return [], None
        free = ctx.free_nodes
        now = ctx.now
        # No queued job fits the free nodes: neither the head nor any
        # backfill candidate can start, so skip the profile work.
        if free < _min_queue_nodes(queue, ctx):
            return [], None
        cols = ctx.queue_columns
        if cols is not None and len(cols[0]) == len(queue):
            np = numpy_or_none()
            if np is not None:
                return self._select_indexed_columns(queue, ctx, cols, np, free, now)
        started: list[Job] = []
        indices: list[int] = []
        profile: AvailabilityProfile | None = None  # taken when the head blocks
        n = len(queue)
        taken = [False] * n
        head = 0
        remaining = n

        while remaining:
            while taken[head]:
                head += 1
            job = queue[head]
            if job.nodes <= free:
                started.append(job)
                indices.append(head)
                free -= job.nodes
                taken[head] = True
                remaining -= 1
                if profile is not None:
                    _reserve_from_now(profile, now, job.estimated_runtime, job.nodes)
                continue
            if remaining == 1:
                break
            if profile is None:
                profile = ctx.profile
                for prior in started:
                    _reserve_from_now(
                        profile, now, prior.estimated_runtime, prior.nodes
                    )
            shadow = profile.earliest_start(job.nodes, job.estimated_runtime)
            extra = profile.free_at(shadow) - job.nodes
            candidate = None
            for idx in range(head + 1, n):
                if taken[idx]:
                    continue
                trial = queue[idx]
                if trial.nodes > free:
                    continue
                if now + trial.estimated_runtime <= shadow or trial.nodes <= extra:
                    candidate = idx
                    break
            if candidate is None:
                break
            job = queue[candidate]
            started.append(job)
            indices.append(candidate)
            free -= job.nodes
            taken[candidate] = True
            remaining -= 1
            _reserve_from_now(profile, now, job.estimated_runtime, job.nodes)
        return started, indices

    def _work_buffers(self, n: int, np: "object") -> tuple:
        """Reusable per-instance scratch arrays (sized to the queue).

        One discipline instance serves one scheduler in one simulation
        loop, so the buffers are never shared; reusing them removes the
        per-decision allocations that dominated the vector walk's cost.
        """
        bufs = self._buffers
        if bufs is None or bufs[0].shape[0] < n:
            cap = max(256, 2 * n)
            bufs = (
                np.empty(cap, dtype=np.int64),  # widths (sentinel = taken)
                np.empty(cap, dtype=np.float64),  # now + estimate
                np.empty(cap, dtype=bool),  # candidate mask
                np.empty(cap, dtype=bool),  # scratch for the OR
            )
            self._buffers = bufs
        return bufs

    def _select_indexed_columns(
        self,
        queue: Sequence[Job],
        ctx: SchedulerContext,
        cols: "tuple[object, object]",
        np: "object",
        free: int,
        now: float,
    ) -> tuple[list[Job], Sequence[int]]:
        """Columnar twin of the scalar walk — same decisions, same order.

        The candidate scan (first later job that fits the free nodes and
        either finishes by the shadow or uses only extra nodes) dominates
        EASY's per-decision cost on a long backlog; with the order
        policy's ``(nodes, estimate)`` columns it collapses into a few
        C-speed array comparisons per backfill.  The comparisons are the
        scalar walk's expressions verbatim in float64, so the chosen
        candidate index is always the index the scalar loop would pick.

        Taken jobs are marked by setting their width to a sentinel above
        the machine size: the ``nodes <= free`` and ``nodes <= extra``
        tests then exclude them with no separate mask, and comparisons
        write into preallocated scratch (``out=``) so a decision allocates
        nothing.
        """
        n = len(queue)
        started: list[Job] = []
        indices: list[int] = []
        head = 0
        remaining = n

        # Phase 1 — greedy head starts.  Free nodes only shrink, so once the
        # head blocks it stays blocked for the rest of the decision point.
        # Pure scalar: decisions that never block pay for no array work.
        while True:
            job = queue[head]
            if job.nodes > free:
                break
            started.append(job)
            indices.append(head)
            free -= job.nodes
            remaining -= 1
            if not remaining:
                return started, indices
            head += 1

        if remaining == 1 or free == 0:
            # One job left (the blocked head), or no free nodes at all:
            # nothing can backfill, so skip the profile work entirely.
            return started, indices

        # Phase 2 — the head is blocked: backfill against its shadow.
        bufs = self._work_buffers(n, np)
        widths = bufs[0][:n]
        est_now = bufs[1][:n]
        mask = bufs[2][:n]
        scratch = bufs[3][:n]
        less_equal = np.less_equal
        logical_or = np.logical_or
        logical_and = np.logical_and
        widths[:] = np.frombuffer(cols[0], dtype=np.int64, count=n)
        np.add(np.frombuffer(cols[1], dtype=np.float64, count=n), now, out=est_now)
        taken_sentinel = ctx.total_nodes + 1
        nodes_col = cols[0]
        profile = ctx.profile
        reserve_from_origin = profile.reserve_from_origin
        for prior in started:
            duration = prior.estimated_runtime
            reserve_from_origin(
                duration if duration > 0 else _OVERRUN_EPSILON, prior.nodes
            )
        head_nodes = job.nodes
        head_estimate = job.estimated_runtime
        shadow = profile.earliest_start(head_nodes, head_estimate)
        extra = profile.free_at(shadow) - head_nodes
        # Case-1 reservations (ending at or before the shadow) are only ever
        # *read back* if a later case-2 start recomputes the shadow, so they
        # are deferred and flushed just before that read.  Chains that end
        # without a case-2 never pay for them — the snapshot is discarded.
        pending: list[tuple[float, int]] = []
        while True:
            # One (shadow, extra) epoch: build the candidate mask — nodes <=
            # free and (now + est <= shadow or nodes <= extra); sentinel
            # widths of jobs taken in earlier epochs fail both node tests —
            # and list its indices once.
            less_equal(est_now, shadow, out=mask)
            if extra >= 1:
                # Jobs are at least one node wide, so an extra count below
                # one admits nobody — skip the pair of array tests.
                less_equal(widths, extra, out=scratch)
                logical_or(mask, scratch, out=mask)
            less_equal(widths, free, out=scratch)
            logical_and(mask, scratch, out=mask)
            mask[: head + 1] = False
            candidates = np.nonzero(mask)[0].tolist()
            recompute = False
            for idx in candidates:
                # Within the epoch the scalar walk would re-scan after each
                # start, but a start whose reservation ends at or before the
                # shadow leaves [shadow, inf) — and with it the shadow and
                # the extra count — untouched, so the surviving candidates
                # are exactly this list narrowed by the shrinking free
                # count.  The first hit always lies *after* the previous one
                # (the re-scan's mask is a subset with the previous hit
                # cleared), so a forward walk that skips now-too-wide
                # entries reproduces the re-scan's picks index for index.
                w = nodes_col[idx]
                if w > free:
                    continue  # free only shrinks: permanently out
                job = queue[idx]
                started.append(job)
                indices.append(idx)
                free -= w
                widths[idx] = taken_sentinel
                remaining -= 1
                estimate = job.estimated_runtime
                # The reserve clamp means the shortcut needs the *reserved*
                # end, so clamp once and reuse it for both.
                duration = estimate if estimate > 0 else _OVERRUN_EPSILON
                if remaining == 1:
                    return started, indices
                if now + duration <= shadow:
                    pending.append((duration, w))
                    continue  # epoch intact: keep walking this list
                # The reservation may reshape availability at the shadow:
                # flush the deferred case-1 reservations, commit this one,
                # and recompute exactly as the scalar oracle does.
                if pending:
                    for prior_duration, prior_w in pending:
                        reserve_from_origin(prior_duration, prior_w)
                    pending.clear()
                reserve_from_origin(duration, w)
                shadow = profile.earliest_start(head_nodes, head_estimate)
                extra = profile.free_at(shadow) - head_nodes
                recompute = True
                break
            if not recompute:
                break
        return started, indices


class ConservativeBackfill(Discipline):
    """Conservative backfilling: no queued job's projected completion grows.

    Every decision point takes a fresh availability snapshot
    (``ctx.profile``) and walks the queue in order: each job either starts
    now or receives a reservation at its earliest projected start.  Later
    jobs plan around all earlier reservations, so no job can be postponed
    (with respect to the projections) by a backfilled successor.

    Queued-job reservations live only inside the decision point's snapshot
    — never in the persistent state — which automatically exploits early
    completions: when a job finishes ahead of its estimate the next
    snapshot already shows the freed remainder, exactly like a real
    conservative-backfill queue manager re-evaluating its reservation
    table.

    ``depth`` bounds how many queued jobs are considered per decision point
    (production systems call this ``bf_max_job_test``); jobs beyond the
    bound neither start nor reserve.  ``None`` (the default) is the exact
    algorithm of the paper.  A bounded depth keeps per-event cost constant
    on pathological backlogs at the price of slightly weaker backfilling —
    never of correctness: the no-postponement guarantee among *considered*
    jobs is unchanged, and skipped jobs are simply deferred.
    """

    name = "conservative"
    uses_estimates = True
    coalesce_blocked_arrivals = True

    def __init__(self, depth: int | None = None) -> None:
        if depth is not None and depth < 1:
            raise ValueError("depth must be at least 1 (or None for unbounded)")
        self.depth = depth

    def select(self, queue: Sequence[Job], ctx: SchedulerContext) -> list[Job]:
        started, _indices = self.select_indexed(queue, ctx)
        return started

    def select_indexed(
        self, queue: Sequence[Job], ctx: SchedulerContext
    ) -> tuple[list[Job], Sequence[int] | None]:
        if not queue:
            return [], None
        now = ctx.now
        if self.depth is not None:
            queue = queue[: self.depth]
        # Nothing can start when no queued job fits the free nodes; skip the
        # profile snapshot entirely (frequent during backlog phases).
        if ctx.free_nodes < _min_queue_nodes(queue, ctx):
            return [], None
        profile = ctx.profile
        # Early-exit support: once the nodes free *right now* drop below the
        # narrowest job remaining in the queue, no further job can start at
        # this decision point.  The skipped tail's reservations are never
        # consulted (each decision point plans on a fresh snapshot), so
        # stopping is exact, not an approximation.
        suffix_min = [0] * (len(queue) + 1)
        suffix_min[len(queue)] = _NO_JOB
        for i in range(len(queue) - 1, -1, -1):
            suffix_min[i] = min(queue[i].nodes, suffix_min[i + 1])
        current_free = ctx.free_nodes

        started: list[Job] = []
        indices: list[int] = []
        for i, job in enumerate(queue):
            if current_free < suffix_min[i]:
                break
            # Zero-length estimates still occupy their nodes for the instant
            # they run; reserve an epsilon so two such jobs cannot double-book
            # the same nodes at the same decision point.  allocate() fuses
            # the first-fit query with the reservation (one scan, no
            # re-validation) — this pair is the measured hot spot of the
            # whole simulator.
            est = max(job.estimated_runtime, _ZERO_RUNTIME_EPSILON)
            start = profile.allocate(job.nodes, est)
            if start <= now:
                started.append(job)
                indices.append(i)
                current_free -= job.nodes
        return started, indices


#: Sentinel larger than any machine, so the suffix-min bottom never triggers.
_NO_JOB = 1 << 60


#: Stand-in duration for zero-runtime estimates inside reservation profiles.
_ZERO_RUNTIME_EPSILON = 1e-9

"""Servicing disciplines: list scheduling, any-fit, EASY and conservative
backfilling.

The paper's Tables 3–6 have one column per discipline:

* **Listscheduler** — greedy head-blocking list scheduling: "the next job in
  the list is started as soon as the necessary resources are available"
  (Section 5.1).  If the head does not fit, everything waits.
* **Backfilling** — *conservative* backfilling (Feitelson & Weil): a job may
  jump the queue only if it does not increase the projected completion time
  of *any* job ahead of it (Section 5.2).
* **EASY-Backfilling** — Lifka's variant: a job may jump only if it does not
  postpone the projected start of the *first* job in the queue.

Garey & Graham's classical list scheduling is a fourth discipline
(:class:`AnyFitDiscipline`): start any job for which enough resources are
available, no estimates needed — "application of backfilling will be of no
benefit for this method" because it never leaves a startable job waiting.

All projections use the user estimate; actual runtimes may be shorter, so
backfilled jobs can still delay queued work relative to plain FCFS — the
behaviour the paper points out at the end of Section 5.2.

Both backfilling disciplines plan on ``ctx.profile`` — a snapshot of the
incrementally-maintained availability state (or a ``from_running`` rebuild
when the driving loop keeps no state).  The snapshot is theirs to mutate:
tentative starts and reservations go straight into it and die with the
decision point, so early completions are still absorbed automatically — the
next snapshot reflects them.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.job import Job
from repro.core.profile import _OVERRUN_EPSILON, AvailabilityProfile
from repro.core.scheduler import SchedulerContext
from repro.schedulers.base import Discipline


def _min_queue_nodes(queue: Sequence[Job], ctx: SchedulerContext) -> int:
    """Narrowest job in ``queue`` — incremental stat when valid, else a scan."""
    cached = ctx.queue_min_nodes(len(queue))
    if cached is not None:
        return cached
    return min(job.nodes for job in queue)


def _reserve_from_now(
    profile: AvailabilityProfile, now: float, duration: float, nodes: int
) -> None:
    """Commit a tentative start at ``now`` the way ``from_running`` projects it.

    Zero-duration estimates are clamped to the overrun epsilon — exactly the
    clamp the reference constructor applies to a projected end at ``now`` —
    so snapshot-based planning stays bit-identical to a rebuild.
    """
    profile.reserve(now, duration if duration > 0 else _OVERRUN_EPSILON, nodes)


class HeadBlockingDiscipline(Discipline):
    """Greedy list scheduling: start queue-head jobs while they fit."""

    name = "list"
    uses_estimates = False

    def select(self, queue: Sequence[Job], ctx: SchedulerContext) -> list[Job]:
        if not queue:
            return []
        free = ctx.free_nodes
        started: list[Job] = []
        for job in queue:
            if job.nodes > free:
                break
            started.append(job)
            free -= job.nodes
        return started


class AnyFitDiscipline(Discipline):
    """Garey & Graham: start every queued job that fits, scanning in order.

    A single in-order pass is exact: free nodes only shrink during the pass,
    and the simulator re-invokes the discipline whenever nodes are released.
    """

    name = "any-fit"
    uses_estimates = False

    def select(self, queue: Sequence[Job], ctx: SchedulerContext) -> list[Job]:
        if not queue:
            return []
        free = ctx.free_nodes
        started: list[Job] = []
        for job in queue:
            if job.nodes <= free:
                started.append(job)
                free -= job.nodes
                if free == 0:
                    break
        return started


class EasyBackfill(Discipline):
    """EASY backfilling (Lifka): never postpone the projected start of the head.

    Implementation: start head jobs greedily; when the head blocks, compute
    its *shadow time* (earliest projected start) and the *extra nodes* (nodes
    free at the shadow time beyond the head's request).  A candidate may be
    backfilled if it fits now and either finishes (by its estimate) before
    the shadow time or uses only extra nodes.  The shadow is recomputed
    after every backfill, which keeps the no-postponement invariant exact
    even when a backfilled job's reservation reshapes the profile.

    The queue walk is index-based: a ``taken`` mask plus a head cursor
    replace the old list mutation (``pop(0)`` / ``remove``), which went
    quadratic on wide startable queues.  The planning profile is one
    ``ctx.profile`` snapshot taken lazily when the head first blocks; jobs
    started this decision point are reserved into it incrementally, which
    is function-identical to the old rebuild-per-backfill.
    """

    name = "easy"
    uses_estimates = True

    def select(self, queue: Sequence[Job], ctx: SchedulerContext) -> list[Job]:
        if not queue:
            return []
        free = ctx.free_nodes
        now = ctx.now
        # No queued job fits the free nodes: neither the head nor any
        # backfill candidate can start, so skip the profile work.
        if free < _min_queue_nodes(queue, ctx):
            return []
        started: list[Job] = []
        profile: AvailabilityProfile | None = None  # taken when the head blocks
        n = len(queue)
        taken = [False] * n
        head = 0
        remaining = n

        while remaining:
            while taken[head]:
                head += 1
            job = queue[head]
            if job.nodes <= free:
                started.append(job)
                free -= job.nodes
                taken[head] = True
                remaining -= 1
                if profile is not None:
                    _reserve_from_now(profile, now, job.estimated_runtime, job.nodes)
                continue
            if remaining == 1:
                break
            if profile is None:
                profile = ctx.profile
                for prior in started:
                    _reserve_from_now(
                        profile, now, prior.estimated_runtime, prior.nodes
                    )
            shadow = profile.earliest_start(job.nodes, job.estimated_runtime)
            extra = profile.free_at(shadow) - job.nodes
            candidate = None
            for idx in range(head + 1, n):
                if taken[idx]:
                    continue
                trial = queue[idx]
                if trial.nodes > free:
                    continue
                if now + trial.estimated_runtime <= shadow or trial.nodes <= extra:
                    candidate = idx
                    break
            if candidate is None:
                break
            job = queue[candidate]
            started.append(job)
            free -= job.nodes
            taken[candidate] = True
            remaining -= 1
            _reserve_from_now(profile, now, job.estimated_runtime, job.nodes)
        return started


class ConservativeBackfill(Discipline):
    """Conservative backfilling: no queued job's projected completion grows.

    Every decision point takes a fresh availability snapshot
    (``ctx.profile``) and walks the queue in order: each job either starts
    now or receives a reservation at its earliest projected start.  Later
    jobs plan around all earlier reservations, so no job can be postponed
    (with respect to the projections) by a backfilled successor.

    Queued-job reservations live only inside the decision point's snapshot
    — never in the persistent state — which automatically exploits early
    completions: when a job finishes ahead of its estimate the next
    snapshot already shows the freed remainder, exactly like a real
    conservative-backfill queue manager re-evaluating its reservation
    table.

    ``depth`` bounds how many queued jobs are considered per decision point
    (production systems call this ``bf_max_job_test``); jobs beyond the
    bound neither start nor reserve.  ``None`` (the default) is the exact
    algorithm of the paper.  A bounded depth keeps per-event cost constant
    on pathological backlogs at the price of slightly weaker backfilling —
    never of correctness: the no-postponement guarantee among *considered*
    jobs is unchanged, and skipped jobs are simply deferred.
    """

    name = "conservative"
    uses_estimates = True

    def __init__(self, depth: int | None = None) -> None:
        if depth is not None and depth < 1:
            raise ValueError("depth must be at least 1 (or None for unbounded)")
        self.depth = depth

    def select(self, queue: Sequence[Job], ctx: SchedulerContext) -> list[Job]:
        if not queue:
            return []
        now = ctx.now
        if self.depth is not None:
            queue = queue[: self.depth]
        # Nothing can start when no queued job fits the free nodes; skip the
        # profile snapshot entirely (frequent during backlog phases).
        if ctx.free_nodes < _min_queue_nodes(queue, ctx):
            return []
        profile = ctx.profile
        # Early-exit support: once the nodes free *right now* drop below the
        # narrowest job remaining in the queue, no further job can start at
        # this decision point.  The skipped tail's reservations are never
        # consulted (each decision point plans on a fresh snapshot), so
        # stopping is exact, not an approximation.
        suffix_min = [0] * (len(queue) + 1)
        suffix_min[len(queue)] = _NO_JOB
        for i in range(len(queue) - 1, -1, -1):
            suffix_min[i] = min(queue[i].nodes, suffix_min[i + 1])
        current_free = ctx.free_nodes

        started: list[Job] = []
        for i, job in enumerate(queue):
            if current_free < suffix_min[i]:
                break
            # Zero-length estimates still occupy their nodes for the instant
            # they run; reserve an epsilon so two such jobs cannot double-book
            # the same nodes at the same decision point.  allocate() fuses
            # the first-fit query with the reservation (one scan, no
            # re-validation) — this pair is the measured hot spot of the
            # whole simulator.
            est = max(job.estimated_runtime, _ZERO_RUNTIME_EPSILON)
            start = profile.allocate(job.nodes, est)
            if start <= now:
                started.append(job)
                current_free -= job.nodes
        return started


#: Sentinel larger than any machine, so the suffix-min bottom never triggers.
_NO_JOB = 1 << 60


#: Stand-in duration for zero-runtime estimates inside reservation profiles.
_ZERO_RUNTIME_EPSILON = 1e-9

"""Admission rules: per-user job limits and class priorities.

Two policy rules of the paper's examples constrain *which* queued jobs are
eligible rather than how eligible jobs are ordered:

* Example 5, Rule 4 — "Every user is allowed at most two batch jobs on the
  machine at any time."  The administrator later reads this as "all jobs
  should be treated equally" when deriving the objective, but the limit
  itself is an admission constraint the scheduler must enforce.
  :class:`UserLimitDiscipline` wraps any servicing discipline and hides
  jobs whose user already has the maximum number of jobs *running*.
* Example 1, Rules 1/3 — the drug design lab's jobs "have the highest
  priority", the chemistry department has "preferred access", the rest of
  the university queues behind.  :class:`ClassPriorityOrderPolicy` orders
  the queue by a job-class rank (from ``job.meta['class']``) before any
  secondary order, implementing priority *between* classes while
  delegating order *within* a class.

Both compose with everything else in :mod:`repro.schedulers` — e.g.
Example 1's machine could run ``ClassPriorityOrderPolicy`` over SMART
orders with EASY backfilling under a user limit.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.job import Job
from repro.core.scheduler import SchedulerContext
from repro.schedulers.base import Discipline, OrderPolicy


class UserLimitDiscipline(Discipline):
    """Enforce a per-user cap on concurrently running jobs (Rule 4).

    Jobs of a user at the cap are invisible to the inner discipline this
    decision point; they stay queued and become eligible when one of the
    user's jobs completes.  Counting includes jobs the inner discipline
    starts *within* the same decision point, so a burst submission cannot
    overshoot the cap.
    """

    def __init__(self, inner: Discipline, max_running_per_user: int = 2) -> None:
        if max_running_per_user < 1:
            raise ValueError("max_running_per_user must be at least 1")
        self.inner = inner
        self.max_running_per_user = max_running_per_user
        self.name = f"user-limit({inner.name})"
        self.uses_estimates = inner.uses_estimates

    def select(self, queue: Sequence[Job], ctx: SchedulerContext) -> list[Job]:
        running_per_user: dict[int, int] = {}
        for running in ctx.running.values():
            user = running.job.user
            running_per_user[user] = running_per_user.get(user, 0) + 1

        # The inner discipline sees only currently-eligible jobs; its batch
        # is then filtered so same-batch starts also respect the cap.  A
        # skipped job stays queued and becomes eligible once one of its
        # user's jobs completes.  Skipping is always safe: a subset of a
        # feasible batch remains node-feasible, and removing a start can
        # only free resources, never postpone another job's projection.
        eligible = [
            job
            for job in queue
            if running_per_user.get(job.user, 0) < self.max_running_per_user
        ]
        if not eligible:
            return []
        # The filtered queue no longer matches any columnar view the order
        # policy published; drop the hint so the inner discipline rescans.
        ctx.queue_columns = None
        batch = self.inner.select(eligible, ctx)
        started: list[Job] = []
        for job in batch:
            if running_per_user.get(job.user, 0) >= self.max_running_per_user:
                continue  # cap hit within the batch; keep the job queued
            running_per_user[job.user] = running_per_user.get(job.user, 0) + 1
            started.append(job)
        return started


class ClassPriorityOrderPolicy(OrderPolicy):
    """Order the queue by job-class rank, then by an inner policy's order.

    ``ranks`` maps class labels (``job.meta['class']``) to integers; lower
    rank is served first.  Unknown classes get ``default_rank``.  Within a
    rank, the inner policy's relative order is preserved (stable sort), so
    e.g. FCFS-within-class or SMART-within-class both work.
    """

    def __init__(
        self,
        inner: OrderPolicy,
        ranks: Mapping[str, int],
        *,
        default_rank: int = 1_000,
    ) -> None:
        self.inner = inner
        self.ranks = dict(ranks)
        self.default_rank = default_rank
        self.name = f"class-priority({inner.name})"
        self.uses_estimates = inner.uses_estimates

    def rank_of(self, job: Job) -> int:
        label = job.meta.get("class")
        return self.ranks.get(label, self.default_rank) if label else self.default_rank

    def reset(self) -> None:
        self.inner.reset()

    def enqueue(self, job: Job, now: float) -> None:
        self.inner.enqueue(job, now)

    def remove(self, job: Job) -> None:
        self.inner.remove(job)

    def ordered(self, now: float) -> Sequence[Job]:
        inner_order = list(self.inner.ordered(now))
        inner_order.sort(key=self.rank_of)  # stable: preserves inner order per rank
        return inner_order

    def __len__(self) -> int:
        return len(self.inner)


#: Example 1's access classes, best first (Rules 1 and 3).
EXAMPLE1_RANKS: dict[str, int] = {
    "drug-design": 0,
    "chemistry": 1,
    "university": 2,
    "industry": 3,
}

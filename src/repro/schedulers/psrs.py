"""PSRS — Preemptive Smith-Ratio Scheduling (Schwiegelshohn [13]).

Section 5.5 of the paper.  PSRS builds a *preemptive* schedule:

1. order all jobs by their modified Smith ratio
   ``weight / (nodes * runtime)``, largest first;
2. greedy list scheduling for jobs needing at most half the machine
   ("small" jobs); a *wide* job (more than half the nodes) that "has been
   waiting for some time" preempts all running jobs, executes alone, and the
   preempted jobs resume afterwards.

The target machine supports neither preemption nor time sharing, so the
paper converts the preemptive schedule into a job *order* (Section 5.5):

1. two geometric sequences of time instants — factor 2, different offsets —
   define completion-time bins, one sequence for wide jobs and one for small
   jobs;
2. each job is assigned to the bin containing its completion time in the
   preemptive schedule; within a bin the original Smith ratio
   (``weight / runtime``) order is maintained;
3. the final order alternates bins from the two sequences, starting with the
   small-job sequence.

The paper leaves three constants unspecified; we expose them as parameters
and document our defaults (see DESIGN.md, substitution 3):

* ``patience`` — a wide job preempts once it has waited ``patience x`` its
  own (estimated) runtime *after reaching the head of the ratio-ordered
  list* (only the head job "has been waiting" in a greedy list schedule;
  arming every wide job at release floods the order with wide jobs and
  destroys the unweighted results).  Default 1.0, the self-length delay
  budget that gives the ESA'96 construction its constant factor;
* ``small_offset`` / ``wide_offset`` — the leading terms of the two
  geometric sequences, defaults 1.0 and 1.5 (any pair of distinct offsets
  satisfies the construction; 1.5 interleaves the sequences evenly in log
  space).

Everything here sees *estimated* runtimes only.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.job import Job
from repro.schedulers.reorder import RecomputingOrderPolicy
from repro.schedulers.weights import WeightFn, estimated_area_weight


@dataclass(frozen=True, slots=True)
class PreemptiveScheduleEntry:
    """Completion bookkeeping for one job in the preemptive PSRS schedule."""

    job: Job
    completion_time: float
    is_wide: bool
    preemptions: int


def _modified_smith_ratio(job: Job, weight: WeightFn) -> float:
    denom = job.nodes * job.estimated_runtime
    if denom == 0:
        return math.inf
    return weight(job) / denom


def _smith_ratio(job: Job, weight: WeightFn) -> float:
    rt = job.estimated_runtime
    if rt == 0:
        return math.inf
    return weight(job) / rt


def preemptive_psrs(
    jobs: Sequence[Job],
    total_nodes: int,
    *,
    weight: WeightFn = estimated_area_weight,
    patience: float = 1.0,
) -> list[PreemptiveScheduleEntry]:
    """Build the off-line preemptive PSRS schedule for jobs released at 0.

    Returns one entry per job with its completion time in the preemptive
    schedule.  The simulation is event driven: decision points are job
    completions and wide-job trigger times.
    """
    if patience < 0:
        raise ValueError(f"patience must be non-negative, got {patience}")
    if not jobs:
        return []

    half = total_nodes / 2.0
    pending: list[Job] = sorted(
        jobs, key=lambda j: (-_modified_smith_ratio(j, weight), j.job_id)
    )

    remaining: dict[int, float] = {j.job_id: j.estimated_runtime for j in jobs}
    running: dict[int, Job] = {}
    preempted: list[Job] = []  # resumed before fresh small jobs start
    preemption_count: dict[int, int] = {j.job_id: 0 for j in jobs}
    start_times: dict[int, float] = {}
    free = total_nodes
    now = 0.0
    entries: dict[int, PreemptiveScheduleEntry] = {}
    # The wide job at the head of the pending list "has been waiting" since
    # it became the head; it preempts once that wait exceeds patience times
    # its own length.  Wide jobs further down the list are not waiting yet —
    # the greedy list schedule has not reached them.
    armed_head: int | None = None
    armed_at = 0.0

    def finish(job: Job, is_wide: bool) -> None:
        entries[job.job_id] = PreemptiveScheduleEntry(
            job=job,
            completion_time=now,
            is_wide=is_wide,
            preemptions=preemption_count[job.job_id],
        )

    def run_wide(wide: Job) -> None:
        """Preempt everything, run ``wide`` alone to completion."""
        nonlocal now, free
        for job in list(running.values()):
            remaining[job.job_id] -= now - start_times[job.job_id]
            preemption_count[job.job_id] += 1
            preempted.append(job)
            free += job.nodes
            del running[job.job_id]
        # Zero remaining work (job completed exactly now) should complete,
        # not resume.
        still = []
        for job in preempted:
            if remaining[job.job_id] <= 1e-12:
                finish(job, is_wide=False)
            else:
                still.append(job)
        preempted[:] = still
        now += remaining[wide.job_id]
        remaining[wide.job_id] = 0.0
        finish(wide, is_wide=True)

    while pending or running or preempted:
        # 1. Resume preempted jobs, then greedy any-fit over pending small
        #    jobs in ratio order (the paper's "greedy list schedule ... for
        #    all jobs requiring at most 50% of the machine nodes").
        for job in list(preempted):
            if job.nodes <= free:
                preempted.remove(job)
                running[job.job_id] = job
                start_times[job.job_id] = now
                free -= job.nodes
        for job in list(pending):
            if job.nodes <= half and job.nodes <= free:
                pending.remove(job)
                running[job.job_id] = job
                start_times[job.job_id] = now
                free -= job.nodes

        # 2. Wide job waiting at the head of the list?
        head = pending[0] if pending else None
        trigger = math.inf
        if head is not None and head.nodes > half:
            if armed_head != head.job_id:
                armed_head = head.job_id
                armed_at = now
            trigger = armed_at + patience * head.estimated_runtime
            if now >= trigger or not running:
                pending.pop(0)
                armed_head = None
                run_wide(head)
                continue

        if not running:
            break  # nothing pending can be small (it would have started)

        # 3. Advance to the next event: a completion or the head trigger.
        next_completion = min(
            start_times[job_id] + remaining[job_id] for job_id in running
        )
        now = min(next_completion, trigger)
        # Complete every job whose remaining work elapses by now.  At least
        # one job completes whenever now == next_completion, so the loop
        # always makes progress.
        for job_id in list(running):
            if start_times[job_id] + remaining[job_id] <= now:
                job = running.pop(job_id)
                free += job.nodes
                remaining[job_id] = 0.0
                finish(job, is_wide=False)

    # Anything left preempted or queued is a logic error.
    if len(entries) != len(jobs):
        missing = {j.job_id for j in jobs} - set(entries)
        raise AssertionError(f"preemptive PSRS lost jobs: {sorted(missing)}")
    return [entries[j.job_id] for j in jobs]


def _bin_index(time: float, offset: float) -> int:
    """Index k of the bin ``]offset*2^(k-1), offset*2^k]`` containing time.

    Bin 0 is ``]0, offset]`` and absorbs completions at 0.
    """
    if time <= offset:
        return 0
    return max(1, math.ceil(math.log2(time / offset) - 1e-9))


def psrs_order(
    jobs: Sequence[Job],
    total_nodes: int,
    *,
    weight: WeightFn = estimated_area_weight,
    patience: float = 1.0,
    small_offset: float = 1.0,
    wide_offset: float = 1.5,
) -> list[Job]:
    """Non-preemptive PSRS service order (preemptive schedule + conversion)."""
    if not jobs:
        return []
    entries = preemptive_psrs(jobs, total_nodes, weight=weight, patience=patience)

    small_bins: dict[int, list[PreemptiveScheduleEntry]] = {}
    wide_bins: dict[int, list[PreemptiveScheduleEntry]] = {}
    for entry in entries:
        if entry.is_wide:
            wide_bins.setdefault(_bin_index(entry.completion_time, wide_offset), []).append(entry)
        else:
            small_bins.setdefault(_bin_index(entry.completion_time, small_offset), []).append(entry)

    def drain(bins: dict[int, list[PreemptiveScheduleEntry]], k: int) -> list[Job]:
        batch = bins.pop(k, [])
        batch.sort(key=lambda e: (-_smith_ratio(e.job, weight), e.job.job_id))
        return [e.job for e in batch]

    order: list[Job] = []
    max_bin = max([*small_bins, *wide_bins], default=-1)
    for k in range(max_bin + 1):
        order.extend(drain(small_bins, k))  # alternation starts with small
        order.extend(drain(wide_bins, k))
    return order


class PsrsOrderPolicy(RecomputingOrderPolicy):
    """On-line wait-queue ordering by repeated off-line PSRS runs."""

    def __init__(
        self,
        total_nodes: int,
        *,
        weight: WeightFn = estimated_area_weight,
        patience: float = 1.0,
        small_offset: float = 1.0,
        wide_offset: float = 1.5,
        recompute_threshold: float = 2.0 / 3.0,
    ) -> None:
        super().__init__(total_nodes, recompute_threshold=recompute_threshold)
        self.weight = weight
        self.patience = patience
        self.small_offset = small_offset
        self.wide_offset = wide_offset
        self.name = "PSRS"

    def compute_order(self, jobs: Sequence[Job]) -> list[Job]:
        return psrs_order(
            jobs,
            self.total_nodes,
            weight=self.weight,
            patience=self.patience,
            small_offset=self.small_offset,
            wide_offset=self.wide_offset,
        )

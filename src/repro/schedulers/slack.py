"""Slack-based backfilling — the continuum between EASY and conservative.

Feitelson & Weil's two variants (Section 5.2) are the endpoints of a
spectrum: EASY protects only the queue head from postponement, while
conservative protects everyone.  Slack-based backfilling (Talby &
Feitelson, IPDPS'99 — contemporaneous with the paper) interpolates: every
queued job receives a *slack allowance*, and a backfill move is legal iff
it postpones no queued job's projected start by more than its remaining
slack.

Implementation: like :class:`~repro.schedulers.disciplines.ConservativeBackfill`,
each decision point plans on a fresh ``ctx.profile`` snapshot and every
queued job receives a reservation — but each job's reservation is placed at
``earliest_start + slack``, where

``slack = slack_factor * estimated_runtime``

(the standard proportional allowance).  Jobs can therefore compress in
front of a reserved job by up to its slack.  ``slack_factor = 0``
reproduces conservative backfilling exactly; large factors approach the
head-protected-only behaviour of EASY.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.job import Job
from repro.core.scheduler import SchedulerContext
from repro.schedulers.base import Discipline
from repro.schedulers.disciplines import (
    _NO_JOB,
    _ZERO_RUNTIME_EPSILON,
    _min_queue_nodes,
)


class SlackBackfill(Discipline):
    """Backfilling with per-job proportional slack allowances."""

    name = "slack"
    uses_estimates = True
    coalesce_blocked_arrivals = True

    def __init__(self, slack_factor: float = 1.0) -> None:
        if slack_factor < 0:
            raise ValueError("slack_factor must be non-negative")
        self.slack_factor = slack_factor
        self.name = f"slack({slack_factor:g})"

    def select(self, queue: Sequence[Job], ctx: SchedulerContext) -> list[Job]:
        started, _indices = self.select_indexed(queue, ctx)
        return started

    def select_indexed(
        self, queue: Sequence[Job], ctx: SchedulerContext
    ) -> tuple[list[Job], Sequence[int] | None]:
        if not queue:
            return [], None
        now = ctx.now
        if ctx.free_nodes < _min_queue_nodes(queue, ctx):
            return [], None
        profile = ctx.profile
        suffix_min = [0] * (len(queue) + 1)
        suffix_min[len(queue)] = _NO_JOB
        for i in range(len(queue) - 1, -1, -1):
            suffix_min[i] = min(queue[i].nodes, suffix_min[i + 1])
        current_free = ctx.free_nodes

        started: list[Job] = []
        indices: list[int] = []
        for i, job in enumerate(queue):
            if current_free < suffix_min[i]:
                break
            est = max(job.estimated_runtime, _ZERO_RUNTIME_EPSILON)
            start = profile.earliest_start(job.nodes, est)
            if start <= now:
                # Startable now: start it and commit the real usage.
                profile.reserve(start, est, job.nodes)
                started.append(job)
                indices.append(i)
                current_free -= job.nodes
            else:
                # Not startable: reserve at its earliest start *plus* the
                # slack allowance, leaving room for later jobs to squeeze
                # in front of it by at most that much.  allocate() fuses
                # the delayed query with its reservation.
                slack = self.slack_factor * job.estimated_runtime
                profile.allocate(job.nodes, est, after=start + slack)
        return started, indices

"""First-Come-First-Serve (Section 5.1).

Jobs are ordered by submission time and serviced by greedy list scheduling.
The paper lists its virtues: fairness (a job's completion is independent of
later submissions), no need for runtime estimates, trivial implementation —
and its vice: "a relatively large percentage of idle nodes especially if
many highly parallel jobs are submitted", which is why production sites
combined it with backfilling.

``FCFSScheduler`` composes the submit-order policy with a configurable
discipline, covering the FCFS row of Tables 3–6:

>>> FCFSScheduler()                    # plain FCFS ("Listscheduler" column)
>>> FCFSScheduler.with_easy()          # FCFS + EASY backfilling (CTC setup)
>>> FCFSScheduler.with_conservative()  # FCFS + conservative backfilling
"""

from __future__ import annotations

from repro.schedulers.base import Discipline, OrderedQueueScheduler, SubmitOrderPolicy
from repro.schedulers.disciplines import (
    ConservativeBackfill,
    EasyBackfill,
    HeadBlockingDiscipline,
)


class FCFSScheduler(OrderedQueueScheduler):
    """FCFS with a pluggable servicing discipline (default: head-blocking)."""

    def __init__(self, discipline: Discipline | None = None, name: str | None = None) -> None:
        discipline = discipline or HeadBlockingDiscipline()
        super().__init__(
            SubmitOrderPolicy(),
            discipline,
            name=name or f"FCFS/{discipline.name}",
        )

    @classmethod
    def plain(cls) -> "FCFSScheduler":
        """Head-blocking FCFS — the paper's "Listscheduler" cell."""
        return cls(HeadBlockingDiscipline(), name="FCFS")

    @classmethod
    def with_easy(cls) -> "FCFSScheduler":
        """FCFS + EASY backfilling — the paper's reference configuration."""
        return cls(EasyBackfill(), name="FCFS+EASY")

    @classmethod
    def with_conservative(cls) -> "FCFSScheduler":
        """FCFS + conservative backfilling."""
        return cls(ConservativeBackfill(), name="FCFS+CONS")

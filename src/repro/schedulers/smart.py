"""The SMART shelf algorithm (Turek et al. [21], Schwiegelshohn et al. [14]).

Section 5.4 of the paper.  Off-line, SMART proceeds in three steps:

1. **Binning** — jobs are assigned to bins by execution time; the bin upper
   bounds form the geometric sequence ``1, gamma, gamma^2, ...`` (intervals
   ``]0,1], ]1,gamma], ]gamma, gamma^2], ...``).  The paper uses
   ``gamma = 2``.
2. **Shelving** — within each bin jobs are packed onto *shelves*
   (sub-schedules whose jobs start concurrently), each shelf at most the
   machine width.  Two packing variants from [14]:

   * **FFIA** (First Fit Increasing Area): jobs sorted by increasing area
     (runtime × nodes); each job goes on the first shelf of its bin with
     room, else opens a new shelf.
   * **NFIW** (Next Fit Increasing Width to Weight): jobs sorted by
     increasing ``nodes / weight``; each job goes on the *current* shelf if
     it fits, else a new shelf becomes current.

3. **Smith's rule over shelves** — every shelf gets the ratio
   ``sum of job weights / max job execution time``; shelves are scheduled in
   decreasing ratio order (Smith [19] applied to shelves as compound jobs).

The returned *job order* concatenates the shelves; the on-line adapter
(:class:`SmartOrderPolicy`, built on :mod:`repro.schedulers.reorder`)
services it with a greedy list schedule exactly as the paper prescribes.
All runtimes seen here are user estimates — the off-line algorithm never
gets to peek at realised runtimes.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.job import Job
from repro.schedulers.reorder import RecomputingOrderPolicy
from repro.schedulers.weights import WeightFn, estimated_area_weight


class SmartVariant(enum.Enum):
    """Shelf-packing variant of step 2."""

    FFIA = "ffia"
    NFIW = "nfiw"


@dataclass(slots=True)
class _Shelf:
    """A set of jobs started concurrently; width-bounded by the machine."""

    index: int
    bin_index: int
    jobs: list[Job] = field(default_factory=list)
    used_nodes: int = 0
    max_runtime: float = 0.0
    total_weight: float = 0.0

    def add(self, job: Job, weight: float) -> None:
        self.jobs.append(job)
        self.used_nodes += job.nodes
        self.max_runtime = max(self.max_runtime, job.estimated_runtime)
        self.total_weight += weight

    def smith_ratio(self) -> float:
        if self.max_runtime == 0.0:
            return math.inf
        return self.total_weight / self.max_runtime


def runtime_bin(runtime: float, gamma: float) -> int:
    """Bin index of an execution time under the geometric binning of step 1.

    Bin 0 is ``]0, 1]`` (and absorbs zero runtimes); bin ``k`` is
    ``]gamma^(k-1), gamma^k]``.
    """
    if runtime <= 1.0:
        return 0
    # ceil(log_gamma(runtime)) with a tolerance so exact powers of gamma land
    # on their closed upper boundary instead of the next bin.
    raw = math.log(runtime) / math.log(gamma)
    return max(1, math.ceil(raw - 1e-9))


def smart_order(
    jobs: Sequence[Job],
    total_nodes: int,
    *,
    variant: SmartVariant = SmartVariant.FFIA,
    weight: WeightFn = estimated_area_weight,
    gamma: float = 2.0,
) -> list[Job]:
    """Run off-line SMART and return the service order of ``jobs``.

    ``gamma`` is the bin growth factor (paper: 2).  ``weight`` is the
    scheduler-visible job weight (1 in the unweighted regime, estimated
    area in the weighted regime).
    """
    if gamma <= 1.0:
        raise ValueError(f"gamma must exceed 1, got {gamma}")
    if not jobs:
        return []

    # Step 1: bin by (estimated) execution time.
    bins: dict[int, list[Job]] = {}
    for job in jobs:
        bins.setdefault(runtime_bin(job.estimated_runtime, gamma), []).append(job)

    # Step 2: pack each bin onto shelves.
    shelves: list[_Shelf] = []
    for bin_index in sorted(bins):
        bin_jobs = bins[bin_index]
        if variant is SmartVariant.FFIA:
            bin_jobs = sorted(
                bin_jobs, key=lambda j: (j.nodes * j.estimated_runtime, j.job_id)
            )
            bin_shelves: list[_Shelf] = []
            for job in bin_jobs:
                for shelf in bin_shelves:  # first fit over this bin's shelves
                    if shelf.used_nodes + job.nodes <= total_nodes:
                        shelf.add(job, weight(job))
                        break
                else:
                    shelf = _Shelf(index=len(shelves) + len(bin_shelves), bin_index=bin_index)
                    shelf.add(job, weight(job))
                    bin_shelves.append(shelf)
            shelves.extend(bin_shelves)
        else:  # NFIW
            def width_to_weight(job: Job) -> float:
                w = weight(job)
                return math.inf if w == 0 else job.nodes / w

            bin_jobs = sorted(bin_jobs, key=lambda j: (width_to_weight(j), j.job_id))
            current: _Shelf | None = None
            for job in bin_jobs:
                if current is None or current.used_nodes + job.nodes > total_nodes:
                    current = _Shelf(index=len(shelves), bin_index=bin_index)
                    shelves.append(current)
                current.add(job, weight(job))

    # Step 3: Smith's rule over shelves, largest ratio first.  Ties broken by
    # creation order so the result is deterministic.
    shelves.sort(key=lambda s: (-s.smith_ratio(), s.bin_index, s.index))
    order: list[Job] = []
    for shelf in shelves:
        order.extend(shelf.jobs)
    return order


class SmartOrderPolicy(RecomputingOrderPolicy):
    """On-line wait-queue ordering by repeated off-line SMART runs."""

    def __init__(
        self,
        total_nodes: int,
        *,
        variant: SmartVariant = SmartVariant.FFIA,
        weight: WeightFn = estimated_area_weight,
        gamma: float = 2.0,
        recompute_threshold: float = 2.0 / 3.0,
    ) -> None:
        super().__init__(total_nodes, recompute_threshold=recompute_threshold)
        self.variant = variant
        self.weight = weight
        self.gamma = gamma
        self.name = f"SMART-{variant.value.upper()}"

    def compute_order(self, jobs: Sequence[Job]) -> list[Job]:
        return smart_order(
            jobs,
            self.total_nodes,
            variant=self.variant,
            weight=self.weight,
            gamma=self.gamma,
        )

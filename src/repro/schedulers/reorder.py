"""On-line adaptation of off-line ordering algorithms (Section 5.4, item 1).

SMART and PSRS are off-line algorithms: they need all jobs at time 0 and
a-priori runtimes.  The paper adapts them by

1. using them only to produce a *job order* over the jobs "already submitted
   but not yet started", serviced by a greedy list schedule (optionally with
   backfilling), and
2. substituting the user estimate for the actual execution time.

"In order to reduce the number of recomputations … the schedule is
recalculated when the ratio between the already scheduled jobs in the wait
queue to all the jobs in this queue exceeds a certain value.  In the example
a ratio of 2/3 is used."  We read this as: the order is recomputed as soon
as the fraction of the queue covered by the last off-line run drops below
the threshold (i.e. more than one third of the queue is new).  Jobs that
arrived after the last recomputation are appended in submission order until
the next recomputation.  The threshold is a constructor parameter, so the
sensitivity ablation in ``benchmarks/bench_ablations.py`` can sweep it.
"""

from __future__ import annotations

import abc
from typing import Callable, Sequence

from repro.core.job import Job
from repro.schedulers.base import OrderPolicy
from repro.schedulers.weights import WeightFn

#: An off-line ordering kernel: (queued jobs, machine size) -> service order.
OrderKernel = Callable[[Sequence[Job], int], list[Job]]


class RecomputingOrderPolicy(OrderPolicy):
    """Maintains an off-line computed order over a changing wait queue."""

    uses_estimates = True

    def __init__(
        self,
        total_nodes: int,
        *,
        recompute_threshold: float = 2.0 / 3.0,
    ) -> None:
        if not 0.0 < recompute_threshold <= 1.0:
            raise ValueError(
                f"recompute_threshold must be in (0, 1], got {recompute_threshold}"
            )
        self.total_nodes = total_nodes
        self.recompute_threshold = recompute_threshold
        self._ordered: list[Job] = []
        self._fresh: list[Job] = []  # arrivals since the last off-line run
        #: Number of off-line recomputations performed (diagnostics, Tables 7/8).
        self.recompute_count = 0

    @abc.abstractmethod
    def compute_order(self, jobs: Sequence[Job]) -> list[Job]:
        """Run the off-line algorithm over ``jobs`` and return the order."""

    # -- OrderPolicy interface -------------------------------------------------

    def reset(self) -> None:
        self._ordered.clear()
        self._fresh.clear()
        self.recompute_count = 0

    def enqueue(self, job: Job, now: float) -> None:
        self._fresh.append(job)

    def remove(self, job: Job) -> None:
        try:
            self._ordered.remove(job)
        except ValueError:
            self._fresh.remove(job)

    def ordered(self, now: float) -> Sequence[Job]:
        total = len(self._ordered) + len(self._fresh)
        if total == 0:
            return ()
        if self._fresh and len(self._ordered) / total < self.recompute_threshold:
            self._ordered = self.compute_order(self._ordered + self._fresh)
            self._fresh = []
            self.recompute_count += 1
        return self._ordered + self._fresh

    def __len__(self) -> int:
        return len(self._ordered) + len(self._fresh)


class KernelOrderPolicy(RecomputingOrderPolicy):
    """A :class:`RecomputingOrderPolicy` wrapping a plain ordering function."""

    def __init__(
        self,
        kernel: OrderKernel,
        total_nodes: int,
        name: str,
        *,
        recompute_threshold: float = 2.0 / 3.0,
    ) -> None:
        super().__init__(total_nodes, recompute_threshold=recompute_threshold)
        self._kernel = kernel
        self.name = name

    def compute_order(self, jobs: Sequence[Job]) -> list[Job]:
        return self._kernel(jobs, self.total_nodes)

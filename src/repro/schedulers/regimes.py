"""Combining algorithms across policy time windows (Section 7's next step).

Example 5's policy has two objective regimes — weekday daytime (minimise
ART) and nights/weekends (minimise AWRT) — and the administrator concludes
by noting that "she must evaluate the effect of combining the selected
algorithms".  This module performs that combination:

* :class:`TimeWindow` — the recurring weekly window of a policy rule
  (e.g. "weekdays 07:00–20:00"), evaluated against simulated time;
* :class:`RegimeSwitchingScheduler` — one wait queue, two (order policy,
  discipline) pairs; decisions are delegated to the pair whose window
  contains the current simulated time.

Both order policies track the full queue at all times (enqueue/remove are
mirrored), so a regime switch never loses or duplicates jobs; only the
*ordering and discipline* of future decisions changes — exactly how a real
resource manager would swap scheduling modes at 8pm without touching the
queue.

Time-of-day convention matches :class:`repro.workloads.ctc.CTCModel`:
simulated time 0 is 00:00 on a Monday.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.job import Job
from repro.core.scheduler import Scheduler, SchedulerContext
from repro.schedulers.base import Discipline, OrderPolicy

#: Seconds per day / week under the Monday-00:00 epoch convention.
DAY = 86_400.0
WEEK = 7 * DAY


@dataclass(frozen=True, slots=True)
class TimeWindow:
    """A recurring weekly window: days-of-week x hours-of-day.

    ``days`` are 0 (Monday) .. 6 (Sunday); the window covers
    ``[start_hour, end_hour)`` local hours on each listed day.
    """

    days: frozenset[int]
    start_hour: float
    end_hour: float

    def __post_init__(self) -> None:
        if not self.days <= set(range(7)):
            raise ValueError(f"days must be within 0..6, got {sorted(self.days)}")
        if not 0.0 <= self.start_hour < self.end_hour <= 24.0:
            raise ValueError(
                f"need 0 <= start < end <= 24, got [{self.start_hour}, {self.end_hour})"
            )

    def contains(self, time: float) -> bool:
        """True iff simulated ``time`` falls inside the window."""
        day = int(time % WEEK // DAY)
        hour = time % DAY / 3600.0
        return day in self.days and self.start_hour <= hour < self.end_hour

    def next_boundary(self, time: float) -> float:
        """The next instant at which membership can change (window edge)."""
        hour = time % DAY / 3600.0
        day_start = time - (time % DAY)
        candidates = []
        for edge in (self.start_hour, self.end_hour):
            if hour < edge:
                candidates.append(day_start + edge * 3600.0)
        candidates.append(day_start + DAY)  # midnight
        return min(candidates)

    def next_start(self, time: float) -> float:
        """Earliest ``t >= time`` at which the window is (or becomes) active.

        Returns ``time`` itself when already inside.  Always finite for a
        non-empty day set (the week wraps within 8 days).
        """
        if self.contains(time):
            return time
        for offset_days in range(8):
            day_start = time - (time % DAY) + offset_days * DAY
            day = int(day_start % WEEK // DAY)
            if day not in self.days:
                continue
            candidate = day_start + self.start_hour * 3600.0
            if candidate >= time:
                return candidate
            if day_start + self.end_hour * 3600.0 > time:
                return time if self.contains(time) else max(candidate, time)
        raise AssertionError("window start not found within a week")  # pragma: no cover

    def current_end(self, time: float) -> float:
        """End of the active occurrence containing ``time`` (inside only)."""
        if not self.contains(time):
            raise ValueError(f"time {time} is outside the window")
        day_start = time - (time % DAY)
        return day_start + self.end_hour * 3600.0


#: Example 5 Rule 5: "Between 7am and 8pm on weekdays ..."
WEEKDAY_DAYTIME = TimeWindow(days=frozenset(range(5)), start_hour=7.0, end_hour=20.0)


class RegimeSwitchingScheduler(Scheduler):
    """Delegate scheduling decisions by time window.

    ``window_pair`` serves decision points inside ``window``; ``other_pair``
    serves the rest.  Both order policies mirror the full wait queue.
    """

    def __init__(
        self,
        window: TimeWindow,
        window_pair: tuple[OrderPolicy, Discipline],
        other_pair: tuple[OrderPolicy, Discipline],
        name: str = "regime-switching",
    ) -> None:
        self.window = window
        self._window_policy, self._window_discipline = window_pair
        self._other_policy, self._other_discipline = other_pair
        self.name = name
        self.uses_estimates = (
            self._window_policy.uses_estimates
            or self._other_policy.uses_estimates
            or self._window_discipline.uses_estimates
            or self._other_discipline.uses_estimates
        )
        #: (time, regime) switch log for analysis; regime is "window"/"other".
        self.switch_log: list[tuple[float, str]] = []
        self._last_regime: str | None = None

    def reset(self) -> None:
        self._window_policy.reset()
        self._other_policy.reset()
        self.switch_log.clear()
        self._last_regime = None

    def _active(self, now: float) -> tuple[OrderPolicy, Discipline]:
        inside = self.window.contains(now)
        regime = "window" if inside else "other"
        if regime != self._last_regime:
            self.switch_log.append((now, regime))
            self._last_regime = regime
        if inside:
            return self._window_policy, self._window_discipline
        return self._other_policy, self._other_discipline

    def on_submit(self, job: Job, ctx: SchedulerContext) -> None:
        self._window_policy.enqueue(job, ctx.now)
        self._other_policy.enqueue(job, ctx.now)

    def on_cancel(self, job: Job, ctx: SchedulerContext) -> None:
        self._window_policy.remove(job)
        self._other_policy.remove(job)

    def select_jobs(self, ctx: SchedulerContext) -> list[Job]:
        policy, discipline = self._active(ctx.now)
        queue = policy.ordered(ctx.now)
        if not queue:
            return []
        started = discipline.select(queue, ctx)
        for job in started:
            self._window_policy.remove(job)
            self._other_policy.remove(job)
        return started

    @property
    def pending_count(self) -> int:
        return len(self._window_policy)


def example5_combined_scheduler(total_nodes: int) -> RegimeSwitchingScheduler:
    """The combination the paper's administrator arrives at in Section 7.

    Daytime (Rule 5, minimise ART): SMART-FFIA with EASY backfilling —
    "either SMART or PSRS together with some form of backfilling".
    Nights and weekends (Rule 6, minimise AWRT): the classical Garey &
    Graham list scheduler — "the classical list scheduling algorithm for
    the weighted case".
    """
    from repro.schedulers.base import SubmitOrderPolicy
    from repro.schedulers.disciplines import AnyFitDiscipline, EasyBackfill
    from repro.schedulers.smart import SmartOrderPolicy, SmartVariant
    from repro.schedulers.weights import unit_weight

    return RegimeSwitchingScheduler(
        window=WEEKDAY_DAYTIME,
        window_pair=(
            SmartOrderPolicy(total_nodes, variant=SmartVariant.FFIA, weight=unit_weight),
            EasyBackfill(),
        ),
        other_pair=(SubmitOrderPolicy(), AnyFitDiscipline()),
        name="Example5-combined (day: SMART-FFIA+EASY, night: G&G)",
    )

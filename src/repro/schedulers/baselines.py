"""Classical baseline order policies beyond the paper's grid.

Section 5: "In this first step it is frequently beneficial to consider a
wide range of algorithms."  The paper's administrator stopped at seven;
this module supplies the other standbys of the JSSPP literature so users
of the library can widen the comparison the way the paper recommends:

* SJF / LJF — shortest / longest estimated runtime first;
* SAF / LAF — smallest / largest estimated area first;
* NF / WF — narrowest / widest first;
* RANDOM — a seeded random order, the classic sanity baseline.

Each is a :class:`KeyOrderPolicy` usable with every servicing discipline,
so e.g. SJF + EASY backfilling is one line.  All keys read only
scheduler-visible data (estimates, widths).
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from repro.core.job import Job
from repro.core.scheduler import Scheduler
from repro.schedulers.base import Discipline, OrderedQueueScheduler, OrderPolicy
from repro.schedulers.disciplines import (
    ConservativeBackfill,
    EasyBackfill,
    HeadBlockingDiscipline,
)

#: Sort key over scheduler-visible job data; smallest first.
OrderKey = Callable[[Job], float]


class KeyOrderPolicy(OrderPolicy):
    """Order the wait queue by a job key, smallest key first.

    The sort is performed lazily on read and is stable with a job-id tie
    break, so runs are deterministic.
    """

    uses_estimates = True

    def __init__(self, key: OrderKey, name: str) -> None:
        self._key = key
        self.name = name
        self._queue: list[Job] = []

    def reset(self) -> None:
        self._queue.clear()

    def enqueue(self, job: Job, now: float) -> None:
        self._queue.append(job)

    def remove(self, job: Job) -> None:
        self._queue.remove(job)

    def ordered(self, now: float) -> Sequence[Job]:
        self._queue.sort(key=lambda j: (self._key(j), j.job_id))
        return self._queue

    def __len__(self) -> int:
        return len(self._queue)


class RandomOrderPolicy(OrderPolicy):
    """Seeded random queue order, reshuffled at every decision point.

    Deliberately memoryless — the baseline that any intentional policy
    should beat.
    """

    uses_estimates = False

    def __init__(self, seed: int = 0) -> None:
        self.name = "RANDOM"
        self._rng = random.Random(seed)
        self._seed = seed
        self._queue: list[Job] = []

    def reset(self) -> None:
        self._queue.clear()
        self._rng = random.Random(self._seed)

    def enqueue(self, job: Job, now: float) -> None:
        self._queue.append(job)

    def remove(self, job: Job) -> None:
        self._queue.remove(job)

    def ordered(self, now: float) -> Sequence[Job]:
        self._rng.shuffle(self._queue)
        return self._queue

    def __len__(self) -> int:
        return len(self._queue)


#: name -> key factory for the deterministic baselines.
BASELINE_KEYS: dict[str, OrderKey] = {
    "sjf": lambda j: j.estimated_runtime,
    "ljf": lambda j: -j.estimated_runtime,
    "saf": lambda j: j.estimated_area,
    "laf": lambda j: -j.estimated_area,
    "nf": lambda j: j.nodes,
    "wf": lambda j: -j.nodes,
}

_DISCIPLINES: dict[str, Callable[[], Discipline]] = {
    "list": HeadBlockingDiscipline,
    "conservative": ConservativeBackfill,
    "easy": EasyBackfill,
}


def baseline_scheduler(
    order: str, discipline: str = "list", *, seed: int = 0
) -> Scheduler:
    """Build a baseline scheduler, e.g. ``baseline_scheduler("sjf", "easy")``.

    ``order`` is one of :data:`BASELINE_KEYS` or ``"random"``;
    ``discipline`` one of ``list`` / ``conservative`` / ``easy``.
    """
    if discipline not in _DISCIPLINES:
        raise ValueError(
            f"unknown discipline {discipline!r}; pick one of {sorted(_DISCIPLINES)}"
        )
    policy: OrderPolicy
    if order == "random":
        policy = RandomOrderPolicy(seed=seed)
    elif order in BASELINE_KEYS:
        policy = KeyOrderPolicy(BASELINE_KEYS[order], name=order.upper())
    else:
        raise ValueError(
            f"unknown order {order!r}; pick one of "
            f"{sorted(BASELINE_KEYS) + ['random']}"
        )
    disc = _DISCIPLINES[discipline]()
    return OrderedQueueScheduler(policy, disc, name=f"{policy.name}+{disc.name}")


def all_baselines(discipline: str = "easy", *, seed: int = 0) -> list[Scheduler]:
    """All baseline schedulers under one discipline."""
    names = sorted(BASELINE_KEYS) + ["random"]
    return [baseline_scheduler(n, discipline, seed=seed) for n in names]

"""Result persistence: schedules as CSV, grids as JSON, events as JSONL.

Simulation campaigns outlive Python sessions; this module round-trips
finished artifacts so results can be archived, diffed between library
versions, or loaded into any analysis stack:

* **schedules** — plain CSV, one row per job with submission, width,
  runtime, estimate, start, end and cancellation flag; self-describing
  via its header row and validated on read;
* **grid results** — :func:`write_grid` / :func:`read_grid` serialize a
  whole :class:`~repro.experiments.runner.GridResult` (and the per-cell
  :func:`cell_to_dict` / :func:`cell_from_dict` pair backs the
  experiment engine's content-addressed cache);
* **engine events** — :func:`append_events` archives the engine's
  structured progress stream as JSON lines for later timing analysis.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, TextIO

from repro.core.job import Job
from repro.core.schedule import Schedule, ScheduledJob

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (analysis <- experiments)
    from repro.experiments.engine import ProgressEvent
    from repro.experiments.runner import CellResult, GridResult

#: CSV columns, in order.
COLUMNS = (
    "job_id",
    "submit_time",
    "nodes",
    "runtime",
    "estimate",
    "user",
    "weight",
    "start_time",
    "end_time",
    "cancelled",
)


class ScheduleFormatError(ValueError):
    """Raised when a schedule file is malformed."""


def write_schedule(schedule: Schedule, target: str | Path | TextIO) -> None:
    """Write a schedule as CSV (overwrites)."""
    own = isinstance(target, (str, Path))
    handle: TextIO = open(target, "w", newline="", encoding="utf-8") if own else target  # type: ignore[assignment,arg-type]
    try:
        writer = csv.writer(handle)
        writer.writerow(COLUMNS)
        for item in schedule:
            job = item.job
            writer.writerow(
                [
                    job.job_id,
                    repr(job.submit_time),
                    job.nodes,
                    repr(job.runtime),
                    repr(job.estimate) if job.estimate is not None else "",
                    job.user,
                    repr(job.weight) if job.weight is not None else "",
                    repr(item.start_time),
                    repr(item.end_time),
                    int(item.cancelled),
                ]
            )
    finally:
        if own:
            handle.close()


def read_schedule(source: str | Path | TextIO) -> Schedule:
    """Read a schedule written by :func:`write_schedule`."""
    own = isinstance(source, (str, Path))
    handle: TextIO = open(source, "r", newline="", encoding="utf-8") if own else source  # type: ignore[assignment,arg-type]
    try:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration as exc:
            raise ScheduleFormatError("empty schedule file") from exc
        if tuple(header) != COLUMNS:
            raise ScheduleFormatError(
                f"unexpected header {header!r}; expected {list(COLUMNS)}"
            )
        items = []
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(COLUMNS):
                raise ScheduleFormatError(
                    f"line {lineno}: expected {len(COLUMNS)} fields, got {len(row)}"
                )
            try:
                job = Job(
                    job_id=int(row[0]),
                    submit_time=float(row[1]),
                    nodes=int(row[2]),
                    runtime=float(row[3]),
                    estimate=float(row[4]) if row[4] else None,
                    user=int(row[5]),
                    weight=float(row[6]) if row[6] else None,
                )
                items.append(
                    ScheduledJob(
                        job=job,
                        start_time=float(row[7]),
                        end_time=float(row[8]),
                        cancelled=bool(int(row[9])),
                    )
                )
            except ValueError as exc:
                raise ScheduleFormatError(f"line {lineno}: {exc}") from exc
        return Schedule(items)
    finally:
        if own:
            handle.close()


# -- grid results (JSON) -------------------------------------------------------
#
# The experiment imports live inside the functions: ``repro.experiments``
# imports this package at module load, so importing it back at the top
# level would be circular.


def cell_to_dict(cell: "CellResult") -> dict:
    """JSON-safe payload for one grid cell (engine cache format)."""
    return {
        "row": cell.config.row,
        "column": cell.config.column,
        "objective": cell.objective,
        "compute_time": cell.compute_time,
        "max_queue_length": cell.max_queue_length,
        "makespan": cell.makespan,
        "decision_time": cell.decision_time,
        "interrupted_jobs": cell.interrupted_jobs,
        "wasted_node_seconds": cell.wasted_node_seconds,
        "lost_node_seconds": cell.lost_node_seconds,
        "requeue_delay": cell.requeue_delay,
    }


def cell_from_dict(payload: dict) -> "CellResult":
    """Inverse of :func:`cell_to_dict`.

    The resilience fields default to zero so grids written before failure
    injection existed still load.
    """
    from repro.experiments.runner import CellResult
    from repro.schedulers.registry import SchedulerConfig

    return CellResult(
        config=SchedulerConfig(row=payload["row"], column=payload["column"]),
        objective=float(payload["objective"]),
        compute_time=float(payload["compute_time"]),
        max_queue_length=int(payload["max_queue_length"]),
        makespan=float(payload["makespan"]),
        decision_time=float(payload.get("decision_time", 0.0)),
        interrupted_jobs=int(payload.get("interrupted_jobs", 0)),
        wasted_node_seconds=float(payload.get("wasted_node_seconds", 0.0)),
        lost_node_seconds=float(payload.get("lost_node_seconds", 0.0)),
        requeue_delay=float(payload.get("requeue_delay", 0.0)),
    )


def grid_to_dict(grid: "GridResult") -> dict:
    """JSON-safe payload for a whole grid, cell order preserved."""
    return {
        "workload_name": grid.workload_name,
        "weighted": grid.weighted,
        "total_nodes": grid.total_nodes,
        "n_jobs": grid.n_jobs,
        "reference_key": grid.reference_key,
        "cells": [cell_to_dict(cell) for cell in grid.cells.values()],
        "fingerprints": dict(grid.fingerprints),
    }


def grid_from_dict(payload: dict) -> "GridResult":
    """Inverse of :func:`grid_to_dict`."""
    from repro.experiments.runner import GridResult

    grid = GridResult(
        workload_name=payload["workload_name"],
        weighted=bool(payload["weighted"]),
        total_nodes=int(payload["total_nodes"]),
        n_jobs=int(payload["n_jobs"]),
        reference_key=payload.get("reference_key"),
    )
    for raw in payload["cells"]:
        cell = cell_from_dict(raw)
        grid.cells[cell.config.key] = cell
    # Grids written before the run-lifecycle layer have no fingerprints.
    fingerprints = payload.get("fingerprints")
    if fingerprints:
        grid.fingerprints.update(
            {str(key): str(value) for key, value in fingerprints.items()}
        )
    return grid


def write_grid(grid: "GridResult", target: str | Path) -> None:
    """Write one grid result as a JSON document (overwrites)."""
    Path(target).write_text(
        json.dumps(grid_to_dict(grid), indent=2) + "\n", encoding="utf-8"
    )


def read_grid(source: str | Path) -> "GridResult":
    """Read a grid written by :func:`write_grid`."""
    try:
        payload = json.loads(Path(source).read_text(encoding="utf-8"))
        return grid_from_dict(payload)
    except (ValueError, KeyError, TypeError) as exc:
        raise ScheduleFormatError(f"malformed grid file {source}: {exc}") from exc


# -- engine progress events (JSON lines) ---------------------------------------


def append_events(events: "Iterable[ProgressEvent]", target: str | Path) -> int:
    """Append engine progress events to a JSONL file; returns the count.

    Append semantics match the engine's resumability: successive (partial)
    runs accumulate into one log.
    """
    count = 0
    with open(target, "a", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(dataclasses.asdict(event)) + "\n")
            count += 1
    return count

"""Schedule persistence: CSV export/import for external analysis.

Simulation campaigns outlive Python sessions; this module round-trips
finished schedules through a plain CSV (one row per job with submission,
width, runtime, estimate, start, end, cancellation flag) so results can be
archived, diffed between library versions, or loaded into any analysis
stack.  The format is self-describing via its header row and validated on
read.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import TextIO

from repro.core.job import Job
from repro.core.schedule import Schedule, ScheduledJob

#: CSV columns, in order.
COLUMNS = (
    "job_id",
    "submit_time",
    "nodes",
    "runtime",
    "estimate",
    "user",
    "weight",
    "start_time",
    "end_time",
    "cancelled",
)


class ScheduleFormatError(ValueError):
    """Raised when a schedule file is malformed."""


def write_schedule(schedule: Schedule, target: str | Path | TextIO) -> None:
    """Write a schedule as CSV (overwrites)."""
    own = isinstance(target, (str, Path))
    handle: TextIO = open(target, "w", newline="", encoding="utf-8") if own else target  # type: ignore[assignment,arg-type]
    try:
        writer = csv.writer(handle)
        writer.writerow(COLUMNS)
        for item in schedule:
            job = item.job
            writer.writerow(
                [
                    job.job_id,
                    repr(job.submit_time),
                    job.nodes,
                    repr(job.runtime),
                    repr(job.estimate) if job.estimate is not None else "",
                    job.user,
                    repr(job.weight) if job.weight is not None else "",
                    repr(item.start_time),
                    repr(item.end_time),
                    int(item.cancelled),
                ]
            )
    finally:
        if own:
            handle.close()


def read_schedule(source: str | Path | TextIO) -> Schedule:
    """Read a schedule written by :func:`write_schedule`."""
    own = isinstance(source, (str, Path))
    handle: TextIO = open(source, "r", newline="", encoding="utf-8") if own else source  # type: ignore[assignment,arg-type]
    try:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration as exc:
            raise ScheduleFormatError("empty schedule file") from exc
        if tuple(header) != COLUMNS:
            raise ScheduleFormatError(
                f"unexpected header {header!r}; expected {list(COLUMNS)}"
            )
        items = []
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(COLUMNS):
                raise ScheduleFormatError(
                    f"line {lineno}: expected {len(COLUMNS)} fields, got {len(row)}"
                )
            try:
                job = Job(
                    job_id=int(row[0]),
                    submit_time=float(row[1]),
                    nodes=int(row[2]),
                    runtime=float(row[3]),
                    estimate=float(row[4]) if row[4] else None,
                    user=int(row[5]),
                    weight=float(row[6]) if row[6] else None,
                )
                items.append(
                    ScheduledJob(
                        job=job,
                        start_time=float(row[7]),
                        end_time=float(row[8]),
                        cancelled=bool(int(row[9])),
                    )
                )
            except ValueError as exc:
                raise ScheduleFormatError(f"line {lineno}: {exc}") from exc
        return Schedule(items)
    finally:
        if own:
            handle.close()

"""Wait-time heatmap over (width, runtime) bins.

Who waits — wide jobs, long jobs, or both?  The answer characterises a
scheduler better than any scalar: FCFS punishes everyone equally, SJF-like
orders punish long jobs, any-fit punishes wide ones.  This module bins a
schedule by job width and (estimated) runtime and renders mean waits as an
ASCII heatmap, the terminal cousin of the heatmaps in the JSSPP
literature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.schedule import Schedule

#: Default geometric bin edges.
WIDTH_EDGES = (1, 2, 4, 8, 16, 32, 64, 128, 256)
RUNTIME_EDGES = (60.0, 600.0, 3600.0, 14400.0, 43200.0, 86400.0)

#: Shading ramp from idle to severe.
_RAMP = " .:-=+*#%@"


@dataclass(frozen=True, slots=True)
class WaitHeatmap:
    """Mean wait per (width bin, runtime bin); None for empty cells."""

    width_edges: tuple[int, ...]
    runtime_edges: tuple[float, ...]
    cells: tuple[tuple[float | None, ...], ...]   # [width_bin][runtime_bin]
    counts: tuple[tuple[int, ...], ...]

    @property
    def max_wait(self) -> float:
        values = [v for row in self.cells for v in row if v is not None]
        return max(values, default=0.0)

    def render(self) -> str:
        """ASCII heatmap, darker = longer mean wait."""
        peak = self.max_wait or 1.0
        runtime_labels = [_fmt_duration(e) for e in self.runtime_edges] + [
            f">{_fmt_duration(self.runtime_edges[-1])}"
        ]
        lines = ["mean wait by width x runtime (darker = longer wait)"]
        lines.append("width\\rt " + "".join(f"{label:>8}" for label in runtime_labels))
        for wi, row in enumerate(self.cells):
            label = (
                f"<={self.width_edges[wi]}"
                if wi < len(self.width_edges)
                else f">{self.width_edges[-1]}"
            )
            chars = []
            for value in row:
                if value is None:
                    chars.append(f"{'·':>8}")
                else:
                    shade = _RAMP[min(len(_RAMP) - 1, int(value / peak * (len(_RAMP) - 1)))]
                    chars.append(f"{shade * 3:>8}")
            lines.append(f"{label:<9}" + "".join(chars))
        lines.append(f"(peak mean wait: {self.max_wait:.0f} s)")
        return "\n".join(lines)


def _fmt_duration(seconds: float) -> str:
    if seconds < 3600:
        return f"{seconds / 60:.0f}m"
    if seconds < 86400:
        return f"{seconds / 3600:.0f}h"
    return f"{seconds / 86400:.0f}d"


def _bin(value: float, edges: Sequence[float]) -> int:
    for i, edge in enumerate(edges):
        if value <= edge:
            return i
    return len(edges)


def wait_heatmap(
    schedule: Schedule,
    *,
    width_edges: Sequence[int] = WIDTH_EDGES,
    runtime_edges: Sequence[float] = RUNTIME_EDGES,
) -> WaitHeatmap:
    """Aggregate a schedule into the wait heatmap."""
    n_w = len(width_edges) + 1
    n_r = len(runtime_edges) + 1
    sums = [[0.0] * n_r for _ in range(n_w)]
    counts = [[0] * n_r for _ in range(n_w)]
    for item in schedule:
        wi = _bin(item.job.nodes, width_edges)
        ri = _bin(item.job.estimated_runtime, runtime_edges)
        sums[wi][ri] += item.wait_time
        counts[wi][ri] += 1
    cells = tuple(
        tuple(
            (sums[wi][ri] / counts[wi][ri]) if counts[wi][ri] else None
            for ri in range(n_r)
        )
        for wi in range(n_w)
    )
    return WaitHeatmap(
        width_edges=tuple(width_edges),
        runtime_edges=tuple(runtime_edges),
        cells=cells,
        counts=tuple(tuple(row) for row in counts),
    )

"""Schedule analysis aids: textual Gantt rendering and summaries.

Not part of the paper's evaluation; used by the examples and by humans
inspecting simulator output.
"""

from repro.analysis.gantt import render_gantt, render_job_gantt
from repro.analysis.summary import (
    ResilienceSummary,
    ScheduleSummary,
    summarize,
    summarize_resilience,
)
from repro.analysis.fairness import (
    IndependenceReport,
    fairness_spread,
    later_submission_independence,
    slowdown_by_user,
    slowdown_by_width,
)
from repro.analysis.report import (
    ComparisonRow,
    compare_schedulers,
    format_comparison_rows,
    site_report,
)
from repro.analysis.timeseries import (
    backlog_series,
    queue_length_series,
    sample_series,
    saturation_point,
    utilisation_series,
)
from repro.analysis.heatmap import WaitHeatmap, wait_heatmap
from repro.analysis.persistence import read_schedule, write_schedule

__all__ = [
    "ComparisonRow",
    "IndependenceReport",
    "ResilienceSummary",
    "ScheduleSummary",
    "backlog_series",
    "compare_schedulers",
    "fairness_spread",
    "format_comparison_rows",
    "later_submission_independence",
    "queue_length_series",
    "render_gantt",
    "render_job_gantt",
    "sample_series",
    "read_schedule",
    "saturation_point",
    "site_report",
    "slowdown_by_user",
    "slowdown_by_width",
    "summarize",
    "summarize_resilience",
    "utilisation_series",
    "WaitHeatmap",
    "wait_heatmap",
    "write_schedule",
]

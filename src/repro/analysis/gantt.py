"""Render schedules as ASCII charts.

* :func:`render_gantt` — one row per time bucket, bar length proportional
  to busy nodes: a quick way to *see* the difference between FCFS's ragged
  utilisation and a backfilled schedule without leaving the terminal.
* :func:`render_job_gantt` — one row per job (classic Gantt), usable for
  schedules of up to a few dozen jobs; wait time and execution rendered
  distinctly, so backfilling decisions are visible at a glance.
"""

from __future__ import annotations

from repro.core.schedule import Schedule


def render_gantt(
    schedule: Schedule,
    total_nodes: int,
    *,
    buckets: int = 40,
    width: int = 60,
) -> str:
    """Bucketised busy-node chart over the schedule's whole span."""
    if len(schedule) == 0:
        return "(empty schedule)"
    t0 = min(item.start_time for item in schedule)
    t1 = schedule.makespan
    if t1 <= t0:
        return "(zero-length schedule)"
    dt = (t1 - t0) / buckets
    busy = [0.0] * buckets
    for item in schedule:
        if item.end_time <= item.start_time:
            continue
        first = int((item.start_time - t0) / dt)
        last = int((item.end_time - t0) / dt)
        for b in range(max(first, 0), min(last + 1, buckets)):
            lo = t0 + b * dt
            hi = lo + dt
            overlap = min(item.end_time, hi) - max(item.start_time, lo)
            if overlap > 0:
                busy[b] += overlap * item.job.nodes
    lines = []
    for b in range(buckets):
        frac = busy[b] / (dt * total_nodes)
        bar = "#" * round(frac * width)
        stamp = t0 + b * dt
        lines.append(f"{stamp:>12.0f}s |{bar:<{width}}| {frac * 100:5.1f}%")
    return "\n".join(lines)


def render_job_gantt(
    schedule: Schedule,
    *,
    width: int = 64,
    max_jobs: int = 40,
) -> str:
    """Classic per-job Gantt: ``.`` while waiting, ``#`` while running.

    Rows are ordered by submission; schedules larger than ``max_jobs`` are
    truncated (this is a reading aid, not a plotting library).
    """
    if len(schedule) == 0:
        return "(empty schedule)"
    items = sorted(schedule, key=lambda i: (i.job.submit_time, i.job.job_id))
    truncated = len(items) > max_jobs
    items = items[:max_jobs]
    t0 = min(i.job.submit_time for i in items)
    t1 = max(i.end_time for i in items)
    span = max(t1 - t0, 1e-9)

    def col(time: float) -> int:
        return min(width, max(0, round((time - t0) / span * width)))

    lines = [f"{'job':>6} {'nodes':>5}  timeline ({t0:.0f}s .. {t1:.0f}s)"]
    for item in items:
        submit, start, end = col(item.job.submit_time), col(item.start_time), col(item.end_time)
        run_len = max(end - start, 1) if item.end_time > item.start_time else 0
        row = (
            " " * submit
            + "." * max(start - submit, 0)
            + "#" * run_len
        )
        lines.append(f"{item.job.job_id:>6} {item.job.nodes:>5}  |{row:<{width}}|")
    if truncated:
        lines.append(f"  ... ({len(schedule) - max_jobs} more jobs not shown)")
    return "\n".join(lines)

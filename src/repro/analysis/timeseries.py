"""Time-series analysis of simulator runs.

The simulator's optional trace (``collect_trace=True``) records queue
length and free nodes at every decision point; this module turns those
point samples and the finished schedule into the series a capacity planner
reads:

* :func:`utilisation_series` — busy-node fraction over uniform buckets;
* :func:`backlog_series` — queued work (node-seconds, by estimates) over
  time, reconstructed exactly from the schedule (submission adds a job's
  estimated area, start removes it);
* :func:`queue_length_series` — waiting-job counts reconstructed the same
  way, available even without a collected trace;
* :func:`saturation_point` — the first time the backlog exceeds a
  threshold and never returns below it: where an overloaded system (the
  paper's 430-nodes-of-demand on 256 nodes) visibly diverges.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Sequence

from repro.core.schedule import Schedule


def _bucket_edges(t0: float, t1: float, buckets: int) -> list[float]:
    if buckets < 1:
        raise ValueError("buckets must be at least 1")
    span = max(t1 - t0, 1e-9)
    return [t0 + span * i / buckets for i in range(buckets + 1)]


def utilisation_series(
    schedule: Schedule, total_nodes: int, *, buckets: int = 50
) -> list[tuple[float, float]]:
    """``(bucket_start, mean busy fraction)`` over the schedule's span."""
    if len(schedule) == 0:
        return []
    t0 = min(item.job.submit_time for item in schedule)
    t1 = schedule.makespan
    edges = _bucket_edges(t0, t1, buckets)
    busy = [0.0] * buckets
    for item in schedule:
        if item.end_time <= item.start_time:
            continue
        for b in range(buckets):
            lo, hi = edges[b], edges[b + 1]
            overlap = min(item.end_time, hi) - max(item.start_time, lo)
            if overlap > 0:
                busy[b] += overlap * item.job.nodes
    return [
        (edges[b], busy[b] / ((edges[b + 1] - edges[b]) * total_nodes))
        for b in range(buckets)
    ]


def _event_series(schedule: Schedule, value_fn) -> list[tuple[float, float]]:
    """Step series built from per-job (submit +v, start -v) deltas."""
    deltas: dict[float, float] = {}
    for item in schedule:
        v = value_fn(item)
        deltas[item.job.submit_time] = deltas.get(item.job.submit_time, 0.0) + v
        deltas[item.start_time] = deltas.get(item.start_time, 0.0) - v
    level = 0.0
    series = []
    for time in sorted(deltas):
        level += deltas[time]
        series.append((time, max(level, 0.0)))
    return series


def backlog_series(schedule: Schedule) -> list[tuple[float, float]]:
    """Queued work (estimated node-seconds) after each queue event."""
    return _event_series(schedule, lambda item: item.job.estimated_area)


def queue_length_series(schedule: Schedule) -> list[tuple[float, float]]:
    """Number of waiting jobs after each submission/start event."""
    return _event_series(schedule, lambda item: 1.0)


def saturation_point(
    series: Sequence[tuple[float, float]], threshold: float
) -> float | None:
    """First time the series exceeds ``threshold`` for good (never drops
    back at any later sample); ``None`` if it always recovers."""
    last_below = None
    first_above = None
    for time, value in series:
        if value > threshold:
            if first_above is None:
                first_above = time
        else:
            last_below = time
            first_above = None
    return first_above


def sample_series(
    series: Sequence[tuple[float, float]], time: float
) -> float:
    """Value of a step series at an arbitrary time (0 before the first)."""
    if not series:
        return 0.0
    times = [t for t, _v in series]
    idx = bisect_right(times, time) - 1
    return series[idx][1] if idx >= 0 else 0.0

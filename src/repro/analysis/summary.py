"""Aggregate schedule summaries for reports and examples."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.schedule import Schedule
from repro.metrics.objectives import (
    average_response_time,
    average_wait_time,
    average_weighted_response_time,
    utilisation,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.simulator import SimulationResult


@dataclass(frozen=True, slots=True)
class ScheduleSummary:
    """The numbers a site administrator looks at first."""

    n_jobs: int
    makespan: float
    art: float
    awrt: float
    mean_wait: float
    median_wait: float
    p95_wait: float
    utilisation: float

    def describe(self) -> str:
        return "\n".join(
            [
                f"jobs            {self.n_jobs}",
                f"makespan        {self.makespan:.0f} s ({self.makespan / 86400:.1f} days)",
                f"ART             {self.art:.0f} s",
                f"AWRT            {self.awrt:.3E}",
                f"wait mean/med   {self.mean_wait:.0f} / {self.median_wait:.0f} s",
                f"wait p95        {self.p95_wait:.0f} s",
                f"utilisation     {self.utilisation * 100:.1f} %",
            ]
        )


def summarize(schedule: Schedule, total_nodes: int) -> ScheduleSummary:
    waits = np.array([item.wait_time for item in schedule]) if len(schedule) else np.zeros(1)
    return ScheduleSummary(
        n_jobs=len(schedule),
        makespan=schedule.makespan,
        art=average_response_time(schedule),
        awrt=average_weighted_response_time(schedule),
        mean_wait=float(waits.mean()),
        median_wait=float(np.median(waits)),
        p95_wait=float(np.percentile(waits, 95)),
        utilisation=utilisation(schedule, total_nodes),
    )


@dataclass(frozen=True, slots=True)
class ResilienceSummary:
    """What node failures cost one run (see docs/architecture.md).

    All node-second figures are absolute; ``wasted_fraction`` relates the
    destroyed execution to everything the schedule's completed jobs
    consumed, which is the figure a site reports as "capacity lost to
    failures beyond the hardware outage itself".
    """

    #: Distinct jobs that lost at least one attempt to a node failure.
    interrupted_jobs: int
    #: Failure kills (a job recovered twice counts twice).
    failure_kills: int
    #: Jobs abandoned outright (killed, never recovered).
    abandoned_jobs: int
    #: Capacity removed by the failure trace itself (down-nodes × seconds).
    lost_node_seconds: float
    #: Execution destroyed by kills: work no checkpoint preserved.
    wasted_node_seconds: float
    #: Total kill-to-restart waiting across recovered jobs.
    requeue_delay: float
    #: ``wasted / (useful + wasted)`` — 0.0 when nothing ran.
    wasted_fraction: float

    def describe(self) -> str:
        return "\n".join(
            [
                f"interrupted     {self.interrupted_jobs} jobs "
                f"({self.failure_kills} kills, {self.abandoned_jobs} abandoned)",
                f"lost capacity   {self.lost_node_seconds:.0f} node-s",
                f"wasted work     {self.wasted_node_seconds:.0f} node-s "
                f"({self.wasted_fraction * 100:.2f} % of execution)",
                f"requeue delay   {self.requeue_delay:.0f} s total",
            ]
        )


def summarize_resilience(result: "SimulationResult") -> ResilienceSummary:
    """Condense a run's resilience accounting into one record."""
    useful = sum(
        (item.end_time - item.start_time) * item.job.nodes
        for item in result.schedule
        if not item.cancelled
    )
    wasted = result.wasted_node_seconds
    consumed = useful + wasted
    return ResilienceSummary(
        interrupted_jobs=result.interrupted_jobs,
        failure_kills=len(result.failure_killed),
        abandoned_jobs=len(result.failure_killed) - len(result.interrupted),
        lost_node_seconds=result.lost_node_seconds,
        wasted_node_seconds=wasted,
        requeue_delay=result.requeue_delay,
        wasted_fraction=wasted / consumed if consumed > 0 else 0.0,
    )

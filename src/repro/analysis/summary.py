"""Aggregate schedule summaries for reports and examples."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.schedule import Schedule
from repro.metrics.objectives import (
    average_response_time,
    average_wait_time,
    average_weighted_response_time,
    utilisation,
)


@dataclass(frozen=True, slots=True)
class ScheduleSummary:
    """The numbers a site administrator looks at first."""

    n_jobs: int
    makespan: float
    art: float
    awrt: float
    mean_wait: float
    median_wait: float
    p95_wait: float
    utilisation: float

    def describe(self) -> str:
        return "\n".join(
            [
                f"jobs            {self.n_jobs}",
                f"makespan        {self.makespan:.0f} s ({self.makespan / 86400:.1f} days)",
                f"ART             {self.art:.0f} s",
                f"AWRT            {self.awrt:.3E}",
                f"wait mean/med   {self.mean_wait:.0f} / {self.median_wait:.0f} s",
                f"wait p95        {self.p95_wait:.0f} s",
                f"utilisation     {self.utilisation * 100:.1f} %",
            ]
        )


def summarize(schedule: Schedule, total_nodes: int) -> ScheduleSummary:
    waits = np.array([item.wait_time for item in schedule]) if len(schedule) else np.zeros(1)
    return ScheduleSummary(
        n_jobs=len(schedule),
        makespan=schedule.makespan,
        art=average_response_time(schedule),
        awrt=average_weighted_response_time(schedule),
        mean_wait=float(waits.mean()),
        median_wait=float(np.median(waits)),
        p95_wait=float(np.percentile(waits, 95)),
        utilisation=utilisation(schedule, total_nodes),
    )

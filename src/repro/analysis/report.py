"""One-shot site report: everything an administrator reviews after a run.

Bundles the pieces the rest of :mod:`repro.analysis` and
:mod:`repro.metrics` provide into a single text report — the artifact a
site administrator following the paper's methodology would circulate after
an evaluation run:

* schedule summary (ART, AWRT, waits, utilisation),
* Section 2.3 improvement potential against the theoretical bounds,
* fairness: slowdown by width band and the spread across users,
* the utilisation chart.

Also :func:`compare_schedulers`, the side-by-side table used by the
examples and the algorithm-selection step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.analysis.fairness import fairness_spread, slowdown_by_user, slowdown_by_width
from repro.analysis.gantt import render_gantt
from repro.analysis.summary import summarize
from repro.core.job import Job
from repro.core.scheduler import Scheduler
from repro.core.simulator import SimulationResult, simulate
from repro.metrics.bounds import improvement_potential
from repro.metrics.objectives import (
    average_response_time,
    average_weighted_response_time,
)


def site_report(
    result: SimulationResult,
    jobs: Sequence[Job],
    total_nodes: int,
    *,
    title: str = "site report",
    gantt_buckets: int = 24,
) -> str:
    """Render the full post-run report as text."""
    schedule = result.schedule
    lines = [title, "=" * len(title), ""]
    lines.append(summarize(schedule, total_nodes).describe())

    unw = improvement_potential(schedule, jobs, total_nodes, weighted=False)
    wtd = improvement_potential(schedule, jobs, total_nodes, weighted=True)
    lines += [
        "",
        "improvement potential (Section 2.3 bounds)",
        f"  unweighted: measured {unw.measured:.3E}, bound {unw.lower_bound:.3E}, "
        f"headroom {unw.headroom:.0%}",
        f"  weighted:   measured {wtd.measured:.3E}, bound {wtd.lower_bound:.3E}, "
        f"headroom {wtd.headroom:.0%}",
    ]

    width_table = slowdown_by_width(schedule)
    user_spread = fairness_spread(slowdown_by_user(schedule))
    lines += ["", "fairness (mean bounded slowdown)"]
    for band, value in sorted(width_table.items(), key=lambda kv: kv[0]):
        lines.append(f"  width {band:<6} {value:8.2f}")
    lines.append(f"  spread across users: {user_spread:.2f}x")

    lines += [
        "",
        f"peak wait queue: {result.max_queue_length} jobs over "
        f"{result.decision_points} decision points",
        "",
        "utilisation over time",
        render_gantt(schedule, total_nodes, buckets=gantt_buckets),
    ]
    return "\n".join(lines)


@dataclass(frozen=True, slots=True)
class ComparisonRow:
    """One contender in a side-by-side comparison."""

    name: str
    art: float
    awrt: float
    makespan: float
    max_queue: int


def compare_schedulers(
    jobs: Sequence[Job],
    contenders: Sequence[tuple[str, Callable[[], Scheduler]]],
    total_nodes: int,
) -> list[ComparisonRow]:
    """Run every contender over the same stream; rows sorted by ART.

    ``contenders`` pairs a label with a zero-argument factory so each run
    gets a fresh scheduler (no state leakage).
    """
    rows: list[ComparisonRow] = []
    for name, factory in contenders:
        result = simulate(jobs, factory(), total_nodes)
        result.schedule.validate(total_nodes)
        rows.append(
            ComparisonRow(
                name=name,
                art=average_response_time(result.schedule),
                awrt=average_weighted_response_time(result.schedule),
                makespan=result.schedule.makespan,
                max_queue=result.max_queue_length,
            )
        )
    rows.sort(key=lambda r: r.art)
    return rows


def format_comparison_rows(rows: Sequence[ComparisonRow]) -> str:
    """Text table of :func:`compare_schedulers` output."""
    lines = [f"{'scheduler':<30}{'ART (s)':>12}{'AWRT':>14}{'makespan':>12}{'peakQ':>7}"]
    for row in rows:
        lines.append(
            f"{row.name:<30}{row.art:>12.0f}{row.awrt:>14.3E}"
            f"{row.makespan:>12.0f}{row.max_queue:>7}"
        )
    return "\n".join(lines)

"""Fairness auditing.

Section 5.1 claims FCFS "is fair as the completion time of each job is
independent of any job submitted later."  That is a *testable property* of
any scheduler, not just a slogan — this module makes it executable, plus
the distributional fairness measures a site administrator actually reviews.

* :func:`later_submission_independence` — the paper's FCFS property: rerun
  the simulation with extra later-submitted jobs injected and measure how
  many original completions moved.  FCFS scores 0 violations; backfilling
  schedulers generally do not (a newly arrived short job changes what gets
  backfilled).
* :func:`slowdown_by_width` / :func:`slowdown_by_user` — who waits?
  Bounded slowdown aggregated per job-width band and per user, exposing
  the systematic biases different orders introduce (SJF-like orders starve
  long jobs, G&G starves wide ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.job import Job
from repro.core.schedule import Schedule
from repro.core.simulator import simulate
from repro.core.scheduler import Scheduler


@dataclass(frozen=True, slots=True)
class IndependenceReport:
    """Outcome of the later-submission-independence audit."""

    checked_jobs: int
    moved_jobs: int
    max_shift: float       # largest |completion change| in seconds
    #: ids of original jobs whose completion moved.
    moved_ids: tuple[int, ...]

    @property
    def independent(self) -> bool:
        return self.moved_jobs == 0


def later_submission_independence(
    jobs: Sequence[Job],
    scheduler_factory: Callable[[], Scheduler],
    total_nodes: int,
    *,
    inject_after_fraction: float = 0.5,
    injected: Sequence[Job] | None = None,
    tolerance: float = 1e-6,
) -> IndependenceReport:
    """Audit the paper's FCFS fairness property for any scheduler.

    Simulates the stream twice — once as-is, once with extra jobs injected
    after the ``inject_after_fraction`` quantile of submissions — and
    compares the completions of every job submitted *before* the injection
    point.  ``injected`` defaults to three mid-size jobs at the injection
    instant.

    A fresh scheduler is built per run via ``scheduler_factory`` so state
    cannot leak between the two simulations.
    """
    if not jobs:
        return IndependenceReport(0, 0, 0.0, ())
    ordered = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
    cut_index = min(int(len(ordered) * inject_after_fraction), len(ordered) - 1)
    cut_time = ordered[cut_index].submit_time
    earlier = [j for j in ordered if j.submit_time < cut_time]

    if injected is None:
        base_id = max(j.job_id for j in ordered) + 1
        injected = [
            Job(
                job_id=base_id + i,
                submit_time=cut_time,
                nodes=max(1, total_nodes // 4),
                runtime=600.0 * (i + 1),
                estimate=600.0 * (i + 1),
            )
            for i in range(3)
        ]
    for job in injected:
        if job.submit_time < cut_time:
            raise ValueError(
                f"injected job {job.job_id} submitted before the cut time"
            )

    reference = simulate(ordered, scheduler_factory(), total_nodes)
    perturbed = simulate(list(ordered) + list(injected), scheduler_factory(), total_nodes)

    moved: list[int] = []
    max_shift = 0.0
    for job in earlier:
        before = reference.schedule[job.job_id].end_time
        after = perturbed.schedule[job.job_id].end_time
        shift = abs(after - before)
        if shift > tolerance:
            moved.append(job.job_id)
            max_shift = max(max_shift, shift)
    return IndependenceReport(
        checked_jobs=len(earlier),
        moved_jobs=len(moved),
        max_shift=max_shift,
        moved_ids=tuple(moved),
    )


def _bounded_slowdown(item, threshold: float) -> float:
    denom = max(item.job.runtime, threshold)
    return max(1.0, item.response_time / denom)


def slowdown_by_width(
    schedule: Schedule,
    *,
    bands: Sequence[int] = (1, 4, 16, 64, 256),
    threshold: float = 10.0,
) -> dict[str, float]:
    """Mean bounded slowdown per width band.

    ``bands`` are inclusive upper bounds; jobs wider than the last band
    land in a final overflow band.  Empty bands are omitted.
    """
    sums: dict[str, list[float]] = {}
    for item in schedule:
        for bound in bands:
            if item.job.nodes <= bound:
                label = f"<={bound}"
                break
        else:
            label = f">{bands[-1]}"
        sums.setdefault(label, []).append(_bounded_slowdown(item, threshold))
    return {label: sum(vals) / len(vals) for label, vals in sums.items()}


def slowdown_by_user(
    schedule: Schedule, *, threshold: float = 10.0
) -> dict[int, float]:
    """Mean bounded slowdown per user id."""
    sums: dict[int, list[float]] = {}
    for item in schedule:
        sums.setdefault(item.job.user, []).append(_bounded_slowdown(item, threshold))
    return {user: sum(vals) / len(vals) for user, vals in sums.items()}


def fairness_spread(per_group: dict, *, floor: float = 1.0) -> float:
    """Max/min ratio of a per-group slowdown table (1.0 = perfectly even)."""
    if not per_group:
        return 1.0
    values = [max(v, floor) for v in per_group.values()]
    return max(values) / min(values)

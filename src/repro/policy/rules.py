"""Scheduling policies as collections of rules (Section 2.1).

"The scheduling strategy is a collection of rules to determine the resource
allocation if not enough resources are available to satisfy all requests
immediately."  A good policy, per the paper, (1) contains rules to resolve
conflicts between other rules, and (2) can be implemented.

A :class:`PolicyRule` couples a human-readable statement with an optional
machine-checkable :class:`Criterion` — the paper's requirement that "each
rule of the scheduling policy [be] associated with single criterion
functions … If this is not the case, complex rules must be split."
Conflicts are resolved by rule priority (smaller number wins), which is the
paper's "rules to resolve conflicts" in its simplest implementable form.

The two worked examples of the paper ship as ready-made policies:
:func:`example1_policy` (the chemistry department machine) and
:func:`example5_policy` (Institution B's 256-node batch system whose rules
drive the entire evaluation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.schedule import Schedule


class Direction(enum.Enum):
    """Whether a criterion should be minimised or maximised."""

    MINIMIZE = "min"
    MAXIMIZE = "max"


@dataclass(frozen=True, slots=True)
class Criterion:
    """A single-criterion function attached to a policy rule."""

    name: str
    evaluate: Callable[[Schedule], float]
    direction: Direction = Direction.MINIMIZE

    def better(self, a: float, b: float) -> bool:
        """True iff value ``a`` is strictly better than ``b``."""
        return a < b if self.direction is Direction.MINIMIZE else a > b


@dataclass(frozen=True, slots=True)
class PolicyRule:
    """One rule of a scheduling policy.

    ``priority`` resolves conflicts (lower wins); rules without a criterion
    are *structural* (they constrain the system configuration — partition
    sizes, job limits — rather than rank schedules) and take no part in
    objective-function synthesis, mirroring Section 4's "she ignores
    Rules 1 to 4 because they do not affect the schedule for a specific
    workload".
    """

    name: str
    statement: str
    priority: int = 100
    criterion: Criterion | None = None
    #: Times of day/week the rule applies to; free-form, used for reporting.
    applies_when: str = "always"


@dataclass(slots=True)
class SchedulingPolicy:
    """An ordered collection of policy rules."""

    name: str
    rules: list[PolicyRule] = field(default_factory=list)

    def add(self, rule: PolicyRule) -> "SchedulingPolicy":
        self.rules.append(rule)
        return self

    @property
    def criteria(self) -> list[Criterion]:
        """The criterion functions of all non-structural rules, by priority."""
        ranked = sorted(
            (r for r in self.rules if r.criterion is not None),
            key=lambda r: r.priority,
        )
        return [r.criterion for r in ranked if r.criterion is not None]

    def conflicting_pairs(self) -> list[tuple[PolicyRule, PolicyRule]]:
        """Rule pairs with equal priority and both carrying criteria.

        The paper demands that a good policy resolve conflicts between its
        rules; equal-priority criteria cannot be resolved mechanically, so
        they are flagged for the owner.
        """
        carriers = [r for r in self.rules if r.criterion is not None]
        out: list[tuple[PolicyRule, PolicyRule]] = []
        for i, a in enumerate(carriers):
            for b in carriers[i + 1 :]:
                if a.priority == b.priority and a.applies_when == b.applies_when:
                    out.append((a, b))
        return out

    def evaluate(self, schedule: Schedule) -> dict[str, float]:
        """All criterion values for one schedule, keyed by criterion name."""
        return {c.name: c.evaluate(schedule) for c in self.criteria}


# -- the paper's two example policies ----------------------------------------------


def example1_policy() -> SchedulingPolicy:
    """The chemistry-department policy of Example 1 (structural rules only;
    its criteria need job-category data so they are attached by the caller
    if the workload carries user classes)."""
    policy = SchedulingPolicy(name="Example 1 (chemistry department)")
    policy.add(PolicyRule(
        name="drug-design-priority",
        statement="All jobs from the drug design lab have the highest priority "
        "and must be executed as soon as possible.",
        priority=1,
    ))
    policy.add(PolicyRule(
        name="drug-design-storage",
        statement="100 GB of secondary storage is reserved for data from the "
        "drug design lab.",
        priority=2,
    ))
    policy.add(PolicyRule(
        name="university-access",
        statement="Applications from the whole university are accepted but the "
        "labs of the chemistry department have preferred access.",
        priority=3,
    ))
    policy.add(PolicyRule(
        name="industry-quota",
        statement="Some computation time is sold to cooperation partners from "
        "the chemical industry.",
        priority=4,
    ))
    policy.add(PolicyRule(
        name="lab-course",
        statement="Some computation time is made available to the theoretical "
        "chemistry lab course during their scheduled hours.",
        priority=5,
    ))
    return policy


def example5_policy(total_nodes: int = 256) -> SchedulingPolicy:
    """Institution B's policy (Example 5) with the two derived criteria.

    Rules 1–4 are structural; Rule 5 (daytime) carries the average response
    time criterion and Rule 6 (nights/weekends) the average weighted
    response time — exactly the objective functions the administrator
    derives in Section 4.
    """
    from repro.metrics.objectives import (
        average_response_time,
        average_weighted_response_time,
    )

    policy = SchedulingPolicy(name="Example 5 (Institution B)")
    policy.add(PolicyRule(
        name="batch-partition",
        statement="The batch partition must be as large as possible, leaving a "
        "few nodes for interactive jobs and services.",
        priority=10,
    ))
    policy.add(PolicyRule(
        name="rigid-jobs",
        statement="The user must provide the exact number of nodes for each job "
        "and an upper limit for the execution time.",
        priority=20,
    ))
    policy.add(PolicyRule(
        name="charging",
        statement="The user is charged based on a combination of projected and "
        "actual resource consumption.",
        priority=30,
    ))
    policy.add(PolicyRule(
        name="two-job-limit",
        statement="Every user is allowed at most two batch jobs on the machine "
        "at any time.",
        priority=40,
    ))
    policy.add(PolicyRule(
        name="daytime-response",
        statement="Between 7am and 8pm on weekdays the response time for all "
        "jobs should be as small as possible.",
        priority=50,
        applies_when="weekdays 07:00-20:00",
        criterion=Criterion("average_response_time", average_response_time),
    ))
    policy.add(PolicyRule(
        name="offpeak-load",
        statement="Between 8pm and 7am on weekdays and all weekend or on "
        "holidays it is the goal to achieve a high system load.",
        priority=50,
        applies_when="nights and weekends",
        criterion=Criterion(
            "average_weighted_response_time", average_weighted_response_time
        ),
    ))
    return policy

"""Achievable-region analysis: on-line versus off-line (Figure 2).

Figure 2 of the paper sketches the region of criterion space reachable by
schedules: off-line methods with complete knowledge cover a larger area
than on-line algorithms, which may force the owner to "review the conflict
resolving strategy".  :func:`achievable_region` makes that picture concrete
for any pair of criteria: it runs a family of schedulers over a workload
(the on-line family through the simulator; an off-line bound family with
exact information) and returns both point clouds and their Pareto fronts.

The off-line family here is the on-line algorithms re-run with exact
runtime knowledge (the paper's own Table 6 device) — a *lower envelope*
approximation of the true off-line region, which is all the construction
needs to exhibit the containment of Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.job import Job
from repro.core.machine import Machine
from repro.core.simulator import Simulator
from repro.policy.pareto import ParetoPoint, pareto_front
from repro.policy.rules import Criterion
from repro.schedulers.registry import SchedulerConfig, build_scheduler, paper_configurations
from repro.workloads.transforms import with_exact_estimates


@dataclass(frozen=True, slots=True)
class AchievableRegion:
    """Criterion-space point clouds for the on-line and off-line families."""

    criteria: tuple[Criterion, ...]
    online_points: tuple[ParetoPoint, ...]
    offline_points: tuple[ParetoPoint, ...]

    @property
    def online_front(self) -> list[ParetoPoint]:
        return pareto_front(self.online_points, self.criteria)

    @property
    def offline_front(self) -> list[ParetoPoint]:
        return pareto_front(self.offline_points, self.criteria)

    def offline_dominates_online(self) -> bool:
        """True iff every on-line front point is weakly dominated by some
        off-line point — the containment Figure 2 depicts."""
        from repro.policy.pareto import dominates

        for p in self.online_front:
            if not any(
                q.values == p.values or dominates(q.values, p.values, self.criteria)
                for q in self.offline_points
            ):
                return False
        return True


def achievable_region(
    jobs: Sequence[Job],
    criteria: Sequence[Criterion],
    *,
    total_nodes: int = 256,
    configs: Sequence[SchedulerConfig] | None = None,
    weighted: bool = False,
) -> AchievableRegion:
    """Map the region of ``criteria`` space reachable by the scheduler zoo."""
    chosen = list(configs) if configs is not None else list(paper_configurations())
    exact = with_exact_estimates(jobs)

    def run(config: SchedulerConfig, stream: Sequence[Job], tag: str) -> ParetoPoint:
        scheduler = build_scheduler(config, total_nodes, weighted=weighted)
        result = Simulator(Machine(total_nodes), scheduler).run(stream)
        values = tuple(c.evaluate(result.schedule) for c in criteria)
        return ParetoPoint(label=f"{config.key}[{tag}]", values=values)

    online = tuple(run(c, jobs, "online") for c in chosen)
    offline = tuple(run(c, exact, "offline") for c in chosen)
    return AchievableRegion(
        criteria=tuple(criteria),
        online_points=online,
        offline_points=offline,
    )

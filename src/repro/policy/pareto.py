"""Pareto-optimal schedule selection and objective synthesis (Section 2.2).

The paper's recipe for deriving an objective function from a policy:

1. for a typical set of jobs, determine the Pareto-optimal schedules with
   respect to the policy's criteria (:func:`pareto_front`);
2. define a partial order over these schedules (ranks assigned by the
   owner, Figure 1's ``0 < 1 < 2`` labelling);
3. derive an objective function that generates this order
   (:func:`fit_linear_objective`);
4. repeat for other job sets and refine.

The synthesis in step 3 searches for a weighted sum of the (normalised)
criteria whose induced order matches the owner's partial order — the
simplest objective family that is still a single scalar *schedule cost* as
Section 2.2 requires.  A perceptron-style update over violated pairs finds
a consistent weighting whenever one exists in that family; otherwise the
best-found weighting and the residual violations are reported so the owner
can split rules or revisit the order (the paper's "refine … accordingly").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.policy.rules import Criterion, Direction


@dataclass(frozen=True, slots=True)
class ParetoPoint:
    """One candidate schedule in criterion space."""

    label: str
    values: tuple[float, ...]
    #: Owner-assigned rank; larger = preferred (Figure 1).  ``None`` until
    #: the owner orders the front.
    rank: int | None = None


def dominates(
    a: Sequence[float],
    b: Sequence[float],
    criteria: Sequence[Criterion],
) -> bool:
    """True iff ``a`` is at least as good as ``b`` everywhere and strictly
    better somewhere."""
    if len(a) != len(b) or len(a) != len(criteria):
        raise ValueError("dimension mismatch between points and criteria")
    at_least_as_good = True
    strictly_better = False
    for av, bv, crit in zip(a, b, criteria):
        if crit.better(bv, av):
            at_least_as_good = False
            break
        if crit.better(av, bv):
            strictly_better = True
    return at_least_as_good and strictly_better


def pareto_front(
    points: Sequence[ParetoPoint],
    criteria: Sequence[Criterion],
) -> list[ParetoPoint]:
    """The non-dominated subset, preserving input order."""
    front: list[ParetoPoint] = []
    for p in points:
        if any(dominates(q.values, p.values, criteria) for q in points if q is not p):
            continue
        front.append(p)
    return front


@dataclass(frozen=True, slots=True)
class LinearObjective:
    """A scalar schedule cost: weighted sum of normalised criteria."""

    criteria: tuple[Criterion, ...]
    weights: tuple[float, ...]
    #: Per-criterion (offset, scale) used for normalisation.
    normalisers: tuple[tuple[float, float], ...]
    #: Pairs (preferred_label, inferior_label) the fit could not satisfy.
    violations: tuple[tuple[str, str], ...] = ()

    def cost(self, values: Sequence[float]) -> float:
        """Schedule cost of a raw criterion vector (lower is better)."""
        total = 0.0
        for v, w, (offset, scale), crit in zip(
            values, self.weights, self.normalisers, self.criteria
        ):
            norm = (v - offset) / scale
            if crit.direction is Direction.MAXIMIZE:
                norm = -norm
            total += w * norm
        return total

    @property
    def consistent(self) -> bool:
        return not self.violations


def fit_linear_objective(
    points: Sequence[ParetoPoint],
    criteria: Sequence[Criterion],
    *,
    max_epochs: int = 500,
    margin: float = 1e-3,
) -> LinearObjective:
    """Find non-negative weights so that higher-ranked points cost less.

    Ranked points (``rank is not None``) define the constraints: for every
    pair with ``rank(a) > rank(b)`` we require ``cost(a) + margin <=
    cost(b)``.  Criteria are min-max normalised over the given points first
    so weights are comparable across units.
    """
    ranked = [p for p in points if p.rank is not None]
    if len(ranked) < 2:
        raise ValueError("need at least two ranked points to fit an objective")
    dim = len(criteria)
    raw = np.array([p.values for p in ranked], dtype=np.float64)
    if raw.shape[1] != dim:
        raise ValueError("point dimension does not match criteria count")

    # Normalise: minimise-direction, range [0, 1] over the sample.
    offsets = raw.min(axis=0)
    scales = np.where(raw.max(axis=0) > offsets, raw.max(axis=0) - offsets, 1.0)
    norm = (raw - offsets) / scales
    for j, crit in enumerate(criteria):
        if crit.direction is Direction.MAXIMIZE:
            norm[:, j] = -norm[:, j]

    pairs = [
        (i, j)
        for i, a in enumerate(ranked)
        for j, b in enumerate(ranked)
        if a.rank is not None and b.rank is not None and a.rank > b.rank
    ]
    weights = np.ones(dim) / dim
    for _ in range(max_epochs):
        changed = False
        for i, j in pairs:
            # want cost_i < cost_j : w . (norm_i - norm_j) <= -margin
            gap = float(weights @ (norm[i] - norm[j]))
            if gap > -margin:
                weights -= 0.1 * (norm[i] - norm[j])
                weights = np.clip(weights, 0.0, None)
                if weights.sum() == 0.0:
                    weights = np.ones(dim) / dim
                else:
                    weights /= weights.sum()
                changed = True
        if not changed:
            break

    violations = tuple(
        (ranked[i].label, ranked[j].label)
        for i, j in pairs
        if float(weights @ (norm[i] - norm[j])) > 0.0
    )
    return LinearObjective(
        criteria=tuple(criteria),
        weights=tuple(float(w) for w in weights),
        normalisers=tuple((float(o), float(s)) for o, s in zip(offsets, scales)),
        violations=violations,
    )

"""The Section-2 methodology: policy -> objective function -> algorithm.

The paper's central claim is structural: a scheduling system should be
designed as three layers, and the middle layer (the objective function) is
*derived* from the top one (the owner's policy) via multi-criteria
analysis.  This package implements that machinery:

* :mod:`repro.policy.rules` — policy rules with criterion functions and
  conflict-resolution priorities (Examples 1 and 5 ship as presets);
* :mod:`repro.policy.pareto` — Pareto-optimal schedule selection, partial
  orders over the front, and synthesis of a scalar objective function that
  generates a desired partial order (the 4-step recipe of Section 2.2);
* :mod:`repro.policy.regions` — achievable-region analysis comparing
  on-line and off-line algorithm families (Figure 2).
"""

from repro.policy.rules import (
    Criterion,
    PolicyRule,
    SchedulingPolicy,
    example1_policy,
    example5_policy,
)
from repro.policy.pareto import (
    ParetoPoint,
    dominates,
    fit_linear_objective,
    pareto_front,
)
from repro.policy.regions import AchievableRegion, achievable_region

__all__ = [
    "AchievableRegion",
    "Criterion",
    "ParetoPoint",
    "PolicyRule",
    "SchedulingPolicy",
    "achievable_region",
    "dominates",
    "example1_policy",
    "example5_policy",
    "fit_linear_objective",
    "pareto_front",
]

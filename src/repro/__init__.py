"""repro — reproduction of Krallmann, Schwiegelshohn & Yahyapour,
*On the Design and Evaluation of Job Scheduling Algorithms* (IPPS/JSSPP '99).

The package provides, bottom-up:

* :mod:`repro.core` — rigid jobs, a space-shared machine, the discrete-event
  simulator, schedule records and validity checking;
* :mod:`repro.schedulers` — the paper's algorithm zoo (FCFS, Garey & Graham,
  EASY and conservative backfilling, SMART-FFIA/NFIW, PSRS) composed from
  order policies and servicing disciplines;
* :mod:`repro.workloads` — SWF traces, a calibrated CTC-like generator, the
  probability-distribution model and the randomized model of Section 6;
* :mod:`repro.metrics` — the paper's objective functions and friends;
* :mod:`repro.policy` — the Section 2 methodology: policy rules,
  Pareto-optimal schedule selection, objective synthesis;
* :mod:`repro.scenarios` — the scenario algebra: seeded, composable
  disturbance components (failures, cancellations, load surges, runtime
  variability, closed-loop users) compiling to ``ScenarioInputs``;
* :mod:`repro.experiments` — the harness regenerating Tables 3–8 and
  Figures 3–6.

Quickstart::

    from repro import SimulationConfig, simulate, FCFSScheduler
    from repro.workloads import ctc_like_workload
    from repro.workloads.transforms import cap_nodes
    from repro.metrics import average_response_time

    jobs = cap_nodes(ctc_like_workload(n_jobs=1000, seed=42), 256)
    # backend="auto" (the default) picks the numpy-vectorised kernels when
    # numpy is importable; results are bit-identical to backend="python".
    config = SimulationConfig(backend="auto")
    result = simulate(jobs, FCFSScheduler.with_easy(), total_nodes=256,
                      config=config)
    print(average_response_time(result.schedule))

Disturbances compose declaratively in a ``ScenarioSpec`` (the compiled
form is a ``ScenarioInputs`` bundle, which ``run`` also accepts raw)::

    from repro import ScenarioSpec, FailureModel, LoadSurge, Simulator, Machine

    spec = ScenarioSpec((FailureModel(mtbf=40_000.0, recovery="resubmit"),
                         LoadSurge(at=3_600.0, count=80)), seed=7)
    Simulator(Machine(256), scheduler, config).run(jobs, scenario=spec)
"""

from repro.core import (
    AvailabilityProfile,
    Job,
    Machine,
    ScenarioInputs,
    Schedule,
    ScheduledJob,
    SimulationConfig,
    SimulationResult,
    Simulator,
    ValidityError,
    available_backends,
    resolve_backend,
)
from repro.core.simulator import simulate
from repro.schedulers import (
    FCFSScheduler,
    GareyGrahamScheduler,
    OrderedQueueScheduler,
    SchedulerConfig,
    build_scheduler,
    paper_configurations,
    register_discipline,
    register_row,
    registered_configurations,
)
from repro.scenarios import (
    CancellationModel,
    FailureModel,
    FeedbackUsers,
    LoadSurge,
    RuntimeVariability,
    ScenarioSpec,
)

__version__ = "1.0.0"

__all__ = [
    "AvailabilityProfile",
    "CancellationModel",
    "FCFSScheduler",
    "FailureModel",
    "FeedbackUsers",
    "GareyGrahamScheduler",
    "Job",
    "LoadSurge",
    "Machine",
    "OrderedQueueScheduler",
    "RuntimeVariability",
    "ScenarioInputs",
    "ScenarioSpec",
    "Schedule",
    "ScheduledJob",
    "SchedulerConfig",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "ValidityError",
    "__version__",
    "available_backends",
    "build_scheduler",
    "paper_configurations",
    "register_discipline",
    "register_row",
    "registered_configurations",
    "resolve_backend",
    "simulate",
]

"""repro — reproduction of Krallmann, Schwiegelshohn & Yahyapour,
*On the Design and Evaluation of Job Scheduling Algorithms* (IPPS/JSSPP '99).

The package provides, bottom-up:

* :mod:`repro.core` — rigid jobs, a space-shared machine, the discrete-event
  simulator, schedule records and validity checking;
* :mod:`repro.schedulers` — the paper's algorithm zoo (FCFS, Garey & Graham,
  EASY and conservative backfilling, SMART-FFIA/NFIW, PSRS) composed from
  order policies and servicing disciplines;
* :mod:`repro.workloads` — SWF traces, a calibrated CTC-like generator, the
  probability-distribution model and the randomized model of Section 6;
* :mod:`repro.metrics` — the paper's objective functions and friends;
* :mod:`repro.policy` — the Section 2 methodology: policy rules,
  Pareto-optimal schedule selection, objective synthesis;
* :mod:`repro.experiments` — the harness regenerating Tables 3–8 and
  Figures 3–6.

Quickstart::

    from repro import simulate, FCFSScheduler
    from repro.workloads import ctc_like_workload
    from repro.metrics import average_response_time

    jobs = ctc_like_workload(n_jobs=1000, seed=42)
    result = simulate(jobs, FCFSScheduler.with_easy(), total_nodes=256)
    print(average_response_time(result.schedule))
"""

from repro.core import (
    AvailabilityProfile,
    Job,
    Machine,
    Schedule,
    ScheduledJob,
    SimulationResult,
    Simulator,
    ValidityError,
)
from repro.core.simulator import simulate
from repro.schedulers import (
    FCFSScheduler,
    GareyGrahamScheduler,
    OrderedQueueScheduler,
    SchedulerConfig,
    build_scheduler,
    paper_configurations,
    register_discipline,
    register_row,
    registered_configurations,
)

__version__ = "1.0.0"

__all__ = [
    "AvailabilityProfile",
    "FCFSScheduler",
    "GareyGrahamScheduler",
    "Job",
    "Machine",
    "OrderedQueueScheduler",
    "Schedule",
    "ScheduledJob",
    "SchedulerConfig",
    "SimulationResult",
    "Simulator",
    "ValidityError",
    "__version__",
    "build_scheduler",
    "paper_configurations",
    "register_discipline",
    "register_row",
    "registered_configurations",
    "simulate",
]

"""Seed replication: are the conclusions artifacts of one random workload?

The paper simulates each workload once (real traces cannot be resampled;
1999 compute budgets discouraged replication of the artificial ones).
With generated workloads we can do better: re-run an experiment over many
seeds and report the distribution of every cell's percentage-vs-reference,
plus the per-seed stability of the paper's ordered claims.

Used by ``benchmarks/bench_replication.py`` and available as a library
API for anyone extending the study.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.experiments.paper import EXPERIMENTS, run_experiment


@dataclass(frozen=True, slots=True)
class CellStats:
    """Across-seed distribution of one grid cell's pct-vs-reference."""

    key: str
    mean_pct: float
    std_pct: float
    min_pct: float
    max_pct: float
    n_seeds: int

    @property
    def sign_stable(self) -> bool:
        """True when every seed agrees on better/worse than the reference."""
        return self.min_pct >= 0.0 or self.max_pct <= 0.0


@dataclass(slots=True)
class ReplicationResult:
    """Replicated experiment: per-cell stats and claim stability."""

    experiment_id: str
    regime: str
    seeds: tuple[int, ...]
    cells: dict[str, CellStats]
    #: (better_key, worse_key) -> fraction of seeds where the order held.
    claim_stability: dict[tuple[str, str], float]

    def format(self) -> str:
        lines = [
            f"replication: {self.experiment_id} ({self.regime}), "
            f"{len(self.seeds)} seeds"
        ]
        lines.append(f"{'cell':<26}{'mean pct':>10}{'std':>8}{'range':>22}{'sign':>6}")
        for key, stats in self.cells.items():
            sign = "yes" if stats.sign_stable else "NO"
            lines.append(
                f"{key:<26}{stats.mean_pct:>+9.1f}%{stats.std_pct:>7.1f}"
                f"  [{stats.min_pct:+8.1f}%, {stats.max_pct:+8.1f}%]{sign:>6}"
            )
        if self.claim_stability:
            lines.append("claim stability (fraction of seeds where the order held):")
            for (better, worse), frac in self.claim_stability.items():
                lines.append(f"  {better} < {worse}: {frac:.0%}")
        return "\n".join(lines)


def replicate_experiment(
    experiment_id: str,
    *,
    seeds: Sequence[int],
    scale: int | None = None,
    regime: str = "unweighted",
    claims: Sequence[tuple[str, str]] = (),
) -> ReplicationResult:
    """Run one paper experiment across seeds and aggregate.

    ``claims`` are ordered cell pairs (better, worse) whose per-seed
    stability is reported — e.g. ``("gg/list", "fcfs/easy")`` for "G&G
    beats the reference".
    """
    if not seeds:
        raise ValueError("need at least one seed")
    if experiment_id not in EXPERIMENTS:
        raise KeyError(experiment_id)

    per_seed_pcts: list[dict[str, float]] = []
    per_seed_values: list[dict[str, float]] = []
    for seed in seeds:
        result = run_experiment(
            experiment_id, scale=scale, seed=seed, regimes=[regime]
        )
        grid = result.grids[regime]
        per_seed_pcts.append({key: grid.pct(key) for key in grid.cells})
        per_seed_values.append(
            {key: cell.objective for key, cell in grid.cells.items()}
        )

    keys = per_seed_pcts[0].keys()
    cells: dict[str, CellStats] = {}
    for key in keys:
        pcts = [sample[key] for sample in per_seed_pcts]
        mean = sum(pcts) / len(pcts)
        var = sum((p - mean) ** 2 for p in pcts) / len(pcts)
        cells[key] = CellStats(
            key=key,
            mean_pct=mean,
            std_pct=math.sqrt(var),
            min_pct=min(pcts),
            max_pct=max(pcts),
            n_seeds=len(seeds),
        )

    stability: dict[tuple[str, str], float] = {}
    for better, worse in claims:
        hits = sum(
            1
            for sample in per_seed_values
            if sample[better] < sample[worse]
        )
        stability[(better, worse)] = hits / len(seeds)

    return ReplicationResult(
        experiment_id=experiment_id,
        regime=regime,
        seeds=tuple(seeds),
        cells=cells,
        claim_stability=stability,
    )


#: The Section 7 headline claims in orderable form, reused by benchmarks.
SECTION7_UNWEIGHTED_CLAIMS: tuple[tuple[str, str], ...] = (
    ("fcfs/easy", "fcfs/list"),          # backfilling rescues FCFS
    ("psrs/easy", "fcfs/easy"),          # reordering beats the reference
    ("smart-ffia/easy", "fcfs/easy"),
    ("gg/list", "fcfs/easy"),            # G&G good...
    ("smart-ffia/easy", "gg/list"),      # ...but not best
)
SECTION7_WEIGHTED_CLAIMS: tuple[tuple[str, str], ...] = (
    ("gg/list", "fcfs/easy"),            # G&G wins the weighted regime
    ("gg/list", "psrs/easy"),
    ("gg/list", "smart-ffia/easy"),
    ("fcfs/easy", "fcfs/list"),
)

"""Run-lifecycle journal: crash-tolerant experiment runs.

PR 3 made the engine robust to *cell* failures (retries, pool rebuilds,
serial degradation), but a killed or crashed *driver process* lost the
run: only the content-addressed cache survived, with no record of what
the run was, what remained, or whether the partial output was
trustworthy.  This module adds that record:

* :class:`RunJournal` — an append-only JSONL file under the cache
  directory, one per run.  The first record is the **run manifest**
  (workload digest, config keys, machine size, regime, failure-scenario
  fingerprints, ``CACHE_VERSION``); every later record is one cell state
  transition (``scheduled`` / ``started`` / ``completed`` / ``failed`` /
  ``abandoned`` / ``interrupted``).  Every record is fsynced and carries
  a truncated-SHA256 checksum, so a torn final line (the driver died
  mid-``write``) is detected and dropped on replay while torn *interior*
  lines — which cannot happen under append-only semantics and therefore
  indicate real corruption — raise :class:`JournalCorruptError`.
* **deterministic run ids** — :func:`compute_run_id` hashes exactly the
  manifest fields that define cell fingerprints, so re-running the same
  grid maps to the same journal and ``--resume RUN_ID`` can re-derive
  everything but the job stream itself from the id.
* :func:`verify_run` — an integrity audit cross-checking journal records
  against the result cache (and optionally a persisted
  :class:`~repro.experiments.runner.GridResult`), reporting missing,
  corrupt, mismatched and orphaned cells.
* :func:`list_runs` — one :class:`RunSummary` per journal in a
  directory, powering ``repro-experiments --list-runs``.
* driver-side heartbeat freshness (:func:`freshest_heartbeat`) for the
  engine's worker watchdog — workers touch per-process sentinel files
  (see :func:`repro.experiments.workload_store.init_worker`); the
  dispatch loop treats a stale directory as a silently dead pool.

The journal is written only by the driver process (single writer, append
only); workers never touch it.  Replay is therefore a linear scan, and
the *latest* record per cell wins.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.engine import ResultCache
    from repro.experiments.runner import GridResult

__all__ = [
    "CellRecord",
    "JournalCorruptError",
    "JournalError",
    "JournalReplay",
    "ManifestMismatchError",
    "RunAudit",
    "RunInterrupted",
    "RunJournal",
    "RunSummary",
    "UnknownRunError",
    "compute_run_id",
    "freshest_heartbeat",
    "journal_path",
    "list_runs",
    "read_journal",
    "verify_run",
]

#: Manifest fields that define a run's identity — exactly the inputs of
#: :func:`repro.experiments.engine.cell_fingerprint` plus the config list,
#: so equal run ids imply equal cell fingerprints.
IDENTITY_FIELDS = (
    "cache_version",
    "workload_digest",
    "total_nodes",
    "weighted",
    "recompute_threshold",
    "failures_digest",
    "recovery",
    "scenario",
    "configs",
)

#: Cell states that mean "this cell's result exists and is trusted".
TERMINAL_STATE = "completed"

#: Every state a cell record may carry.
CELL_STATES = (
    "scheduled",
    "started",
    "completed",
    "failed",
    "abandoned",
    "interrupted",
)


class JournalError(RuntimeError):
    """Base class for journal problems."""


class JournalCorruptError(JournalError):
    """An interior journal line is torn or checksummed wrong.

    Append-only writes can tear only the *final* line; a bad interior
    line means the file was edited or the device corrupted it, so replay
    refuses to guess.
    """


class UnknownRunError(JournalError):
    """``resume``/``verify_run`` was given a run id with no journal."""


class ManifestMismatchError(JournalError):
    """The journal's manifest no longer matches the requested grid.

    Resuming under a different workload, config set, machine size,
    regime, failure scenario or cache format would silently mix results
    from two different experiments; the mismatching fields are listed so
    the operator can tell which input drifted.
    """

    def __init__(self, run_id: str, diffs: Mapping[str, tuple[object, object]]):
        self.run_id = run_id
        self.diffs = dict(diffs)
        lines = ", ".join(
            f"{name}: journal={old!r} requested={new!r}"
            for name, (old, new) in self.diffs.items()
        )
        super().__init__(
            f"run {run_id} manifest does not match the requested grid ({lines})"
        )


class RunInterrupted(KeyboardInterrupt):
    """A run stopped on SIGINT/SIGTERM with a resumable journal.

    Subclasses :class:`KeyboardInterrupt` so generic ``except Exception``
    blocks do not swallow an operator's Ctrl-C, while the CLI (and
    tests) can still catch it precisely and print the resume command.
    """

    def __init__(
        self,
        run_id: str | None,
        *,
        signal_name: str = "SIGINT",
        completed: int = 0,
        remaining: int = 0,
    ) -> None:
        self.run_id = run_id
        self.signal_name = signal_name
        self.completed = completed
        self.remaining = remaining
        hint = f"; resume with run id {run_id}" if run_id else ""
        super().__init__(
            f"run interrupted by {signal_name} with {completed} cell(s) "
            f"completed and {remaining} remaining{hint}"
        )


# -- run ids and record checksums ----------------------------------------------


def compute_run_id(manifest: Mapping[str, object]) -> str:
    """Deterministic run id: SHA-256 over the identity manifest fields.

    Everything that shapes a cell fingerprint participates, nothing else
    — display names and timestamps never change the id, so the same grid
    always maps to the same journal file.
    """
    identity = {name: manifest[name] for name in IDENTITY_FIELDS}
    payload = json.dumps(identity, sort_keys=True)
    return hashlib.sha256(payload.encode("ascii")).hexdigest()[:12]


def manifest_diffs(
    journal_manifest: Mapping[str, object], requested: Mapping[str, object]
) -> dict[str, tuple[object, object]]:
    """Identity fields on which a journal and a requested grid disagree."""
    diffs: dict[str, tuple[object, object]] = {}
    for name in IDENTITY_FIELDS:
        old, new = journal_manifest.get(name), requested.get(name)
        if old != new:
            diffs[name] = (old, new)
    return diffs


def _checksum(payload: Mapping[str, object]) -> str:
    """Truncated SHA-256 over the canonical JSON form (without ``crc``)."""
    canonical = json.dumps(
        {k: v for k, v in payload.items() if k != "crc"}, sort_keys=True
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:8]


def _encode_record(payload: dict) -> str:
    payload = dict(payload)
    payload["crc"] = _checksum(payload)
    return json.dumps(payload, sort_keys=True)


def _decode_record(line: str) -> dict | None:
    """Parse one journal line; ``None`` means torn/corrupt."""
    try:
        payload = json.loads(line)
    except ValueError:
        return None
    if not isinstance(payload, dict) or "crc" not in payload:
        return None
    if _checksum(payload) != payload["crc"]:
        return None
    return payload


def journal_path(journal_dir: str | Path, run_id: str) -> Path:
    return Path(journal_dir) / f"{run_id}.jsonl"


# -- replay --------------------------------------------------------------------


@dataclass(slots=True)
class CellRecord:
    """Replayed state of one grid cell: the latest transition wins."""

    key: str
    state: str
    fingerprint: str | None = None
    objective: float | None = None
    cached: bool = False
    #: Dispatch attempts recorded (``started`` records seen).
    attempts: int = 0
    #: Retry charges recorded (``failed`` records seen).
    failures: int = 0


@dataclass(slots=True)
class JournalReplay:
    """Everything a journal file says, after tolerant replay."""

    path: Path
    manifest: dict
    cells: dict[str, CellRecord]
    #: True when the final line was torn (dropped, not an error).
    torn_tail: bool = False
    #: Number of ``resumed`` markers seen (prior resume attempts).
    resumes: int = 0
    records: int = 0
    #: Latest ``cache-health`` record (remote hits/rejections/quarantines
    #: and breaker state), or ``None`` for runs without one.
    cache_health: dict | None = None

    @property
    def run_id(self) -> str:
        return str(self.manifest.get("run", ""))

    @property
    def completed(self) -> list[str]:
        return [k for k, c in self.cells.items() if c.state == TERMINAL_STATE]

    @property
    def remaining(self) -> list[str]:
        return [k for k, c in self.cells.items() if c.state != TERMINAL_STATE]

    @property
    def interrupted(self) -> list[str]:
        return [k for k, c in self.cells.items() if c.state == "interrupted"]

    @property
    def complete(self) -> bool:
        keys = self.manifest.get("configs", [])
        return bool(keys) and all(
            self.cells.get(k) is not None and self.cells[k].state == TERMINAL_STATE
            for k in keys
        )


def read_journal(path: str | Path) -> JournalReplay:
    """Replay a journal file.

    The final line may be torn (the driver died mid-write): it is
    dropped and flagged.  A torn or checksum-failing *interior* line
    raises :class:`JournalCorruptError` — append-only files cannot tear
    in the middle, so that is real corruption, not a crash artifact.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as exc:
        raise UnknownRunError(f"no journal at {path}") from exc
    lines = text.splitlines()
    replay = JournalReplay(path=path, manifest={}, cells={})
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        payload = _decode_record(line)
        if payload is None:
            if index == len(lines) - 1:
                replay.torn_tail = True  # torn final write: drop silently
                continue
            raise JournalCorruptError(
                f"{path}: line {index + 1} is torn or checksummed wrong "
                f"in the middle of the journal"
            )
        replay.records += 1
        kind = payload.get("kind")
        if kind == "manifest":
            # A fresh run() over an existing id truncates the file, so at
            # most one manifest exists; keep the first defensively.
            if not replay.manifest:
                replay.manifest = payload
        elif kind == "resumed":
            replay.resumes += 1
        elif kind == "cache-health":
            # Latest wins (a resumed run appends a fresh report).
            replay.cache_health = {
                k: v for k, v in payload.items()
                if k not in ("kind", "crc", "seq", "t")
            }
        elif kind == "cell":
            key = str(payload.get("key"))
            cell = replay.cells.get(key)
            if cell is None:
                cell = replay.cells[key] = CellRecord(key=key, state="scheduled")
            state = str(payload.get("state"))
            cell.state = state
            if payload.get("fp"):
                cell.fingerprint = str(payload["fp"])
            if state == "started":
                cell.attempts += 1
            elif state == "failed":
                cell.failures += 1
            elif state == TERMINAL_STATE:
                obj = payload.get("objective")
                cell.objective = float(obj) if obj is not None else None
                cell.cached = bool(payload.get("cached", False))
    if not replay.manifest:
        raise JournalCorruptError(f"{path}: journal has no manifest record")
    return replay


# -- the writer ----------------------------------------------------------------


class RunJournal:
    """Append-only, fsynced run journal (single writer: the driver).

    Create a fresh journal with :meth:`create` (truncates any previous
    attempt under the same run id) or continue one with :meth:`open_resume`
    (appends a ``resumed`` marker).  Every record is written as one JSON
    line with an embedded checksum and flushed + fsynced before the
    method returns, so the journal never lies about what *was* recorded
    — the worst a crash can do is tear the final line, which replay
    detects and drops.
    """

    def __init__(self, path: Path, manifest: dict, handle: io.TextIOBase) -> None:
        self.path = path
        self.manifest = manifest
        self._handle = handle
        self._seq = 0

    @property
    def run_id(self) -> str:
        return str(self.manifest.get("run", ""))

    @classmethod
    def create(cls, path: str | Path, manifest: Mapping[str, object]) -> "RunJournal":
        """Start a fresh journal: truncate, write the manifest record."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = dict(manifest)
        payload.setdefault("kind", "manifest")
        payload.setdefault("created", time.time())
        payload.setdefault("pid", os.getpid())
        handle = open(path, "w", encoding="utf-8")
        journal = cls(path, payload, handle)
        journal._append(payload)
        return journal

    @classmethod
    def open_resume(cls, path: str | Path) -> tuple["RunJournal", JournalReplay]:
        """Continue an existing journal, appending a ``resumed`` marker.

        Returns the journal (positioned at append) plus the replayed
        state so the caller can skip already-completed cells.
        """
        path = Path(path)
        replay = read_journal(path)
        handle = open(path, "a", encoding="utf-8")
        journal = cls(path, dict(replay.manifest), handle)
        journal._append(
            {"kind": "resumed", "at": time.time(), "pid": os.getpid()}
        )
        return journal, replay

    def _append(self, payload: dict) -> None:
        payload = dict(payload)
        payload["seq"] = self._seq
        self._seq += 1
        self._handle.write(_encode_record(payload) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def record_cell(
        self,
        key: str,
        state: str,
        *,
        fingerprint: str | None = None,
        objective: float | None = None,
        cached: bool = False,
        detail: str | None = None,
    ) -> None:
        """Append one cell state transition (fsynced)."""
        if state not in CELL_STATES:
            raise ValueError(f"unknown cell state {state!r}; expected {CELL_STATES}")
        payload: dict = {"kind": "cell", "key": key, "state": state, "t": time.time()}
        if fingerprint is not None:
            payload["fp"] = fingerprint
        if objective is not None:
            payload["objective"] = objective
        if cached:
            payload["cached"] = True
        if detail is not None:
            payload["detail"] = detail
        self._append(payload)

    def record_cache_health(self, health: Mapping[str, object]) -> None:
        """Append one ``cache-health`` record (fsynced).

        Written once at the end of a run that used a remote cache store:
        remote hits/rejections, quarantined entries, breaker state and
        how often it opened.  Journal readers that predate the record
        kind skip it silently (replay tolerates unknown kinds), so old
        tooling keeps working on new journals.
        """
        payload: dict = {"kind": "cache-health", "t": time.time()}
        payload.update(health)
        self._append(payload)

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:  # pragma: no cover - device went away
            pass

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# -- run listing ---------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class RunSummary:
    """One journal, summarized for ``--list-runs``."""

    run_id: str
    workload_name: str
    created: float
    total: int
    completed: int
    status: str  # "complete" | "interrupted" | "incomplete" | "corrupt"
    resumes: int = 0
    torn_tail: bool = False
    path: Path | None = None
    #: Execution backend recorded in the manifest ("local" for journals
    #: written before backends existed).
    backend: str = "local"
    #: Remote cache spec the run wrote through to ("" for none).
    remote_cache: str = ""
    #: Latest journaled ``cache-health`` record (``None`` when absent).
    cache_health: Mapping[str, object] | None = None

    def describe(self) -> str:
        when = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(self.created))
        extra = f", {self.resumes} resume(s)" if self.resumes else ""
        torn = ", torn tail dropped" if self.torn_tail else ""
        tags = [] if self.backend == "local" else [self.backend]
        if self.remote_cache:
            tags.append(f"remote-cache={self.remote_cache}")
        tagged = f"  [{', '.join(tags)}]" if tags else ""
        health = ""
        if self.cache_health:
            bits = []
            for field_name, label in (
                ("remote_hits", "hit(s)"),
                ("remote_rejected", "rejected"),
                ("quarantined", "quarantined"),
                ("shed", "shed"),
            ):
                count = int(self.cache_health.get(field_name, 0) or 0)
                if count:
                    bits.append(f"{count} {label}")
            opened = int(self.cache_health.get("breaker_opened", 0) or 0)
            if opened:
                bits.append(f"breaker opened {opened}x")
            if bits:
                health = f"  [cache: {', '.join(bits)}]"
        return (
            f"{self.run_id}  {self.status:<11}  {self.completed}/{self.total} cells"
            f"  {when}  {self.workload_name}{extra}{torn}{tagged}{health}"
        )


def list_runs(journal_dir: str | Path) -> list[RunSummary]:
    """Summarize every journal under ``journal_dir``, newest first.

    Unreadable journals are listed as ``corrupt`` rather than hidden —
    an operator deciding what to resume needs to see the wreckage too.
    """
    root = Path(journal_dir)
    summaries: list[RunSummary] = []
    if not root.is_dir():
        return summaries
    for path in sorted(root.glob("*.jsonl")):
        try:
            replay = read_journal(path)
        except JournalError:
            summaries.append(
                RunSummary(
                    run_id=path.stem,
                    workload_name="?",
                    created=path.stat().st_mtime,
                    total=0,
                    completed=0,
                    status="corrupt",
                    path=path,
                )
            )
            continue
        total = len(replay.manifest.get("configs", []))
        completed = len(replay.completed)
        if total and completed >= total and replay.complete:
            status = "complete"
        elif replay.interrupted:
            status = "interrupted"
        else:
            status = "incomplete"
        summaries.append(
            RunSummary(
                run_id=replay.run_id or path.stem,
                workload_name=str(replay.manifest.get("workload_name", "?")),
                created=float(replay.manifest.get("created", path.stat().st_mtime)),
                total=total,
                completed=completed,
                status=status,
                resumes=replay.resumes,
                torn_tail=replay.torn_tail,
                path=path,
                backend=str(replay.manifest.get("execution_backend") or "local"),
                remote_cache=str(replay.manifest.get("remote_cache") or ""),
                cache_health=replay.cache_health,
            )
        )
    summaries.sort(key=lambda s: s.created, reverse=True)
    return summaries


# -- integrity audit -----------------------------------------------------------


@dataclass(slots=True)
class RunAudit:
    """Outcome of :func:`verify_run`: journal vs cache (vs grid).

    ``missing``/``corrupt``/``mismatched``/``grid_mismatched`` are
    inconsistencies — the journal promised a result that the cache or
    grid cannot back up.  ``remaining`` (cells without a terminal record)
    and ``orphaned`` (unfinished cells whose fingerprint *is* cached,
    e.g. the crash landed between the cache write and the journal
    append, or another run shared the cell) are informational: both heal
    on resume.
    """

    run_id: str
    total: int = 0
    completed: int = 0
    #: Completed in the journal, but the cache has no entry.
    missing: list[str] = field(default_factory=list)
    #: Completed in the journal, but the cache entry is unreadable/stale.
    corrupt: list[str] = field(default_factory=list)
    #: Completed in the journal, but the cached objective differs.
    mismatched: list[str] = field(default_factory=list)
    #: Not completed in the journal, yet present in the cache.
    orphaned: list[str] = field(default_factory=list)
    #: No terminal record (killed/interrupted before finishing).
    remaining: list[str] = field(default_factory=list)
    #: Completed against a persisted grid that disagrees.
    grid_mismatched: list[str] = field(default_factory=list)
    torn_tail: bool = False
    cache_checked: bool = False
    #: Execution backend recorded in the manifest ("local" for journals
    #: written before backends existed).
    backend: str = "local"
    #: Fleet cache address the run wrote through to ("" for none).
    remote_cache: str = ""
    #: Completed cells missing locally but served (validated) by the
    #: manifest's remote cache — consistent, just not local.
    remote_backed: int = 0
    #: Completed cells missing locally whose only possible backing is a
    #: remote cache that could not be reached: unverifiable, not
    #: (yet) inconsistent.
    remote_only: list[str] = field(default_factory=list)

    @property
    def inconsistencies(self) -> int:
        return (
            len(self.missing)
            + len(self.corrupt)
            + len(self.mismatched)
            + len(self.grid_mismatched)
        )

    @property
    def ok(self) -> bool:
        return self.inconsistencies == 0

    def describe(self) -> str:
        lines = [
            f"run {self.run_id}: {self.completed}/{self.total} cells completed"
            + (", torn tail dropped" if self.torn_tail else "")
        ]
        if not self.cache_checked:
            lines.append("  (no cache supplied: journal-only audit)")
        for label, keys in (
            ("missing from cache", self.missing),
            ("corrupt/stale in cache", self.corrupt),
            ("objective mismatch vs cache", self.mismatched),
            ("objective mismatch vs grid", self.grid_mismatched),
        ):
            if keys:
                lines.append(f"  INCONSISTENT ({label}): {', '.join(sorted(keys))}")
        if self.backend != "local" or self.remote_cache:
            extras = (
                f", remote cache {self.remote_cache}" if self.remote_cache else ""
            )
            lines.append(f"  executed on: {self.backend}{extras}")
        if self.remote_backed:
            lines.append(
                f"  {self.remote_backed} cell(s) served from the remote cache"
            )
        if self.remote_only:
            lines.append(
                f"  UNVERIFIABLE (only in unreachable remote cache "
                f"{self.remote_cache}): {', '.join(sorted(self.remote_only))}"
            )
        if self.remaining:
            lines.append(f"  remaining (resumable): {', '.join(sorted(self.remaining))}")
        if self.orphaned:
            lines.append(
                f"  orphaned cache entries (heal on resume): "
                f"{', '.join(sorted(self.orphaned))}"
            )
        lines.append(
            "  OK: journal and cache agree"
            if self.ok
            else f"  {self.inconsistencies} inconsistency(ies) found"
        )
        return "\n".join(lines)


def verify_run(
    run_id: str,
    *,
    journal_dir: str | Path,
    cache: "ResultCache | None" = None,
    grid: "GridResult | None" = None,
    check_remote: bool = True,
) -> RunAudit:
    """Audit one run: does the cache (and grid) back up the journal?

    For every cell the journal claims ``completed``, the cache must hold
    a readable entry under the journaled fingerprint whose objective
    matches the journaled one.  A persisted :class:`GridResult` can be
    cross-checked the same way.  The audit never mutates the cache.

    When the manifest names a remote fleet cache, a cell missing from
    the local cache is probed there too (``check_remote=False`` skips
    the network): a validated remote entry counts as ``remote_backed``
    (consistent), a reachable remote miss stays ``missing``
    (inconsistent), and an *unreachable* remote cache flags the cell
    ``remote_only`` — its only possible backing cannot be checked, which
    an operator should see before trusting or pruning the run.
    """
    replay = read_journal(journal_path(journal_dir, run_id))
    remote_addr = str(replay.manifest.get("remote_cache") or "")
    audit = RunAudit(
        run_id=run_id,
        total=len(replay.manifest.get("configs", [])),
        torn_tail=replay.torn_tail,
        cache_checked=cache is not None,
        backend=str(replay.manifest.get("execution_backend") or "local"),
        remote_cache=remote_addr,
    )
    remote_store = None
    if cache is not None and remote_addr and check_remote:
        from repro.experiments.backends.cache import store_from_spec

        # An effectively infinite cooldown: one failed round trip marks
        # the store unreachable for the whole audit instead of re-dialing
        # (and timing out) once per missing cell.  The spec picks the
        # store kind — fleet HOST:PORT or s3:// object store.
        remote_store = store_from_spec(remote_addr, timeout=3.0, cooldown=1e9)

    def remote_verdict(fingerprint: str) -> str:
        """"hit" | "corrupt" | "missing" | "unreachable" for one entry."""
        if remote_store is None:
            return "unreachable" if remote_addr else "missing"
        text = remote_store.load(fingerprint)
        if text is None:
            return "missing" if remote_store.connected else "unreachable"
        from repro.experiments.engine import ResultCache

        return "hit" if ResultCache._classify(text) == "hit" else "corrupt"
    for key in replay.manifest.get("configs", []):
        cell = replay.cells.get(key)
        if cell is None or cell.state != TERMINAL_STATE:
            audit.remaining.append(key)
            if (
                cache is not None
                and cell is not None
                and cell.fingerprint is not None
                and cache.status(cell.fingerprint) == "hit"
            ):
                audit.orphaned.append(key)
            continue
        audit.completed += 1
        if cache is not None and cell.fingerprint is not None:
            status = cache.status(cell.fingerprint)
            if status == "miss":
                if not remote_addr:
                    audit.missing.append(key)
                else:
                    verdict = remote_verdict(cell.fingerprint)
                    if verdict == "hit":
                        audit.remote_backed += 1
                    elif verdict == "unreachable":
                        audit.remote_only.append(key)
                    elif verdict == "corrupt":
                        audit.corrupt.append(key)
                    else:
                        audit.missing.append(key)
            elif status in ("stale", "corrupt"):
                audit.corrupt.append(key)
            elif cell.objective is not None:
                cached = cache.get(cell.fingerprint)
                if cached is not None and cached.objective != cell.objective:
                    audit.mismatched.append(key)
        if grid is not None:
            in_grid = grid.cells.get(key)
            if in_grid is None or (
                cell.objective is not None and in_grid.objective != cell.objective
            ):
                audit.grid_mismatched.append(key)
            elif (
                cell.fingerprint is not None
                and grid.fingerprints.get(key) not in (None, cell.fingerprint)
            ):
                audit.grid_mismatched.append(key)
    return audit


# -- driver-side heartbeat freshness -------------------------------------------


def freshest_heartbeat(heartbeat_dir: str | Path) -> float | None:
    """Newest heartbeat mtime under ``heartbeat_dir`` (wall-clock seconds).

    Workers touch one sentinel file each (named by pid) from a daemon
    thread, so a returned time older than the watchdog budget means no
    worker process has been scheduled in that long — SIGKILLed, SIGSTOPped
    or wedged in D-state.  ``None`` when no worker has checked in yet.
    """
    newest: float | None = None
    try:
        names = os.listdir(heartbeat_dir)
    except OSError:
        return None
    for name in names:
        if not name.endswith(".hb"):
            continue
        try:
            mtime = os.stat(os.path.join(heartbeat_dir, name)).st_mtime
        except OSError:  # pragma: no cover - racing cleanup
            continue
        if newest is None or mtime > newest:
            newest = mtime
    return newest


def manifest_for(
    *,
    workload_digest: str,
    configs: Iterable[str],
    total_nodes: int,
    weighted: bool,
    recompute_threshold: float,
    failures_digest: str,
    recovery: str,
    cache_version: int,
    workload_name: str = "workload",
    n_jobs: int = 0,
    reference_key: str | None = None,
    scenario: str = "",
    execution_backend: str = "local",
    remote_cache: str = "",
) -> dict:
    """Build a run manifest; identity fields feed :func:`compute_run_id`.

    ``scenario`` is the canonical scenario-spec digest (``""`` for the
    healthy baseline) — an identity field, like every other input of
    :func:`repro.experiments.engine.cell_fingerprint`.

    ``execution_backend`` and ``remote_cache`` record *where* the run
    executed and which fleet cache (if any) it wrote through to.  Both
    are deliberately **non-identity**: results are bit-identical across
    backends, so a run dispatched locally and one dispatched to remote
    workers share one run id, and a run started on one backend resumes
    cleanly on another.
    """
    manifest = {
        "kind": "manifest",
        "cache_version": cache_version,
        "workload_digest": workload_digest,
        "total_nodes": total_nodes,
        "weighted": weighted,
        "recompute_threshold": repr(recompute_threshold),
        "failures_digest": failures_digest,
        "recovery": recovery,
        "scenario": scenario,
        "configs": list(configs),
        "workload_name": workload_name,
        "n_jobs": n_jobs,
        "reference_key": reference_key,
        "execution_backend": execution_backend,
        "remote_cache": remote_cache,
    }
    manifest["run"] = compute_run_id(manifest)
    return manifest

"""Local process-pool execution backend (single pool or sharded groups).

``groups=1`` is the engine's historical ``ProcessPoolExecutor`` fan-out,
bit-identical in behavior: every cell is submitted eagerly (the executor
queues the backlog), a ``BrokenProcessPool`` dooms the whole pool, and a
lease expiry tears it down.  ``groups>1`` shards the same worker budget
across independent executors so one crashing or hung cell only takes its
own shard's in-flight cells with it — the other groups keep computing
while the broken one is rebuilt.

All groups share one heartbeat sentinel directory: the engine's watchdog
only needs the *freshest* touch to know the backend is alive, and a
silently dead shard surfaces through lease expiry on its cells.
"""

from __future__ import annotations

import multiprocessing
import shutil
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING

from repro.experiments.backends.base import (
    CellOutcome,
    CellTask,
    ExecutionBackend,
    ReleaseReport,
)
from repro.experiments.journal import freshest_heartbeat
from repro.experiments.workload_store import init_worker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.packing import PackedJobs

__all__ = ["PoolBackend", "pool_context", "terminate_pool"]


def pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork so in-process registry registrations reach the workers."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a (possibly hung) pool down without waiting for its workers.

    The process table must be captured *before* ``shutdown`` — it nulls
    ``_processes``, and a worker stuck in a simulation never notices a mere
    shutdown request.  Unterminated hung workers would keep the executor's
    manager thread alive, which ``concurrent.futures`` joins at interpreter
    exit: the whole process would hang long after the grid finished.
    """
    procs = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        try:
            proc.terminate()
        except (OSError, ValueError):  # pragma: no cover - already dead
            pass


class PoolBackend(ExecutionBackend):
    """Cells on local ``ProcessPoolExecutor``\\ s, optionally sharded."""

    def __init__(
        self,
        *,
        workers: int,
        n_cells: int,
        groups: int = 1,
        store_entries: "tuple[tuple[str, PackedJobs], ...] | None" = None,
        heartbeat_interval: float | None = None,
    ) -> None:
        total = max(1, min(workers, n_cells))
        self.groups = max(1, min(groups, total))
        self.name = (
            "local-pool" if self.groups == 1 else f"sharded-pool[{self.groups}]"
        )
        #: Worker budget per group; every group gets at least one process.
        self._group_workers = [
            total // self.groups + (1 if i < total % self.groups else 0)
            for i in range(self.groups)
        ]
        self._store_entries = store_entries
        self._heartbeat_interval = heartbeat_interval
        self._execs: list[ProcessPoolExecutor | None] = [None] * self.groups
        self._futures: dict[Future, tuple[str, int]] = {}
        self._broken: set[int] = set()
        self._hb_dir: str | None = None
        self._epoch = time.time()
        self._rr = 0

    # -- lifecycle ---------------------------------------------------------

    def _make_group(self, index: int) -> None:
        # A (re)built group re-seeds its workers from the store and
        # re-arms their heartbeats: the initializer runs again in every
        # fresh worker process.
        kwargs: dict = {}
        if self._store_entries is not None or self._hb_dir is not None:
            kwargs["initializer"] = init_worker
            kwargs["initargs"] = (
                self._store_entries,
                self._hb_dir,
                self._heartbeat_interval,
            )
        self._epoch = time.time()
        self._execs[index] = ProcessPoolExecutor(
            max_workers=self._group_workers[index],
            mp_context=pool_context(),
            **kwargs,
        )

    def start(self) -> None:
        if self._heartbeat_interval is not None:
            self._hb_dir = tempfile.mkdtemp(prefix="repro-hb-")
        for index in range(self.groups):
            self._make_group(index)

    def close(self) -> None:
        for index, pool in enumerate(self._execs):
            if pool is not None:
                terminate_pool(pool)
                self._execs[index] = None
        self._futures.clear()
        self._broken.clear()
        if self._hb_dir is not None:
            # Worker heartbeat threads exit on their next touch (the
            # sentinel directory is gone).
            shutil.rmtree(self._hb_dir, ignore_errors=True)
            self._hb_dir = None

    # -- dispatch ----------------------------------------------------------

    def can_accept(self) -> bool:
        # Executors queue their own backlog, exactly like the historical
        # single-pool dispatch: the engine hands the whole grid over.
        return any(
            pool is not None and index not in self._broken
            for index, pool in enumerate(self._execs)
        )

    def submit(self, task: CellTask) -> bool:
        from repro.experiments.engine import _run_cell_task

        for _ in range(self.groups):
            index = self._rr % self.groups
            self._rr += 1
            pool = self._execs[index]
            if pool is None or index in self._broken:
                continue
            try:
                future = pool.submit(_run_cell_task, task.args)
            except RuntimeError:  # shut down under us
                self._broken.add(index)
                continue
            self._futures[future] = (task.fingerprint, index)
            return True
        return False

    def collect(self, timeout: float | None) -> list[CellOutcome]:
        if not self._futures:
            if timeout:
                time.sleep(min(timeout, 0.05))
            return []
        done, _ = wait(
            set(self._futures), timeout=timeout, return_when=FIRST_COMPLETED
        )
        outcomes: list[CellOutcome] = []
        for future in done:
            fp, index = self._futures.pop(future)
            try:
                value = future.result()
            except BrokenProcessPool as exc:
                self._broken.add(index)
                outcomes.append(
                    CellOutcome(fp, "broken", detail=f"worker crashed: {exc!r}")
                )
            except Exception as exc:
                # The task itself raised inside a healthy worker: the
                # engine retries (flaky crashes recover), then surfaces
                # deterministic errors via the serial fallback where the
                # traceback is direct.
                outcomes.append(
                    CellOutcome(fp, "failed", detail=f"cell raised: {exc!r}")
                )
            else:
                outcomes.append(CellOutcome(fp, "done", value=value))
        return outcomes

    def in_flight(self) -> set[str]:
        return {fp for fp, _ in self._futures.values()}

    def liveness(self) -> float | None:
        if self._hb_dir is None:
            return None
        newest = freshest_heartbeat(self._hb_dir)
        return max(newest or 0.0, self._epoch)

    # -- failure paths -----------------------------------------------------

    def release(self, fingerprints: set[str], reason: str) -> ReleaseReport:
        """Tear down every group running a released cell.

        A pool cannot abandon one running future, so the owning group
        dies with the lease; its other in-flight cells come back as
        uncharged collateral (with one group this is exactly the
        historical kill-the-pool-on-timeout behavior).
        """
        affected = {
            index for _, (fp, index) in self._futures.items() if fp in fingerprints
        }
        requeue: list[str] = []
        for future, (fp, index) in list(self._futures.items()):
            if index in affected:
                del self._futures[future]
                if fp not in fingerprints:
                    requeue.append(fp)
        for index in affected:
            pool = self._execs[index]
            if pool is not None:
                terminate_pool(pool)
                self._execs[index] = None
            self._broken.add(index)
        return ReleaseReport(requeue=tuple(requeue), broke=bool(affected))

    def drain_broken(self) -> list[str]:
        stranded: list[str] = []
        for future, (fp, index) in list(self._futures.items()):
            if index in self._broken:
                del self._futures[future]
                stranded.append(fp)
        return stranded

    def reset(self, should_abort=None) -> bool:
        for index in sorted(self._broken):
            pool = self._execs[index]
            if pool is not None:
                terminate_pool(pool)
            self._make_group(index)
        self._broken.clear()
        return True

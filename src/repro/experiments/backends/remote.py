"""Remote execution backend: cells dispatched to socket workers.

One :class:`RemoteWorkerBackend` drives a set of
:mod:`~repro.experiments.backends.worker` processes.  Each connection
is seeded once with the packed workload (the WorkloadStore path: cells
then carry only the 64-char digest), runs one cell at a time, and
heartbeats at the driver's interval so the engine's existing watchdog
deadline math applies unchanged.

Failure handling, by symptom:

* **connection lost** (worker SIGKILLed, socket severed, frame
  corrupt): the in-flight cell comes back as a ``failed`` outcome — the
  engine's retry/backoff ladder re-dispatches it — and the worker
  enters bounded reconnect with jittered exponential backoff.  Workers
  that exhaust their reconnect budget are abandoned.
* **lease expired** (the worker is alive but too slow, or silently
  stopped): the engine revokes the lease and this backend marks the
  worker a *zombie* — it gets no new cells, but its socket stays open,
  so a late RESULT is still delivered and the engine dedupes it
  idempotently by fingerprint.  A result (or error) returns a zombie to
  service; a lost connection sends it through reconnect like any other.
* **every worker gone**: the engine sees an empty in-flight set with a
  non-empty queue, spends one reset — a full blocking reconnect sweep —
  and steps down the degradation ladder (sharded -> local pool ->
  serial) if that fails, so the grid completes regardless.
"""

from __future__ import annotations

import random
import select
import socket
import time
from typing import TYPE_CHECKING, Callable, Sequence

from repro.experiments.backends import protocol as proto
from repro.experiments.backends.base import (
    BackendUnavailable,
    CellOutcome,
    CellTask,
    ExecutionBackend,
    ReleaseReport,
)
from repro.resilience import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.packing import PackedJobs

__all__ = ["RemoteWorkerBackend"]


class _Worker:
    """Driver-side state for one remote worker connection."""

    __slots__ = (
        "addr", "sock", "state", "task_fp", "last_seen", "attempts",
        "next_attempt_at",
    )

    def __init__(self, addr: tuple[str, int]) -> None:
        self.addr = addr
        self.sock: socket.socket | None = None
        #: "idle" | "busy" | "zombie" | "down" | "dead"
        self.state = "down"
        self.task_fp: str | None = None
        self.last_seen = 0.0
        self.attempts = 0
        self.next_attempt_at = 0.0

    @property
    def label(self) -> str:
        return f"{self.addr[0]}:{self.addr[1]}"


class RemoteWorkerBackend(ExecutionBackend):
    """Cells over the frame protocol; one in-flight cell per worker."""

    name = "remote"

    def __init__(
        self,
        addresses: Sequence[str | tuple[str, int]],
        *,
        store_entries: "tuple[tuple[str, PackedJobs], ...] | None" = None,
        heartbeat_interval: float | None = None,
        connect_timeout: float = 5.0,
        io_timeout: float = 600.0,
        max_reconnects: int = 4,
        reconnect_backoff: float = 0.5,
    ) -> None:
        if not addresses:
            raise ValueError("RemoteWorkerBackend needs at least one address")
        self._workers = [
            _Worker(proto.parse_address(address)) for address in addresses
        ]
        self._store_entries = store_entries
        self._heartbeat_interval = heartbeat_interval
        self._connect_timeout = connect_timeout
        self._io_timeout = io_timeout
        self._max_reconnects = max_reconnects
        self._reconnect_backoff = reconnect_backoff
        self._reconnect_policy = RetryPolicy(
            max_attempts=max_reconnects + 1,
            backoff=reconnect_backoff,
            jitter=(0.5, 1.5),
        )
        self._rng = random.Random()
        self._epoch = time.time()

    # -- connection management ---------------------------------------------

    def _connect(self, worker: _Worker) -> bool:
        """Dial, handshake, seed.  On failure: schedule the next attempt."""
        try:
            sock = socket.create_connection(
                worker.addr, timeout=self._connect_timeout
            )
            sock.settimeout(self._io_timeout)
            proto.send_frame(sock, proto.Kind.HELLO, {
                "version": proto.PROTOCOL_VERSION,
                "heartbeat_interval": self._heartbeat_interval,
            })
            frame = self._recv_meaningful(sock, worker)
            if frame.kind is not proto.Kind.WELCOME:
                raise proto.ProtocolError(
                    f"expected WELCOME, got {frame.kind.name}"
                )
            for digest, packed in self._store_entries or ():
                proto.send_frame(sock, proto.Kind.SEED, (digest, packed))
                frame = self._recv_meaningful(sock, worker)
                if frame.kind is not proto.Kind.SEEDED:
                    raise proto.ProtocolError(
                        f"expected SEEDED, got {frame.kind.name}"
                    )
        except (OSError, proto.ProtocolError):
            self._schedule_retry(worker)
            return False
        worker.sock = sock
        worker.state = "idle"
        worker.task_fp = None
        worker.last_seen = time.time()
        worker.attempts = 0
        return True

    def _recv_meaningful(self, sock: socket.socket, worker: _Worker):
        """Next non-PING frame; PINGs refresh liveness even mid-handshake."""
        while True:
            frame = proto.recv_frame(sock)
            if frame.kind is not proto.Kind.PING:
                return frame
            worker.last_seen = time.time()

    def _schedule_retry(self, worker: _Worker) -> None:
        self._close_worker(worker)
        worker.attempts += 1
        if worker.attempts > self._max_reconnects:
            worker.state = "dead"
            return
        worker.state = "down"
        pause = self._reconnect_policy.backoff_for(worker.attempts, self._rng)
        worker.next_attempt_at = time.monotonic() + pause

    @staticmethod
    def _close_worker(worker: _Worker) -> None:
        if worker.sock is not None:
            try:
                worker.sock.close()
            except OSError:  # pragma: no cover - already dead
                pass
            worker.sock = None

    def _on_conn_lost(
        self, worker: _Worker, outcomes: list[CellOutcome], detail: str
    ) -> None:
        fp, was = worker.task_fp, worker.state
        worker.task_fp = None
        self._schedule_retry(worker)
        if was == "busy" and fp is not None:
            outcomes.append(
                CellOutcome(
                    fp,
                    "failed",
                    detail=f"lost connection to worker {worker.label}: {detail}",
                )
            )
        # A zombie's cell was already revoked and requeued by the engine:
        # losing the zombie costs nothing further.

    def _try_reconnects(self) -> None:
        now = time.monotonic()
        for worker in self._workers:
            if worker.state == "down" and worker.next_attempt_at <= now:
                self._connect(worker)

    def _next_reconnect_at(self) -> float | None:
        pending = [
            w.next_attempt_at for w in self._workers if w.state == "down"
        ]
        return min(pending) if pending else None

    # -- the backend interface ---------------------------------------------

    def start(self) -> None:
        connected = sum(1 for worker in self._workers if self._connect(worker))
        if not connected:
            raise BackendUnavailable(
                "no remote worker reachable at "
                + ", ".join(w.label for w in self._workers)
            )
        self._epoch = time.time()

    def can_accept(self) -> bool:
        return any(w.state == "idle" for w in self._workers)

    def submit(self, task: CellTask) -> bool:
        for worker in self._workers:
            if worker.state != "idle":
                continue
            try:
                proto.send_frame(worker.sock, proto.Kind.TASK, task.args)
            except (OSError, proto.ProtocolError):
                self._schedule_retry(worker)
                continue
            worker.task_fp = task.fingerprint
            worker.state = "busy"
            return True
        return False

    def collect(self, timeout: float | None) -> list[CellOutcome]:
        deadline = None if timeout is None else time.monotonic() + timeout
        outcomes: list[CellOutcome] = []
        while True:
            self._try_reconnects()
            sock_map = {
                w.sock: w for w in self._workers if w.sock is not None
            }
            now = time.monotonic()
            waits: list[float] = []
            if deadline is not None:
                waits.append(deadline - now)
            next_retry = self._next_reconnect_at()
            if next_retry is not None:
                waits.append(next_retry - now)
            if not sock_map:
                # Nothing to read from: sleep toward the next reconnect
                # attempt (or the caller's deadline) in short slices.
                if deadline is not None and now >= deadline:
                    return outcomes
                if not waits:
                    return outcomes
                time.sleep(min(0.25, max(0.01, min(waits))))
                continue
            select_timeout = max(0.0, min(waits)) if waits else None
            try:
                readable, _, _ = select.select(
                    list(sock_map), [], [], select_timeout
                )
            except OSError:
                readable = []
            for sock in readable:
                worker = sock_map[sock]
                try:
                    frame = proto.recv_frame(sock)
                except (OSError, proto.ProtocolError) as exc:
                    self._on_conn_lost(worker, outcomes, repr(exc))
                    continue
                worker.last_seen = time.time()
                if frame.kind is proto.Kind.PING:
                    continue
                if frame.kind in (proto.Kind.RESULT, proto.Kind.TASK_ERROR):
                    fp = worker.task_fp
                    worker.task_fp = None
                    worker.state = "idle"
                    if fp is None:  # pragma: no cover - defensive
                        continue
                    if frame.kind is proto.Kind.RESULT:
                        outcomes.append(
                            CellOutcome(fp, "done", value=frame.payload)
                        )
                    else:
                        outcomes.append(
                            CellOutcome(
                                fp,
                                "failed",
                                detail=(
                                    f"cell raised on worker "
                                    f"{worker.label}: {frame.payload}"
                                ),
                            )
                        )
                else:
                    self._on_conn_lost(
                        worker,
                        outcomes,
                        f"unexpected {frame.kind.name} frame",
                    )
            if outcomes:
                return outcomes
            if deadline is not None and time.monotonic() >= deadline:
                return outcomes
            # Otherwise: woke for a reconnect attempt or spurious
            # readiness — loop and keep waiting out the caller's budget.

    def in_flight(self) -> set[str]:
        return {
            w.task_fp
            for w in self._workers
            if w.state == "busy" and w.task_fp is not None
        }

    def liveness(self) -> float | None:
        if self._heartbeat_interval is None:
            return None
        seen = [w.last_seen for w in self._workers if w.sock is not None]
        return max([self._epoch, *seen])

    def release(self, fingerprints: set[str], reason: str) -> ReleaseReport:
        for worker in self._workers:
            if worker.state == "busy" and worker.task_fp in fingerprints:
                # Keep the socket: a slow worker's late RESULT still
                # arrives and the engine dedupes it by fingerprint.
                worker.state = "zombie"
        return ReleaseReport()

    def reset(
        self, should_abort: Callable[[], bool] | None = None
    ) -> bool:
        """Blocking reconnect sweep over every address; the last resort."""
        for worker in self._workers:
            self._close_worker(worker)
            worker.state = "down"
            worker.task_fp = None
            worker.attempts = 0
            worker.next_attempt_at = 0.0
        for round_index in range(max(1, self._max_reconnects)):
            for worker in self._workers:
                if worker.sock is None and worker.state != "dead":
                    self._connect(worker)
            if any(w.sock is not None for w in self._workers):
                self._epoch = time.time()
                return True
            if should_abort is not None and should_abort():
                return False
            if all(w.state == "dead" for w in self._workers):
                return False
            time.sleep(
                self._reconnect_policy.backoff_for(round_index + 1, self._rng)
            )
        return False

    def close(self) -> None:
        for worker in self._workers:
            if worker.sock is not None:
                try:
                    proto.send_frame(worker.sock, proto.Kind.BYE, None)
                except (OSError, proto.ProtocolError):
                    pass
            self._close_worker(worker)
            worker.state = "down"
            worker.task_fp = None

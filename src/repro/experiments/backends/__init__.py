"""Execution backends for the experiment engine's dispatch loop.

The engine fans grid cells out through one :class:`~repro.experiments.
backends.base.ExecutionBackend` at a time:

* :class:`~repro.experiments.backends.pool.PoolBackend` — the default
  local ``ProcessPoolExecutor`` fan-out (``groups=1``) and the sharded
  multi-process-group variant (``groups>1``; a broken shard rebuilds
  alone instead of tearing down the whole pool);
* :class:`~repro.experiments.backends.remote.RemoteWorkerBackend` —
  cells dispatched to :mod:`~repro.experiments.backends.worker`
  processes over the length-prefixed, checksummed socket protocol of
  :mod:`~repro.experiments.backends.protocol`, with worker heartbeats,
  lease-aware zombie handling and bounded jittered reconnect;
* :mod:`~repro.experiments.backends.cache` — pluggable
  :class:`~repro.experiments.backends.cache.CacheStore` backends for
  :class:`~repro.experiments.engine.ResultCache` (local directory +
  remote store over the same protocol), plus
  :class:`~repro.experiments.backends.objectstore.ObjectStoreCacheStore`
  speaking a minimal S3-compatible HTTP subset to any object store, and
  the deterministic fault-injecting
  :class:`~repro.experiments.backends.s3stub.S3StubServer` the chaos
  suites run it against.

Submodules are imported lazily so importing the engine never drags in
the worker/server side (which itself imports the engine for the cell
task entry point).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

_EXPORTS = {
    "BackendUnavailable": "repro.experiments.backends.base",
    "CellOutcome": "repro.experiments.backends.base",
    "CellTask": "repro.experiments.backends.base",
    "ExecutionBackend": "repro.experiments.backends.base",
    "ReleaseReport": "repro.experiments.backends.base",
    "CacheStore": "repro.experiments.backends.cache",
    "CacheStoreHealth": "repro.experiments.backends.cache",
    "LocalDirStore": "repro.experiments.backends.cache",
    "RemoteCacheStore": "repro.experiments.backends.cache",
    "store_from_spec": "repro.experiments.backends.cache",
    "ObjectStoreCacheStore": "repro.experiments.backends.objectstore",
    "ChaosSpec": "repro.experiments.backends.s3stub",
    "S3StubServer": "repro.experiments.backends.s3stub",
    "PoolBackend": "repro.experiments.backends.pool",
    "ProtocolError": "repro.experiments.backends.protocol",
    "RemoteWorkerBackend": "repro.experiments.backends.remote",
    "WorkerServer": "repro.experiments.backends.worker",
    "serve_worker": "repro.experiments.backends.worker",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.backends.base import (  # noqa: F401
        BackendUnavailable,
        CellOutcome,
        CellTask,
        ExecutionBackend,
        ReleaseReport,
    )
    from repro.experiments.backends.cache import (  # noqa: F401
        CacheStore,
        CacheStoreHealth,
        LocalDirStore,
        RemoteCacheStore,
        store_from_spec,
    )
    from repro.experiments.backends.objectstore import (  # noqa: F401
        ObjectStoreCacheStore,
    )
    from repro.experiments.backends.pool import PoolBackend  # noqa: F401
    from repro.experiments.backends.s3stub import (  # noqa: F401
        ChaosSpec,
        S3StubServer,
    )
    from repro.experiments.backends.protocol import ProtocolError  # noqa: F401
    from repro.experiments.backends.remote import RemoteWorkerBackend  # noqa: F401
    from repro.experiments.backends.worker import (  # noqa: F401
        WorkerServer,
        serve_worker,
    )


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)

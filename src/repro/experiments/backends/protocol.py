"""Length-prefixed, checksummed framing for the remote worker protocol.

Every message on the wire is one frame::

    +-------+------+----------+-------------+----------------+
    | magic | kind |  length  |  checksum   |    payload     |
    | 2B Rp |  1B  | 4B (BE)  | 8B sha256   | length bytes   |
    +-------+------+----------+-------------+----------------+

``checksum`` is the first 8 bytes of SHA-256 over the payload, verified
on receipt — a truncated or bit-flipped frame raises
:class:`ProtocolError` instead of deserializing garbage, and the
engine's reconnect ladder treats that connection as lost.  Payloads are
pickled Python objects (:class:`~repro.core.packing.PackedJobs`, cell
argument tuples, :class:`~repro.experiments.runner.CellResult`).

.. warning::
   Pickle is not safe against a *malicious* peer — the checksum guards
   against corruption, not attackers.  Run workers only on machines and
   networks you trust (the same trust boundary as a shared filesystem
   cache).
"""

from __future__ import annotations

import enum
import hashlib
import pickle
import socket
import struct

__all__ = [
    "Frame",
    "Kind",
    "MAX_FRAME",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "parse_address",
    "recv_frame",
    "send_frame",
]

#: Bump on wire-format changes; exchanged in HELLO/WELCOME so skewed
#: driver/worker versions fail the handshake loudly.
PROTOCOL_VERSION = 1

MAGIC = b"Rp"
HEADER = struct.Struct(">2sBI8s")

#: Upper bound on one frame's payload; a length beyond it means a torn
#: or hostile stream, not a real message (the largest legitimate frame
#: is a SEED carrying one packed workload).
MAX_FRAME = 256 * 1024 * 1024


class ProtocolError(RuntimeError):
    """The byte stream is not a valid frame (torn, corrupt, or skewed)."""


class Kind(enum.IntEnum):
    """Frame kinds; the comment is the payload each carries."""

    HELLO = 1  # {"version": int, "heartbeat_interval": float | None}
    WELCOME = 2  # {"version": int, "pid": int}
    SEED = 3  # (digest, PackedJobs) — workload shipped once per worker
    SEEDED = 4  # digest
    TASK = 5  # _run_cell_task args tuple
    RESULT = 6  # (key, CellResult, wall_seconds)
    TASK_ERROR = 7  # repr of the exception the cell raised
    PING = 8  # {"pid": int} — worker heartbeat, also sent mid-cell
    CACHE_GET = 9  # fingerprint
    CACHE_VALUE = 10  # (fingerprint, raw JSON text)
    CACHE_MISS = 11  # fingerprint
    CACHE_PUT = 12  # (fingerprint, raw JSON text)
    CACHE_OK = 13  # fingerprint
    BYE = 14  # None


class Frame(tuple):
    """(kind, payload) pair returned by :func:`recv_frame`."""

    __slots__ = ()

    def __new__(cls, kind: Kind, payload: object) -> "Frame":
        return super().__new__(cls, (kind, payload))

    @property
    def kind(self) -> Kind:
        return self[0]

    @property
    def payload(self) -> object:
        return self[1]


def _checksum(payload: bytes) -> bytes:
    return hashlib.sha256(payload).digest()[:8]


def send_frame(sock: socket.socket, kind: Kind, payload: object) -> None:
    """Serialize and send one frame (blocking, whole frame or raise)."""
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > MAX_FRAME:
        raise ProtocolError(f"frame payload of {len(body)} bytes exceeds MAX_FRAME")
    sock.sendall(HEADER.pack(MAGIC, int(kind), len(body), _checksum(body)) + body)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Frame:
    """Receive one frame (blocking); verify framing and checksum.

    Raises :class:`ProtocolError` for malformed bytes and
    :class:`ConnectionError` when the peer hung up cleanly between
    frames or mid-frame.
    """
    header = _recv_exact(sock, HEADER.size)
    magic, kind, length, digest = HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if length > MAX_FRAME:
        raise ProtocolError(f"frame length {length} exceeds MAX_FRAME")
    try:
        kind = Kind(kind)
    except ValueError:
        raise ProtocolError(f"unknown frame kind {kind}") from None
    body = _recv_exact(sock, length)
    if _checksum(body) != digest:
        raise ProtocolError(f"frame checksum mismatch on a {kind.name} frame")
    try:
        payload = pickle.loads(body)
    except Exception as exc:
        raise ProtocolError(f"undecodable {kind.name} payload: {exc!r}") from exc
    return Frame(kind, payload)


def parse_address(address: str | tuple[str, int]) -> tuple[str, int]:
    """``"host:port"`` / ``"port"`` / ``(host, port)`` -> ``(host, port)``."""
    if isinstance(address, tuple):
        host, port = address
        return str(host), int(port)
    text = str(address).strip()
    if ":" in text:
        host, _, port = text.rpartition(":")
    else:
        host, port = "127.0.0.1", text
    try:
        return (host or "127.0.0.1"), int(port)
    except ValueError:
        raise ValueError(f"bad worker address {address!r}; expected HOST:PORT") from None

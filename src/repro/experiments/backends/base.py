"""The ``ExecutionBackend`` contract behind the engine's dispatch loop.

The engine owns everything that makes a grid *correct* — fingerprints,
leases, retry/backoff budgets, duplicate-result dedup, journaling and
the degradation ladder.  A backend owns only *where cells run*: it takes
:class:`CellTask`\\ s, returns :class:`CellOutcome`\\ s, and reports its
own liveness so the engine's watchdog math works unchanged for local
pools and remote fleets alike.

The lease state machine (see docs/architecture.md, "Execution
backends"):

* the engine stamps a lease deadline on every submitted cell;
* a lease that expires triggers :meth:`ExecutionBackend.release` — the
  backend gives the cell up (a local pool tears the owning process
  group down, a remote backend marks the worker a *zombie*), the engine
  charges the cell a retry, and any collateral cells the backend had to
  abandon with it are requeued uncharged;
* a late result for a released cell may still arrive (the zombie
  answered after all); the backend delivers it normally and the engine
  dedupes it idempotently by fingerprint — a cell counts exactly once
  no matter how many workers eventually answered for it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, NamedTuple


class BackendUnavailable(RuntimeError):
    """The backend cannot start at all (e.g. no remote worker reachable).

    The engine treats this as an immediate step down the degradation
    ladder, not an error: the grid still completes on the next rung.
    """


class CellTask(NamedTuple):
    """One grid cell, ready to dispatch.

    ``args`` is the full :func:`repro.experiments.engine._run_cell_task`
    argument tuple (row, column, jobs-or-digest, machine, regime,
    compiled scenario inputs, kernel backend) — a backend never needs to
    understand it, only move it.
    """

    fingerprint: str
    key: str
    args: tuple


class CellOutcome(NamedTuple):
    """One collected result.

    ``kind`` is ``"done"`` (``value`` holds the worker's
    ``(key, cell, wall)`` tuple), ``"failed"`` (the cell raised or its
    worker/connection died; the engine charges a retry) or ``"broken"``
    (like ``"failed"``, but the failure also broke part of the backend —
    the engine must requeue :meth:`ExecutionBackend.drain_broken` and
    spend a reset from its budget before submitting again).
    """

    fingerprint: str
    kind: str
    value: tuple | None = None
    detail: str = ""


class ReleaseReport(NamedTuple):
    """What :meth:`ExecutionBackend.release` had to do.

    ``requeue`` lists collateral cells the backend abandoned alongside
    the charged ones (a torn-down pool group dooms every cell it was
    running); the engine resubmits them uncharged.  ``broke`` is true
    when the release damaged the backend itself — the engine then spends
    a reset from its rebuild budget before dispatching again.
    """

    requeue: tuple[str, ...] = ()
    broke: bool = False


class ExecutionBackend(ABC):
    """Where grid cells run; the engine drives exactly one at a time.

    Lifecycle: :meth:`start` once, then repeated
    :meth:`submit`/:meth:`collect` rounds, with :meth:`release`,
    :meth:`drain_broken` and :meth:`reset` on the failure paths, and
    :meth:`close` exactly once at the end (also after a failed start).
    Implementations are driven from a single thread.
    """

    #: Human-readable backend identity; recorded (non-identity) in run
    #: manifests and surfaced by ``--list-runs``.
    name: str = "backend"

    @abstractmethod
    def start(self) -> None:
        """Acquire workers; raise :class:`BackendUnavailable` if none."""

    @abstractmethod
    def can_accept(self) -> bool:
        """True when :meth:`submit` would find a free worker right now."""

    @abstractmethod
    def submit(self, task: CellTask) -> bool:
        """Dispatch one cell; False when no worker could take it."""

    @abstractmethod
    def collect(self, timeout: float | None) -> list[CellOutcome]:
        """Block up to ``timeout`` seconds for outcomes (may be empty)."""

    @abstractmethod
    def in_flight(self) -> set[str]:
        """Fingerprints currently leased out (released cells excluded)."""

    def liveness(self) -> float | None:
        """Wall-clock time of the freshest proof of life, or ``None``.

        ``None`` disables the engine's stall watchdog for this backend.
        """
        return None

    @abstractmethod
    def release(self, fingerprints: set[str], reason: str) -> ReleaseReport:
        """Revoke the leases on ``fingerprints`` (expired or stalled)."""

    def drain_broken(self) -> list[str]:
        """Fingerprints stranded by broken workers, cleared; uncharged."""
        return []

    @abstractmethod
    def reset(
        self, should_abort: Callable[[], bool] | None = None
    ) -> bool:
        """Heal after breakage; False means the backend is beyond repair.

        ``should_abort`` lets a blocking reset (a remote reconnect
        sweep) bail out early on engine shutdown.
        """

    @abstractmethod
    def close(self) -> None:
        """Tear everything down; never raises."""

"""Remote worker: serves grid cells and cache entries over the protocol.

``python -m repro.experiments.backends.worker [HOST:]PORT`` (or
``repro-experiments --serve-worker [HOST:]PORT``) starts one worker
process.  Drivers connect, seed packed workloads once per connection
(idempotent per process — the digest-keyed store is shared), then send
TASK frames; the worker computes each cell through the same
``_run_cell_task`` entry point the local pool uses, so results are
bit-identical to serial execution by construction.

Each connection gets its own thread, which is what makes one worker
double as a **fleet cache server**: CACHE_GET/CACHE_PUT requests on
other connections are answered while a cell is computing.  A heartbeat
thread sends PING frames at the driver-requested interval — also
mid-cell, so the driver's watchdog can tell a long simulation (alive,
leave it to the lease) from a dead worker.

Chaos hooks (used by the fault-injection suite and CI):

* ``chaos_exit_after=K`` — the process hard-exits (``os._exit``) on
  receiving its K-th TASK, before replying: a SIGKILL-equivalent death
  mid-cell;
* ``chaos_drop_after=K`` — the connection that delivers the K-th TASK
  is severed abruptly (RST, no reply), once; the worker itself stays up
  and accepts reconnects;
* ``chaos_stall_first=S`` — the first TASK's RESULT is delayed by ``S``
  seconds *after* computing (heartbeats keep flowing): the lease
  expires, the driver re-dispatches, and the late answer exercises
  duplicate-result dedup.

Note that remote workers rebuild schedulers from *their own* registry:
rows registered only in the driver process are unknown here and fail
the cell, which the driver's retry/degradation ladder then completes
locally — by design, never silently wrong.
"""

from __future__ import annotations

import argparse
import os
import socket
import struct
import threading
import time

from repro.experiments.backends import protocol as proto
from repro.experiments.backends.cache import LocalDirStore

__all__ = ["WorkerServer", "serve_worker"]


class WorkerServer:
    """One worker process: a listener plus a thread per connection."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        cache_dir: str | None = None,
        chaos_exit_after: int | None = None,
        chaos_drop_after: int | None = None,
        chaos_stall_first: float = 0.0,
    ) -> None:
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        self.host, self.port = self._listener.getsockname()[:2]
        self._cache = LocalDirStore(cache_dir) if cache_dir else None
        self._chaos_exit_after = chaos_exit_after
        self._chaos_drop_after = chaos_drop_after
        self._chaos_stall_first = chaos_stall_first
        self._lock = threading.Lock()
        self._tasks_received = 0
        self._dropped_once = False
        self._stalled_once = False
        self._closing = threading.Event()

    def serve_forever(self) -> None:
        """Accept connections until :meth:`close`; never raises on close."""
        while not self._closing.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            if self._closing.is_set():
                # Raced with close(): the blocked accept() held the
                # kernel socket alive past the close, so one last
                # connection could slip in — refuse it.
                try:
                    conn.close()
                except OSError:  # pragma: no cover - already dead
                    pass
                return
            thread = threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            )
            thread.start()

    def close(self) -> None:
        self._closing.set()
        try:
            # Wake a thread blocked in accept(): merely closing the fd
            # does not interrupt the syscall on Linux, and the kernel
            # socket would keep accepting while it blocks.
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already closed
            pass

    # -- per-connection protocol -------------------------------------------

    def _handle(self, conn: socket.socket) -> None:
        send_lock = threading.Lock()
        conn_closed = threading.Event()

        def send(kind: proto.Kind, payload: object) -> None:
            with send_lock:
                proto.send_frame(conn, kind, payload)

        try:
            frame = proto.recv_frame(conn)
            if frame.kind is not proto.Kind.HELLO:
                raise proto.ProtocolError(f"expected HELLO, got {frame.kind.name}")
            hello = frame.payload if isinstance(frame.payload, dict) else {}
            if hello.get("version") != proto.PROTOCOL_VERSION:
                raise proto.ProtocolError(
                    f"protocol version skew: driver speaks "
                    f"{hello.get('version')}, worker speaks "
                    f"{proto.PROTOCOL_VERSION}"
                )
            send(proto.Kind.WELCOME, {
                "version": proto.PROTOCOL_VERSION, "pid": os.getpid(),
            })
            interval = hello.get("heartbeat_interval")
            if interval:
                self._start_heartbeat(send, float(interval), conn_closed)
            while True:
                frame = proto.recv_frame(conn)
                if frame.kind is proto.Kind.BYE:
                    return
                if frame.kind is proto.Kind.SEED:
                    self._on_seed(send, frame.payload)
                elif frame.kind is proto.Kind.TASK:
                    if not self._on_task(conn, send, frame.payload):
                        return  # chaos severed this connection
                elif frame.kind is proto.Kind.CACHE_GET:
                    self._on_cache_get(send, frame.payload)
                elif frame.kind is proto.Kind.CACHE_PUT:
                    self._on_cache_put(send, frame.payload)
                elif frame.kind is proto.Kind.PING:
                    pass  # tolerated for symmetry
                else:
                    raise proto.ProtocolError(
                        f"unexpected {frame.kind.name} frame from a driver"
                    )
        except (ConnectionError, OSError, proto.ProtocolError):
            return  # peer vanished or stream corrupt: drop the connection
        finally:
            conn_closed.set()
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    @staticmethod
    def _start_heartbeat(send, interval: float, closed: threading.Event) -> None:
        def beat() -> None:
            while not closed.wait(interval):
                try:
                    send(proto.Kind.PING, {"pid": os.getpid()})
                except OSError:
                    return

        threading.Thread(
            target=beat, name="repro-worker-heartbeat", daemon=True
        ).start()

    # -- verbs -------------------------------------------------------------

    def _on_seed(self, send, payload: object) -> None:
        from repro.experiments.workload_store import seed_worker_cache

        digest, packed = payload  # type: ignore[misc]
        seed_worker_cache(((digest, packed),))
        send(proto.Kind.SEEDED, digest)

    def _on_task(self, conn: socket.socket, send, payload: object) -> bool:
        with self._lock:
            self._tasks_received += 1
            ordinal = self._tasks_received
            stall = 0.0
            if self._chaos_stall_first and not self._stalled_once:
                self._stalled_once = True
                stall = self._chaos_stall_first
        if (
            self._chaos_exit_after is not None
            and ordinal >= self._chaos_exit_after
        ):
            os._exit(1)  # SIGKILL-equivalent: no BYE, no flush, mid-cell
        if self._chaos_drop_after is not None and ordinal >= self._chaos_drop_after:
            with self._lock:
                dropped = self._dropped_once
                self._dropped_once = True
            if not dropped:
                # RST instead of FIN: the driver sees a hard connection
                # loss, not a polite shutdown.
                try:
                    conn.setsockopt(
                        socket.SOL_SOCKET,
                        socket.SO_LINGER,
                        struct.pack("ii", 1, 0),
                    )
                except OSError:  # pragma: no cover - platform quirk
                    pass
                return False
        from repro.experiments.engine import _run_cell_task

        try:
            result = _run_cell_task(tuple(payload))  # type: ignore[arg-type]
        except Exception as exc:
            send(proto.Kind.TASK_ERROR, f"{exc!r}")
            return True
        if stall:
            # Late-answer chaos: the lease expires while we sleep, then
            # the (correct) result still arrives as a duplicate.
            time.sleep(stall)
        send(proto.Kind.RESULT, result)
        return True

    def _on_cache_get(self, send, fingerprint: object) -> None:
        text = (
            self._cache.load(str(fingerprint)) if self._cache is not None else None
        )
        if text is None:
            send(proto.Kind.CACHE_MISS, fingerprint)
        else:
            send(proto.Kind.CACHE_VALUE, (fingerprint, text))

    def _on_cache_put(self, send, payload: object) -> None:
        fingerprint, text = payload  # type: ignore[misc]
        if self._cache is not None:
            self._cache.save(str(fingerprint), str(text))
        send(proto.Kind.CACHE_OK, fingerprint)


def serve_worker(
    address: str,
    *,
    cache_dir: str | None = None,
    announce=print,
    **chaos: object,
) -> int:
    """Run one worker until SIGINT/SIGTERM; the CLI entry point.

    Announces ``WORKER_LISTENING <host> <port>`` once the socket is
    bound (port 0 binds an ephemeral port, so callers read the real one
    from this line).
    """
    host, port = proto.parse_address(address)
    server = WorkerServer(host, port, cache_dir=cache_dir, **chaos)  # type: ignore[arg-type]
    if announce is not None:
        announce(f"WORKER_LISTENING {server.host} {server.port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="Serve grid cells (and optionally cache entries) to "
        "remote experiment engines.",
    )
    parser.add_argument("address", help="[HOST:]PORT to listen on (port 0: ephemeral)")
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="also serve CACHE_GET/CACHE_PUT against this directory "
        "(the shared fleet cache)",
    )
    parser.add_argument("--chaos-exit-after", type=int, default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--chaos-drop-after", type=int, default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--chaos-stall-first", type=float, default=0.0,
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    return serve_worker(
        args.address,
        cache_dir=args.cache_dir,
        chaos_exit_after=args.chaos_exit_after,
        chaos_drop_after=args.chaos_drop_after,
        chaos_stall_first=args.chaos_stall_first,
    )


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""A deterministic, fault-injecting, in-memory S3 stub for chaos suites.

:class:`S3StubServer` implements exactly the object-store subset
:class:`~repro.experiments.backends.objectstore.ObjectStoreCacheStore`
speaks — path-style PUT / GET / HEAD on objects and ListObjectsV2 on
the bucket — over a real HTTP socket (``ThreadingHTTPServer``), with
objects held in a process-local dict.  Tests and the
``objectstore_put_get_per_entry`` bench use it as a stand-in for MinIO
/ S3; nothing about it persists.

The point of the stub is the **chaos**: a :class:`ChaosSpec` injects
the failure modes a real object store exhibits, deterministically.
Either a ``script`` — a tuple of fault names applied cyclically to
matching requests in arrival order — or seeded per-request probability
draws (``rng = random.Random(seed)``), so a failing chaos run replays
bit-identically from its seed.  Faults:

* ``"ok"`` — serve normally (the explicit no-op slot in scripts);
* ``"503"`` — reply ``503 Slow Down`` (an S3 throttle burst);
* ``"torn"`` — declare the full ``Content-Length`` but send only half
  the body, then sever the connection (a torn read: the client's
  ``http.client`` raises ``IncompleteRead``);
* ``"corrupt"`` — deterministically flip one bit mid-body *in the
  response only* (stored bytes stay intact) without touching the
  checksum metadata, so the client's integrity verification must catch
  it;
* ``"stall"`` — sleep ``stall_seconds`` before answering (drive client
  timeouts by setting it past the store's per-attempt timeout);
* ``"down"`` — sever the connection before writing any response (the
  endpoint flapping away mid-request).

Requests are counted per verb and per served fault
(:attr:`S3StubServer.request_counts`, :attr:`S3StubServer.fault_counts`)
so breaker tests can assert load was actually shed — an open breaker
means the request count *stops rising*, which no amount of
client-side mocking can prove.

Test seams: :meth:`S3StubServer.plant` stores an object with
*consistent* checksum metadata over arbitrary bytes (for semantic-
poison tests: transport-intact, version-skewed or unparseable entries
that must be rejected and quarantined by ``ResultCache``), and
:meth:`S3StubServer.corrupt_stored` flips a stored byte *without*
updating the metadata (persistent bit-rot the integrity layer must
quarantine).
"""

from __future__ import annotations

import random
import threading
import time
import urllib.parse
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from xml.sax.saxutils import escape

__all__ = ["ChaosSpec", "S3StubServer"]

FAULTS = ("ok", "503", "torn", "corrupt", "stall", "down")


@dataclass
class ChaosSpec:
    """Deterministic fault plan for an :class:`S3StubServer`.

    ``script`` wins when non-empty: fault ``script[i % len(script)]`` is
    applied to the ``i``-th matching request (arrival order).  Otherwise
    each matching request draws independent faults from the seeded rng
    at the given rates (checked in the order torn, corrupt, 503, stall,
    down).  ``apply_to`` names the verbs chaos touches — ``"get"``,
    ``"put"``, ``"head"``, ``"list"`` — so a suite can, say, tear only
    reads while writes stay clean.
    """

    seed: int = 0
    script: tuple[str, ...] = ()
    torn_rate: float = 0.0
    corrupt_rate: float = 0.0
    error_rate: float = 0.0
    stall_rate: float = 0.0
    down_rate: float = 0.0
    stall_seconds: float = 1.0
    apply_to: tuple[str, ...] = ("get", "put")

    def __post_init__(self) -> None:
        for fault in self.script:
            if fault not in FAULTS:
                raise ValueError(f"unknown fault {fault!r}; pick from {FAULTS}")
        for verb in self.apply_to:
            if verb not in ("get", "put", "head", "list"):
                raise ValueError(f"unknown verb {verb!r} in apply_to")


class _StubState:
    """Shared mutable state behind one lock (the handler is threaded)."""

    def __init__(self, chaos: ChaosSpec | None) -> None:
        self.lock = threading.Lock()
        self.objects: dict[tuple[str, str], tuple[bytes, dict[str, str]]] = {}
        self.chaos = chaos
        self.rng = random.Random(chaos.seed if chaos is not None else 0)
        self.script_index = 0
        self.request_counts: dict[str, int] = {}
        self.fault_counts: dict[str, int] = {}

    def verdict(self, verb: str) -> str:
        """The fault to apply to this request (counted), ``"ok"`` mostly."""
        with self.lock:
            self.request_counts[verb] = self.request_counts.get(verb, 0) + 1
            chaos = self.chaos
            if chaos is None or verb not in chaos.apply_to:
                fault = "ok"
            elif chaos.script:
                fault = chaos.script[self.script_index % len(chaos.script)]
                self.script_index += 1
            else:
                fault = "ok"
                for name, rate in (
                    ("torn", chaos.torn_rate),
                    ("corrupt", chaos.corrupt_rate),
                    ("503", chaos.error_rate),
                    ("stall", chaos.stall_rate),
                    ("down", chaos.down_rate),
                ):
                    if rate > 0 and self.rng.random() < rate:
                        fault = name
                        break
            self.fault_counts[fault] = self.fault_counts.get(fault, 0) + 1
            return fault


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    # Headers and body go out as separate writes; without this, Nagle +
    # delayed ACK adds ~40 ms to every GET on loopback.
    disable_nagle_algorithm = True
    state: _StubState  # bound per-server via a subclass attribute

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # chaos suites drive thousands of requests; stay silent

    def _split(self) -> tuple[str, str, dict[str, list[str]]]:
        parsed = urllib.parse.urlsplit(self.path)
        path = urllib.parse.unquote(parsed.path).lstrip("/")
        bucket, _, key = path.partition("/")
        return bucket, key, urllib.parse.parse_qs(parsed.query)

    def _reply(
        self,
        status: int,
        body: bytes = b"",
        headers: dict[str, str] | None = None,
        *,
        head_only: bool = False,
    ) -> None:
        self.send_response(status)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if body and not head_only:
            self.wfile.write(body)

    def _sever(self) -> None:
        """Drop the connection on the floor, mid-protocol."""
        self.close_connection = True
        try:
            self.connection.shutdown(1)  # SHUT_WR: client sees EOF
        except OSError:  # pragma: no cover - already gone
            pass

    # -- fault application -------------------------------------------------

    def _serve_with_chaos(
        self,
        verb: str,
        status: int,
        body: bytes,
        headers: dict[str, str],
        *,
        head_only: bool = False,
    ) -> None:
        fault = self.state.verdict(verb)
        chaos = self.state.chaos
        if fault == "stall" and chaos is not None:
            time.sleep(chaos.stall_seconds)
            fault = "ok"
        if fault == "down":
            self._sever()
            return
        if fault == "503":
            self._reply(503, b"<Error><Code>SlowDown</Code></Error>")
            return
        if fault == "corrupt" and body:
            flip = len(body) // 2
            body = body[:flip] + bytes([body[flip] ^ 0x01]) + body[flip + 1 :]
            fault = "ok"
        if fault == "torn" and body and not head_only:
            # Declare everything, deliver half, sever: a torn read.
            self.send_response(status)
            for name, value in headers.items():
                self.send_header(name, value)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body[: max(1, len(body) // 2)])
            self.wfile.flush()
            self._sever()
            return
        self._reply(status, body, headers, head_only=head_only)

    # -- verbs -------------------------------------------------------------

    def do_PUT(self) -> None:  # noqa: N802 - http.server API
        bucket, key, _ = self._split()
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length)
        if not bucket or not key:
            self._reply(400, b"<Error><Code>InvalidRequest</Code></Error>")
            return
        metadata = {
            name.lower(): value
            for name, value in self.headers.items()
            if name.lower().startswith("x-amz-meta-")
        }
        fault = self.state.verdict("put")
        chaos = self.state.chaos
        if fault == "stall" and chaos is not None:
            time.sleep(chaos.stall_seconds)
            fault = "ok"
        if fault == "down":
            self._sever()
            return
        if fault == "503":
            self._reply(503, b"<Error><Code>SlowDown</Code></Error>")
            return
        # "torn"/"corrupt" make no sense for a fully-received PUT: store
        # normally (the request body was already read above).
        with self.state.lock:
            self.state.objects[(bucket, key)] = (body, metadata)
        self._reply(200, headers={"ETag": '"stub"'})

    def _lookup(self, bucket: str, key: str):
        with self.state.lock:
            return self.state.objects.get((bucket, key))

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        bucket, key, query = self._split()
        if not key and "list-type" in query:
            self._do_list(bucket, query)
            return
        found = self._lookup(bucket, key)
        if found is None:
            self.state.verdict("get")  # count it; misses are never chaosed
            self._reply(404, b"<Error><Code>NoSuchKey</Code></Error>")
            return
        body, metadata = found
        headers = dict(metadata)
        headers["Content-Type"] = "application/json"
        self._serve_with_chaos("get", 200, body, headers)

    def do_HEAD(self) -> None:  # noqa: N802 - http.server API
        bucket, key, _ = self._split()
        found = self._lookup(bucket, key)
        if found is None:
            self.state.verdict("head")
            self._reply(404, head_only=True)
            return
        body, metadata = found
        self._serve_with_chaos("head", 200, body, dict(metadata), head_only=True)

    def _do_list(self, bucket: str, query: dict[str, list[str]]) -> None:
        prefix = (query.get("prefix") or [""])[0]
        token = (query.get("continuation-token") or [None])[0]
        max_keys = int((query.get("max-keys") or ["1000"])[0])
        with self.state.lock:
            keys = sorted(
                key
                for (bkt, key) in self.state.objects
                if bkt == bucket and key.startswith(prefix)
            )
        if token is not None:
            keys = [key for key in keys if key > token]
        page, rest = keys[:max_keys], keys[max_keys:]
        parts = [
            '<?xml version="1.0" encoding="UTF-8"?>',
            '<ListBucketResult xmlns="http://s3.amazonaws.com/doc/2006-03-01/">',
            f"<Name>{escape(bucket)}</Name>",
            f"<KeyCount>{len(page)}</KeyCount>",
        ]
        parts.extend(f"<Contents><Key>{escape(key)}</Key></Contents>" for key in page)
        if rest:
            parts.append("<IsTruncated>true</IsTruncated>")
            parts.append(
                f"<NextContinuationToken>{escape(page[-1])}"
                f"</NextContinuationToken>"
            )
        else:
            parts.append("<IsTruncated>false</IsTruncated>")
        parts.append("</ListBucketResult>")
        body = "".join(parts).encode("utf-8")
        self._serve_with_chaos(
            "list", 200, body, {"Content-Type": "application/xml"}
        )


class S3StubServer:
    """In-memory S3 endpoint on a loopback port; a context manager.

    ``chaos`` is the optional :class:`ChaosSpec`; with ``None`` the stub
    is a well-behaved store.  ``endpoint`` / :meth:`url` give the two
    addressing forms the object store accepts.
    """

    def __init__(self, *, chaos: ChaosSpec | None = None) -> None:
        self._state = _StubState(chaos)

        state = self._state

        class BoundHandler(_Handler):
            pass

        BoundHandler.state = state
        self._server = ThreadingHTTPServer(("127.0.0.1", 0), BoundHandler)
        self._server.daemon_threads = True
        self._thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "S3StubServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="s3stub", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "S3StubServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- addressing --------------------------------------------------------

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def endpoint(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def url(self, bucket: str, prefix: str = "") -> str:
        """The ``s3://HOST:PORT/bucket[/prefix]`` spec for --remote-cache."""
        spec = f"s3://127.0.0.1:{self.port}/{bucket}"
        return f"{spec}/{prefix.strip('/')}" if prefix.strip("/") else spec

    # -- observability and test seams --------------------------------------

    @property
    def chaos(self) -> ChaosSpec | None:
        return self._state.chaos

    @chaos.setter
    def chaos(self, spec: ChaosSpec | None) -> None:
        with self._state.lock:
            self._state.chaos = spec
            self._state.rng = random.Random(spec.seed if spec is not None else 0)
            self._state.script_index = 0

    @property
    def request_counts(self) -> dict[str, int]:
        with self._state.lock:
            return dict(self._state.request_counts)

    @property
    def fault_counts(self) -> dict[str, int]:
        with self._state.lock:
            return dict(self._state.fault_counts)

    @property
    def total_requests(self) -> int:
        with self._state.lock:
            return sum(self._state.request_counts.values())

    def object(self, bucket: str, key: str) -> tuple[bytes, dict[str, str]] | None:
        with self._state.lock:
            return self._state.objects.get((bucket, key))

    def keys(self, bucket: str) -> list[str]:
        with self._state.lock:
            return sorted(k for (b, k) in self._state.objects if b == bucket)

    def plant(
        self,
        bucket: str,
        key: str,
        body: bytes,
        *,
        metadata: dict[str, str] | None = None,
    ) -> None:
        """Store an object directly, with *consistent* checksum metadata.

        The planted entry passes transport integrity by construction —
        exactly what semantic-poison tests need (stale version, torn
        JSON) to prove ``ResultCache`` still rejects and quarantines it.
        """
        import hashlib

        meta = {"x-amz-meta-repro-sha256": hashlib.sha256(body).hexdigest()}
        meta.update(metadata or {})
        with self._state.lock:
            self._state.objects[(bucket, key)] = (body, meta)

    def corrupt_stored(self, bucket: str, key: str) -> None:
        """Flip one stored byte *without* updating the checksum metadata:
        persistent bit-rot the client's integrity layer must catch."""
        with self._state.lock:
            body, metadata = self._state.objects[(bucket, key)]
            flip = len(body) // 2
            body = body[:flip] + bytes([body[flip] ^ 0x01]) + body[flip + 1 :]
            self._state.objects[(bucket, key)] = (body, metadata)

"""Pluggable byte-level stores behind :class:`~repro.experiments.engine.ResultCache`.

A :class:`CacheStore` moves *raw JSON text* keyed by cell fingerprint;
all semantics — version eviction, ``.corrupt`` quarantine, payload
validation — stay in :class:`~repro.experiments.engine.ResultCache`,
which composes one mandatory :class:`LocalDirStore` with an optional
remote store in read-through/write-back fashion.  Keeping validation
out of the stores is the poisoning defense: a remote entry is parsed
and classified *before* it is trusted, so a corrupt or stale payload
served by a fleet cache can never enter a ``GridResult`` (and is never
written into the local store either).
"""

from __future__ import annotations

import os
import secrets
import socket
import time
from abc import ABC, abstractmethod
from pathlib import Path

__all__ = ["CacheStore", "LocalDirStore", "RemoteCacheStore"]


class CacheStore(ABC):
    """Raw fingerprint -> JSON-text transport; no validation here."""

    @abstractmethod
    def load(self, fingerprint: str) -> str | None:
        """The stored text, or ``None`` on miss or store failure."""

    @abstractmethod
    def save(self, fingerprint: str, text: str) -> None:
        """Store ``text``; best effort (failures must not raise)."""


class LocalDirStore(CacheStore):
    """One ``<fp[:2]>/<fp>.json`` file per entry under a root directory.

    Writes are crash-safe *and* race-safe: the payload goes to a
    temporary file whose name carries the pid **and** a random token, so
    two engines (or two threads) filling the same cache directory can
    never collide on the temp name, and the ``os.replace`` finalization
    means the loser of the rename race simply overwrites the winner's
    identical bytes — first-writer-wins, same digest, no torn entry.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def load(self, fingerprint: str) -> str | None:
        try:
            return self.path(fingerprint).read_text(encoding="utf-8")
        except OSError:
            return None

    def save(self, fingerprint: str, text: str) -> None:
        path = self.path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / (
            f".{fingerprint}.{os.getpid()}.{secrets.token_hex(4)}.tmp"
        )
        try:
            tmp.write_text(text, encoding="utf-8")
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)


class RemoteCacheStore(CacheStore):
    """Client half of the CACHE_GET/CACHE_PUT protocol verbs.

    Points at any :class:`~repro.experiments.backends.worker.WorkerServer`
    started with a cache directory (a dedicated cache server is just a
    worker nobody sends TASK frames to).  The connection is dialed
    lazily and re-dialed after failures; while the server is unreachable
    the store answers misses and drops writes for ``cooldown`` seconds
    instead of stalling every cell on a dead socket — an unreachable
    fleet cache degrades a run to local-only caching, never blocks it.
    """

    def __init__(
        self,
        address: str | tuple[str, int],
        *,
        timeout: float = 5.0,
        cooldown: float = 30.0,
    ) -> None:
        from repro.experiments.backends.protocol import parse_address

        self.address = parse_address(address)
        self.timeout = timeout
        self.cooldown = cooldown
        self._sock: socket.socket | None = None
        self._retry_at = 0.0
        #: Round trips that failed (connection or protocol); observable
        #: so tests and audits can tell "miss" from "unreachable".
        self.errors = 0

    @property
    def connected(self) -> bool:
        """True while a handshaken connection is open (a ``None`` answer
        with ``connected`` still true is a genuine miss, not an outage)."""
        return self._sock is not None

    # -- connection management --------------------------------------------

    def _connect(self) -> socket.socket | None:
        from repro.experiments.backends import protocol as proto

        if self._sock is not None:
            return self._sock
        if time.monotonic() < self._retry_at:
            return None
        try:
            sock = socket.create_connection(self.address, timeout=self.timeout)
            sock.settimeout(self.timeout)
            proto.send_frame(
                sock,
                proto.Kind.HELLO,
                {"version": proto.PROTOCOL_VERSION, "heartbeat_interval": None},
            )
            frame = self._recv_meaningful(sock)
            if frame.kind is not proto.Kind.WELCOME:
                raise proto.ProtocolError(
                    f"expected WELCOME, got {frame.kind.name}"
                )
        except (OSError, proto.ProtocolError):
            self._drop()
            return None
        self._sock = sock
        return sock

    @staticmethod
    def _recv_meaningful(sock: socket.socket):
        """Next non-PING frame (the server heartbeats on every connection)."""
        from repro.experiments.backends import protocol as proto

        while True:
            frame = proto.recv_frame(sock)
            if frame.kind is not proto.Kind.PING:
                return frame

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - already dead
                pass
            self._sock = None
        self.errors += 1
        self._retry_at = time.monotonic() + self.cooldown

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - already dead
                pass
            self._sock = None

    # -- the store interface ----------------------------------------------

    def load(self, fingerprint: str) -> str | None:
        from repro.experiments.backends import protocol as proto

        sock = self._connect()
        if sock is None:
            return None
        try:
            proto.send_frame(sock, proto.Kind.CACHE_GET, fingerprint)
            frame = self._recv_meaningful(sock)
        except (OSError, proto.ProtocolError):
            self._drop()
            return None
        if frame.kind is proto.Kind.CACHE_VALUE:
            fp, text = frame.payload
            if fp == fingerprint and isinstance(text, str):
                return text
            self._drop()  # answered for the wrong key: distrust the peer
            return None
        if frame.kind is proto.Kind.CACHE_MISS:
            return None
        self._drop()
        return None

    def save(self, fingerprint: str, text: str) -> None:
        from repro.experiments.backends import protocol as proto

        sock = self._connect()
        if sock is None:
            return
        try:
            proto.send_frame(sock, proto.Kind.CACHE_PUT, (fingerprint, text))
            frame = self._recv_meaningful(sock)
            if frame.kind is not proto.Kind.CACHE_OK:
                self._drop()
        except (OSError, proto.ProtocolError):
            self._drop()

"""Pluggable byte-level stores behind :class:`~repro.experiments.engine.ResultCache`.

A :class:`CacheStore` moves *raw JSON text* keyed by cell fingerprint;
all semantics — version eviction, ``.corrupt`` quarantine, payload
validation — stay in :class:`~repro.experiments.engine.ResultCache`,
which composes one mandatory :class:`LocalDirStore` with an optional
remote store in read-through/write-back fashion.  Keeping validation
out of the stores is the poisoning defense: a remote entry is parsed
and classified *before* it is trusted, so a corrupt or stale payload
served by a fleet cache can never enter a ``GridResult`` (and is never
written into the local store either).

Remote stores share one resilience implementation
(:mod:`repro.resilience`): a :class:`~repro.resilience.RetryPolicy`
bounds attempts and carries the per-attempt I/O timeout, and a
:class:`~repro.resilience.CircuitBreaker` turns an unreachable endpoint
into a cooldown-long local-only degradation instead of one stalled dial
per cell.  The cooldown is configurable through the
``REPRO_CACHE_COOLDOWN`` environment variable, with an explicit
``cooldown=`` kwarg winning over the environment; the breaker jitters
every cooldown draw so a fleet of drivers does not re-probe a
recovering cache server in lockstep.

:func:`store_from_spec` maps the user-facing ``--remote-cache`` string
onto a store: ``HOST:PORT`` dials a
:class:`~repro.experiments.backends.worker.WorkerServer` fleet cache
over the frame protocol, while ``s3://…`` builds an
:class:`~repro.experiments.backends.objectstore.ObjectStoreCacheStore`
over any S3-compatible object store.
"""

from __future__ import annotations

import os
import random
import secrets
import socket
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.resilience import (
    CallOutcome,
    CircuitBreaker,
    ResilienceError,
    RetryPolicy,
    with_resilience,
)

__all__ = [
    "CacheStore",
    "CacheStoreHealth",
    "LocalDirStore",
    "RemoteCacheStore",
    "resolve_cache_cooldown",
    "store_from_spec",
]

#: Fallback unreachable-remote cooldown when neither the ``cooldown=``
#: kwarg nor ``REPRO_CACHE_COOLDOWN`` says otherwise.
DEFAULT_CACHE_COOLDOWN = 30.0


def resolve_cache_cooldown(cooldown: float | None) -> float:
    """The remote-store breaker cooldown, in precedence order.

    An explicit ``cooldown`` kwarg wins; else the ``REPRO_CACHE_COOLDOWN``
    environment variable (seconds); else :data:`DEFAULT_CACHE_COOLDOWN`.
    """
    if cooldown is not None:
        if cooldown < 0:
            raise ValueError(f"cooldown must be non-negative, got {cooldown}")
        return cooldown
    raw = os.environ.get("REPRO_CACHE_COOLDOWN", "").strip()
    if raw:
        try:
            value = float(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_CACHE_COOLDOWN must be a number of seconds, got {raw!r}"
            ) from None
        if value < 0:
            raise ValueError(
                f"REPRO_CACHE_COOLDOWN must be non-negative, got {raw!r}"
            )
        return value
    return DEFAULT_CACHE_COOLDOWN


@dataclass(frozen=True, slots=True)
class CacheStoreHealth:
    """Point-in-time health of a remote cache store (stats/journals).

    ``breaker_state`` is ``closed``/``open``/``half-open``;
    ``breaker_opened`` counts load-shedding periods so far; ``errors``
    counts failed round trips and ``quarantined`` the poisoned entries
    this store moved aside.
    """

    kind: str
    endpoint: str
    breaker_state: str
    breaker_opened: int
    errors: int
    quarantined: int

    def describe(self) -> str:
        bits = [f"{self.kind} {self.endpoint}", f"breaker {self.breaker_state}"]
        if self.breaker_opened:
            bits.append(f"opened {self.breaker_opened}x")
        if self.errors:
            bits.append(f"{self.errors} error(s)")
        if self.quarantined:
            bits.append(f"{self.quarantined} quarantined")
        return ", ".join(bits)


class CacheStore(ABC):
    """Raw fingerprint -> JSON-text transport; no validation here."""

    @abstractmethod
    def load(self, fingerprint: str) -> str | None:
        """The stored text, or ``None`` on miss or store failure."""

    @abstractmethod
    def save(self, fingerprint: str, text: str) -> None:
        """Store ``text``; best effort (failures must not raise)."""

    def quarantine(self, fingerprint: str, text: str, reason: str) -> None:
        """Move a poisoned entry aside on the store's side; best effort.

        Called by :class:`~repro.experiments.engine.ResultCache` when a
        loaded entry fails validation.  The default does nothing (a
        fleet worker owns its own directory); the object store copies
        the entry under its ``quarantine/`` prefix so operators can see
        the corruption instead of every driver silently re-rejecting it.
        """

    def health(self) -> CacheStoreHealth | None:
        """Resilience health, or ``None`` for stores that cannot fail."""
        return None

    def close(self) -> None:
        """Release connections; best effort, idempotent."""


class LocalDirStore(CacheStore):
    """One ``<fp[:2]>/<fp>.json`` file per entry under a root directory.

    Writes are crash-safe *and* race-safe: the payload goes to a
    temporary file whose name carries the pid **and** a random token, so
    two engines (or two threads) filling the same cache directory can
    never collide on the temp name, and the ``os.replace`` finalization
    means the loser of the rename race simply overwrites the winner's
    identical bytes — first-writer-wins, same digest, no torn entry.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def load(self, fingerprint: str) -> str | None:
        try:
            return self.path(fingerprint).read_text(encoding="utf-8")
        except OSError:
            return None

    def save(self, fingerprint: str, text: str) -> None:
        path = self.path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / (
            f".{fingerprint}.{os.getpid()}.{secrets.token_hex(4)}.tmp"
        )
        try:
            tmp.write_text(text, encoding="utf-8")
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)


class RemoteCacheStore(CacheStore):
    """Client half of the CACHE_GET/CACHE_PUT protocol verbs.

    Points at any :class:`~repro.experiments.backends.worker.WorkerServer`
    started with a cache directory (a dedicated cache server is just a
    worker nobody sends TASK frames to).  The connection is dialed
    lazily; every round trip runs through
    :func:`~repro.resilience.with_resilience` under a single-attempt
    :class:`~repro.resilience.RetryPolicy` (a cache miss must stay
    cheap — retrying inline would stall the cell it is serving) and a
    trip-on-first-failure :class:`~repro.resilience.CircuitBreaker`:
    while the server is unreachable the breaker sheds every round trip
    for one jittered ``cooldown``, so an unreachable fleet cache
    degrades a run to local-only caching, never blocks it.
    """

    def __init__(
        self,
        address: str | tuple[str, int],
        *,
        timeout: float = 5.0,
        cooldown: float | None = None,
        rng: random.Random | None = None,
        on_outcome: "Callable[[CallOutcome], None] | None" = None,
    ) -> None:
        from repro.experiments.backends.protocol import parse_address

        self.address = parse_address(address)
        self.timeout = timeout
        self.cooldown = resolve_cache_cooldown(cooldown)
        self.policy = RetryPolicy(max_attempts=1, timeout=timeout)
        self.breaker = CircuitBreaker(
            failure_threshold=1,
            cooldown=self.cooldown,
            rng=rng,
            name=f"remote-cache {self.address[0]}:{self.address[1]}",
        )
        self.on_outcome = on_outcome
        self._sock: socket.socket | None = None
        #: Round trips that failed (connection or protocol); observable
        #: so tests and audits can tell "miss" from "unreachable".
        self.errors = 0

    @property
    def connected(self) -> bool:
        """True while a handshaken connection is open (a ``None`` answer
        with ``connected`` still true is a genuine miss, not an outage)."""
        return self._sock is not None

    def health(self) -> CacheStoreHealth:
        return CacheStoreHealth(
            kind="fleet",
            endpoint=f"{self.address[0]}:{self.address[1]}",
            breaker_state=self.breaker.state,
            breaker_opened=self.breaker.times_opened,
            errors=self.errors,
            quarantined=0,
        )

    # -- connection management --------------------------------------------

    def _connect(self) -> socket.socket:
        """Dial and handshake (reusing an open socket); raise on failure."""
        from repro.experiments.backends import protocol as proto

        if self._sock is not None:
            return self._sock
        sock = socket.create_connection(self.address, timeout=self.timeout)
        try:
            sock.settimeout(self.timeout)
            proto.send_frame(
                sock,
                proto.Kind.HELLO,
                {"version": proto.PROTOCOL_VERSION, "heartbeat_interval": None},
            )
            frame = self._recv_meaningful(sock)
            if frame.kind is not proto.Kind.WELCOME:
                raise proto.ProtocolError(
                    f"expected WELCOME, got {frame.kind.name}"
                )
        except BaseException:
            try:
                sock.close()
            except OSError:  # pragma: no cover - already dead
                pass
            raise
        self._sock = sock
        return sock

    @staticmethod
    def _recv_meaningful(sock: socket.socket):
        """Next non-PING frame (the server heartbeats on every connection)."""
        from repro.experiments.backends import protocol as proto

        while True:
            frame = proto.recv_frame(sock)
            if frame.kind is not proto.Kind.PING:
                return frame

    def _drop(self) -> None:
        """Close the socket and count the failed round trip.

        The *cooldown* no longer lives here: the caller's exception
        propagates into :func:`with_resilience`, which feeds the breaker.
        """
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - already dead
                pass
            self._sock = None
        self.errors += 1

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - already dead
                pass
            self._sock = None

    # -- the store interface ----------------------------------------------

    def _round_trip_load(self, fingerprint: str) -> str | None:
        from repro.experiments.backends import protocol as proto

        try:
            sock = self._connect()
            proto.send_frame(sock, proto.Kind.CACHE_GET, fingerprint)
            frame = self._recv_meaningful(sock)
            if frame.kind is proto.Kind.CACHE_MISS:
                return None
            if frame.kind is proto.Kind.CACHE_VALUE:
                fp, text = frame.payload
                if fp == fingerprint and isinstance(text, str):
                    return text
                raise proto.ProtocolError(
                    "peer answered for the wrong key: distrusted"
                )
            raise proto.ProtocolError(f"unexpected {frame.kind.name} frame")
        except (OSError, proto.ProtocolError):
            self._drop()
            raise

    def _round_trip_save(self, fingerprint: str, text: str) -> None:
        from repro.experiments.backends import protocol as proto

        try:
            sock = self._connect()
            proto.send_frame(sock, proto.Kind.CACHE_PUT, (fingerprint, text))
            frame = self._recv_meaningful(sock)
            if frame.kind is not proto.Kind.CACHE_OK:
                raise proto.ProtocolError(f"expected CACHE_OK, got {frame.kind.name}")
        except (OSError, proto.ProtocolError):
            self._drop()
            raise

    def load(self, fingerprint: str) -> str | None:
        from repro.experiments.backends.protocol import ProtocolError

        try:
            return with_resilience(
                "cache-get",
                lambda: self._round_trip_load(fingerprint),
                policy=self.policy,
                breaker=self.breaker,
                retry_on=(OSError, ProtocolError),
                on_outcome=self.on_outcome,
            )
        except (ResilienceError, OSError, ProtocolError):
            return None

    def save(self, fingerprint: str, text: str) -> None:
        from repro.experiments.backends.protocol import ProtocolError

        try:
            with_resilience(
                "cache-put",
                lambda: self._round_trip_save(fingerprint, text),
                policy=self.policy,
                breaker=self.breaker,
                retry_on=(OSError, ProtocolError),
                on_outcome=self.on_outcome,
            )
        except (ResilienceError, OSError, ProtocolError):
            pass


def store_from_spec(
    spec: str,
    *,
    timeout: float = 5.0,
    cooldown: float | None = None,
) -> CacheStore:
    """Build the remote cache store a ``--remote-cache`` spec names.

    ``s3://…`` builds an :class:`~repro.experiments.backends.objectstore.
    ObjectStoreCacheStore` (see its ``from_url`` for the accepted
    shapes); anything else is a ``HOST:PORT`` fleet worker address for
    :class:`RemoteCacheStore`.  ``timeout`` is the per-attempt I/O
    budget and ``cooldown`` the breaker cooldown (``None``: the
    ``REPRO_CACHE_COOLDOWN``/default resolution of
    :func:`resolve_cache_cooldown`).
    """
    if spec.startswith("s3://"):
        from repro.experiments.backends.objectstore import ObjectStoreCacheStore

        return ObjectStoreCacheStore.from_url(
            spec, timeout=timeout, cooldown=cooldown
        )
    return RemoteCacheStore(spec, timeout=timeout, cooldown=cooldown)

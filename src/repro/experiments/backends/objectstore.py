"""Durable cache entries in any S3-compatible object store.

:class:`ObjectStoreCacheStore` is a :class:`~repro.experiments.backends.
cache.CacheStore` that keeps cell entries as objects in a bucket —
a fleet cache that outlives every worker process and needs no always-on
cache server of ours.  It speaks a deliberately minimal subset of the
S3 HTTP API from the standard library alone (``http.client``; no SDK):

* ``PUT /bucket/key`` with the entry bytes and integrity metadata,
* ``GET /bucket/key`` / ``HEAD /bucket/key``,
* ``GET /bucket?list-type=2&prefix=…`` (ListObjectsV2, with
  continuation tokens),

always **path-style** (``http://endpoint/bucket/key``), so MinIO,
localstack, Ceph RGW and the chaos stub in
:mod:`~repro.experiments.backends.s3stub` all work without DNS games.
Requests are signed with AWS Signature V4 when credentials are
configured (``access_key``/``secret_key`` kwargs win over the
``REPRO_S3_ACCESS_KEY``/``REPRO_S3_SECRET_KEY`` environment, which
falls back to the conventional ``AWS_ACCESS_KEY_ID``/
``AWS_SECRET_ACCESS_KEY``); with no credentials requests go out
unsigned, which is what the stub and an anonymous-write dev bucket
expect.

Layout mirrors :class:`~repro.experiments.backends.cache.LocalDirStore`
exactly — ``<prefix>/<fp[:2]>/<fp>.json``, object bytes identical to
the local file's UTF-8 bytes — so an operator can ``mc mirror`` a
bucket into a local cache directory (or back) and every entry stays
bit-valid.  :func:`object_key` / :func:`fingerprint_from_key` are the
two sides of that mapping and are property-tested for round-trip.

Validate-before-accept, in two layers:

* **transport integrity** (this module): every ``PUT`` stamps
  ``x-amz-meta-repro-sha256`` (hex digest of the body) and
  ``x-amz-meta-repro-fingerprint``; every ``GET`` re-verifies body
  length against ``Content-Length``, the digest, and the fingerprint
  echo.  A torn or bit-flipped object never leaves :meth:`load` — it is
  copied under the ``quarantine/`` prefix (original key preserved
  beneath it), recorded in :attr:`ObjectStoreCacheStore.quarantined`,
  and reported as a miss so the engine recomputes the cell.
* **semantic validation** (:class:`~repro.experiments.engine.
  ResultCache`): entries that transport intact but parse wrong or
  carry a stale ``CACHE_VERSION`` are rejected there, and the cache
  calls back into :meth:`quarantine` so the poison is moved aside on
  the remote too instead of re-rejected by every driver forever.

Fault handling rides the shared :mod:`repro.resilience` layer: a
:class:`~repro.resilience.RetryPolicy` retries transient faults
(connection errors, torn HTTP frames, 5xx) with jittered exponential
backoff under a per-attempt socket timeout, and a
:class:`~repro.resilience.CircuitBreaker` trips after consecutive
round-trip failures so an unreachable endpoint degrades the run to
local-only caching for one jittered cooldown
(``REPRO_CACHE_COOLDOWN``-configurable) instead of stalling every cell.
Client-side faults (403, NoSuchBucket) are *fatal to the attempt but
silent to the run*: they are not retried — misconfiguration does not
fix itself — and the store answers misses/dropped writes, because a
cache must never fail the computation it fronts.
"""

from __future__ import annotations

import datetime as _dt
import hashlib
import hmac
import http.client
import os
import random
import socket
import time
import urllib.parse
import xml.etree.ElementTree as ET
from typing import Callable

from repro.experiments.backends.cache import (
    CacheStore,
    CacheStoreHealth,
    resolve_cache_cooldown,
)
from repro.resilience import (
    BreakerOpen,
    CallOutcome,
    CircuitBreaker,
    ResilienceError,
    RetryPolicy,
    with_resilience,
)

__all__ = [
    "ObjectIntegrityError",
    "ObjectStoreCacheStore",
    "ObjectStoreError",
    "TransientStoreError",
    "fingerprint_from_key",
    "object_key",
    "parse_object_store_url",
]

#: Metadata header carrying the hex SHA-256 of the object body.
CHECKSUM_HEADER = "x-amz-meta-repro-sha256"
#: Metadata header echoing the fingerprint the object was stored under.
FINGERPRINT_HEADER = "x-amz-meta-repro-fingerprint"
#: Poisoned objects are *copied* under this prefix, original key kept.
QUARANTINE_PREFIX = "quarantine"


class ObjectStoreError(RuntimeError):
    """Fatal object-store fault (auth, missing bucket, bad request)."""


class TransientStoreError(OSError):
    """Retryable fault: 5xx, torn response, connection trouble.

    Subclasses :class:`OSError` so one ``retry_on`` tuple covers both
    socket-level errors and HTTP-level transient failures.
    """


class ObjectIntegrityError(ObjectStoreError):
    """The object arrived but its bytes are not trustworthy."""

    def __init__(self, key: str, reason: str, payload: bytes = b"") -> None:
        super().__init__(f"object {key!r} failed integrity check: {reason}")
        self.key = key
        self.reason = reason
        self.payload = payload


# -- key layout ----------------------------------------------------------------


def object_key(fingerprint: str, prefix: str = "") -> str:
    """The object key for a fingerprint: ``[prefix/]<fp[:2]>/<fp>.json``.

    Mirrors :meth:`~repro.experiments.backends.cache.LocalDirStore.path`
    so a bucket and a cache directory are mirror images of each other.
    """
    if not fingerprint or "/" in fingerprint:
        raise ValueError(f"invalid fingerprint: {fingerprint!r}")
    stem = f"{fingerprint[:2]}/{fingerprint}.json"
    return f"{prefix.strip('/')}/{stem}" if prefix.strip("/") else stem


def fingerprint_from_key(key: str, prefix: str = "") -> str | None:
    """Invert :func:`object_key`; ``None`` for keys not of that shape."""
    clean_prefix = prefix.strip("/")
    if clean_prefix:
        if not key.startswith(clean_prefix + "/"):
            return None
        key = key[len(clean_prefix) + 1 :]
    parts = key.split("/")
    if len(parts) != 2 or not parts[1].endswith(".json"):
        return None
    shard, name = parts
    fingerprint = name[: -len(".json")]
    if not fingerprint or fingerprint[:2] != shard:
        return None
    return fingerprint


# -- endpoint specs ------------------------------------------------------------


def parse_object_store_url(url: str) -> tuple[str, str, str]:
    """``(endpoint, bucket, prefix)`` from an ``s3://`` spec.

    Two shapes are accepted:

    * ``s3://HOST:PORT/BUCKET[/PREFIX…]`` — explicit endpoint (the
      ``:PORT`` is what marks the authority as an endpoint, path-style);
    * ``s3://BUCKET[/PREFIX…]`` — the endpoint comes from the
      ``REPRO_S3_ENDPOINT`` environment variable (``http[s]://host[:port]``).
    """
    parsed = urllib.parse.urlsplit(url)
    if parsed.scheme != "s3":
        raise ValueError(f"object store URL must start with s3://, got {url!r}")
    if not parsed.netloc:
        raise ValueError(f"object store URL has no authority: {url!r}")
    path = parsed.path.strip("/")
    if ":" in parsed.netloc:
        endpoint = f"http://{parsed.netloc}"
        if not path:
            raise ValueError(
                f"endpoint-style URL needs a bucket: s3://HOST:PORT/BUCKET, got {url!r}"
            )
        bucket, _, prefix = path.partition("/")
    else:
        endpoint = os.environ.get("REPRO_S3_ENDPOINT", "").strip()
        if not endpoint:
            raise ValueError(
                f"{url!r} names no endpoint; either use s3://HOST:PORT/BUCKET "
                f"or set REPRO_S3_ENDPOINT"
            )
        bucket, prefix = parsed.netloc, path
    return endpoint, bucket, prefix


def _resolve_credentials(
    access_key: str | None, secret_key: str | None
) -> tuple[str, str] | None:
    """kwargs win; then REPRO_S3_*; then the conventional AWS_* pair."""
    if access_key is not None and secret_key is not None:
        return access_key, secret_key
    for access_var, secret_var in (
        ("REPRO_S3_ACCESS_KEY", "REPRO_S3_SECRET_KEY"),
        ("AWS_ACCESS_KEY_ID", "AWS_SECRET_ACCESS_KEY"),
    ):
        env_access = os.environ.get(access_var, "")
        env_secret = os.environ.get(secret_var, "")
        if env_access and env_secret:
            return env_access, env_secret
    return None


# -- SigV4 ---------------------------------------------------------------------


def _sigv4_headers(
    method: str,
    host: str,
    canonical_uri: str,
    query: str,
    payload_sha256: str,
    credentials: tuple[str, str],
    region: str,
    now: _dt.datetime,
) -> dict[str, str]:
    """AWS Signature Version 4 headers for one request (stdlib only)."""
    access_key, secret_key = credentials
    amz_date = now.strftime("%Y%m%dT%H%M%SZ")
    datestamp = now.strftime("%Y%m%d")
    canonical_query = "&".join(sorted(query.split("&"))) if query else ""
    signed_headers = "host;x-amz-content-sha256;x-amz-date"
    canonical_headers = (
        f"host:{host}\n"
        f"x-amz-content-sha256:{payload_sha256}\n"
        f"x-amz-date:{amz_date}\n"
    )
    canonical_request = "\n".join(
        (method, canonical_uri, canonical_query, canonical_headers,
         signed_headers, payload_sha256)
    )
    scope = f"{datestamp}/{region}/s3/aws4_request"
    string_to_sign = "\n".join(
        (
            "AWS4-HMAC-SHA256",
            amz_date,
            scope,
            hashlib.sha256(canonical_request.encode("utf-8")).hexdigest(),
        )
    )

    def sign(key: bytes, msg: str) -> bytes:
        return hmac.new(key, msg.encode("utf-8"), hashlib.sha256).digest()

    k_date = sign(("AWS4" + secret_key).encode("utf-8"), datestamp)
    k_region = sign(k_date, region)
    k_service = sign(k_region, "s3")
    k_signing = sign(k_service, "aws4_request")
    signature = hmac.new(
        k_signing, string_to_sign.encode("utf-8"), hashlib.sha256
    ).hexdigest()
    return {
        "x-amz-date": amz_date,
        "x-amz-content-sha256": payload_sha256,
        "Authorization": (
            f"AWS4-HMAC-SHA256 Credential={access_key}/{scope}, "
            f"SignedHeaders={signed_headers}, Signature={signature}"
        ),
    }


# -- the store -----------------------------------------------------------------


class ObjectStoreCacheStore(CacheStore):
    """Cache entries as integrity-checked objects in an S3 bucket.

    Parameters
    ----------
    endpoint:
        ``http[s]://host[:port]`` of the object store (path-style
        addressing against it).
    bucket / prefix:
        Bucket name and optional key prefix the entries live under.
    access_key / secret_key:
        SigV4 credentials; both ``None`` falls back to the environment
        (see :func:`_resolve_credentials`), and no credentials anywhere
        sends unsigned requests.
    region:
        SigV4 signing region (default ``us-east-1`` — what MinIO and
        most self-hosted stores expect).
    timeout:
        Per-attempt socket timeout in seconds.
    max_attempts / backoff:
        Transient-fault retry budget and base backoff for the shared
        :class:`~repro.resilience.RetryPolicy`.
    cooldown:
        Breaker cooldown; ``None`` resolves ``REPRO_CACHE_COOLDOWN``
        then the 30 s default.
    failure_threshold:
        Consecutive failed round trips (after retries) that trip the
        breaker into local-only degradation.
    rng / on_outcome:
        Injectable randomness and the per-attempt
        :class:`~repro.resilience.CallOutcome` hook (chaos suites pin
        both).
    """

    def __init__(
        self,
        endpoint: str,
        bucket: str,
        *,
        prefix: str = "",
        access_key: str | None = None,
        secret_key: str | None = None,
        region: str = "us-east-1",
        timeout: float = 5.0,
        max_attempts: int = 3,
        backoff: float = 0.1,
        cooldown: float | None = None,
        failure_threshold: int = 3,
        rng: random.Random | None = None,
        on_outcome: "Callable[[CallOutcome], None] | None" = None,
    ) -> None:
        parsed = urllib.parse.urlsplit(endpoint)
        if parsed.scheme not in ("http", "https") or not parsed.netloc:
            raise ValueError(
                f"endpoint must be http[s]://host[:port], got {endpoint!r}"
            )
        if not bucket or "/" in bucket:
            raise ValueError(f"invalid bucket name: {bucket!r}")
        self.endpoint = endpoint.rstrip("/")
        self.scheme = parsed.scheme
        self.host = parsed.netloc
        self.bucket = bucket
        self.prefix = prefix.strip("/")
        self.region = region
        self.timeout = timeout
        self.credentials = _resolve_credentials(access_key, secret_key)
        self.cooldown = resolve_cache_cooldown(cooldown)
        self.policy = RetryPolicy(
            max_attempts=max_attempts, backoff=backoff, timeout=timeout
        )
        self._rng = rng if rng is not None else random.Random()
        self.breaker = CircuitBreaker(
            failure_threshold=failure_threshold,
            cooldown=self.cooldown,
            rng=self._rng,
            name=f"objectstore {self.host}/{bucket}",
        )
        self.on_outcome = on_outcome
        self._conn: http.client.HTTPConnection | None = None
        #: Failed round trips (after their whole retry budget).
        self.errors = 0
        #: Calls the open breaker refused without attempting.
        self.shed = 0
        #: Fingerprints this store quarantined, with reasons (order kept).
        self.quarantined: list[tuple[str, str]] = []
        self._last_ok = False

    @classmethod
    def from_url(cls, url: str, **kwargs) -> "ObjectStoreCacheStore":
        """Build from an ``s3://`` spec (see :func:`parse_object_store_url`)."""
        endpoint, bucket, prefix = parse_object_store_url(url)
        kwargs.setdefault("prefix", prefix)
        return cls(endpoint, bucket, **kwargs)

    # -- observability -----------------------------------------------------

    @property
    def connected(self) -> bool:
        """True while the last round trip succeeded — the same duck-typed
        signal :class:`~repro.experiments.backends.cache.RemoteCacheStore`
        exposes, so audits can tell a genuine miss (``None`` while
        ``connected``) from an unreachable endpoint."""
        return self._last_ok

    def health(self) -> CacheStoreHealth:
        return CacheStoreHealth(
            kind="s3",
            endpoint=f"{self.host}/{self.bucket}",
            breaker_state=self.breaker.state,
            breaker_opened=self.breaker.times_opened,
            errors=self.errors,
            quarantined=len(self.quarantined),
        )

    # -- raw HTTP ----------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            conn_cls = (
                http.client.HTTPSConnection
                if self.scheme == "https"
                else http.client.HTTPConnection
            )
            self._conn = conn_cls(self.host, timeout=self.timeout)
            # http.client writes headers and body as separate segments;
            # without TCP_NODELAY, Nagle + delayed ACK turns every PUT
            # into a ~40 ms round trip.
            self._conn.connect()
            sock = self._conn.sock
            if sock is not None:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return self._conn

    def _drop_connection(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:  # pragma: no cover - already dead
                pass
            self._conn = None

    def close(self) -> None:
        self._drop_connection()

    def _request(
        self,
        method: str,
        key: str = "",
        *,
        query: str = "",
        body: bytes = b"",
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """One HTTP round trip; raises :class:`TransientStoreError` on
        anything worth retrying and returns ``(status, headers, body)``
        otherwise (4xx handling is the caller's business)."""
        quoted_key = urllib.parse.quote(key, safe="/") if key else ""
        canonical_uri = f"/{self.bucket}" + (f"/{quoted_key}" if quoted_key else "")
        target = canonical_uri + (f"?{query}" if query else "")
        send_headers = dict(headers or {})
        payload_sha = hashlib.sha256(body).hexdigest()
        if self.credentials is not None:
            send_headers.update(
                _sigv4_headers(
                    method,
                    self.host,
                    canonical_uri,
                    query,
                    payload_sha,
                    self.credentials,
                    self.region,
                    _dt.datetime.now(_dt.timezone.utc),
                )
            )
        else:
            send_headers["x-amz-content-sha256"] = payload_sha
        try:
            conn = self._connection()
            conn.request(method, target, body=body or None, headers=send_headers)
            response = conn.getresponse()
            status = response.status
            response_headers = {
                name.lower(): value for name, value in response.getheaders()
            }
            payload = response.read()
        except (OSError, http.client.HTTPException) as exc:
            # Covers refused/reset connections, timeouts and torn frames
            # (IncompleteRead); the connection is dirty either way.
            self._drop_connection()
            raise TransientStoreError(f"{method} {target}: {exc!r}") from exc
        if status >= 500:
            raise TransientStoreError(f"{method} {target}: HTTP {status}")
        declared = response_headers.get("content-length")
        if (
            method != "HEAD"
            and declared is not None
            and declared.isdigit()
            and len(payload) != int(declared)
        ):
            # A body shorter than Content-Length that http.client did not
            # flag (connection closed exactly at a chunk boundary): torn.
            self._drop_connection()
            raise TransientStoreError(
                f"{method} {target}: torn body "
                f"({len(payload)} of {declared} bytes)"
            )
        return status, response_headers, payload

    def _call(self, op: str, fn: Callable[[], "tuple | None"]):
        """Run one logical round trip under the shared resilience layer."""
        try:
            value = with_resilience(
                op,
                fn,
                policy=self.policy,
                breaker=self.breaker,
                retry_on=(TransientStoreError,),
                rng=self._rng,
                on_outcome=self.on_outcome,
            )
        except BreakerOpen:
            self.shed += 1
            return None
        except (ResilienceError, ObjectStoreError, OSError):
            self.errors += 1
            self._last_ok = False
            return None
        self._last_ok = True
        return value

    # -- verbs -------------------------------------------------------------

    def _get_object(self, key: str) -> tuple[bytes, dict[str, str]] | None:
        status, headers, payload = self._request("GET", key)
        if status == 404:
            return None
        if status != 200:
            raise ObjectStoreError(f"GET {key!r}: HTTP {status}")
        return payload, headers

    def _put_object(
        self, key: str, body: bytes, metadata: dict[str, str]
    ) -> None:
        headers = dict(metadata)
        headers["Content-Type"] = "application/json"
        status, _, _ = self._request("PUT", key, body=body, headers=headers)
        if status not in (200, 201, 204):
            raise ObjectStoreError(f"PUT {key!r}: HTTP {status}")

    def head(self, fingerprint: str) -> dict[str, str] | None:
        """The object's headers, or ``None`` on miss/outage (audits)."""
        key = object_key(fingerprint, self.prefix)

        def attempt() -> dict[str, str] | None:
            status, headers, _ = self._request("HEAD", key)
            if status == 404:
                return None
            if status != 200:
                raise ObjectStoreError(f"HEAD {key!r}: HTTP {status}")
            return headers

        return self._call("cache-head", attempt)

    def list_fingerprints(self) -> list[str] | None:
        """Every cache fingerprint under the prefix (ListObjectsV2);
        ``None`` on outage.  Quarantined keys are not included."""

        def attempt() -> list[str]:
            found: list[str] = []
            token: str | None = None
            while True:
                query = "list-type=2"
                if self.prefix:
                    query += f"&prefix={urllib.parse.quote(self.prefix + '/')}"
                if token is not None:
                    query += f"&continuation-token={urllib.parse.quote(token)}"
                status, _, payload = self._request("GET", query=query)
                if status != 200:
                    raise ObjectStoreError(f"LIST: HTTP {status}")
                try:
                    root = ET.fromstring(payload.decode("utf-8"))
                except (ET.ParseError, UnicodeDecodeError) as exc:
                    raise TransientStoreError(f"LIST: bad XML: {exc!r}") from exc
                namespace = ""
                if root.tag.startswith("{"):
                    namespace = root.tag[: root.tag.index("}") + 1]
                for contents in root.iter(f"{namespace}Contents"):
                    key_node = contents.find(f"{namespace}Key")
                    if key_node is None or not key_node.text:
                        continue
                    fingerprint = fingerprint_from_key(key_node.text, self.prefix)
                    if fingerprint is not None:
                        found.append(fingerprint)
                truncated = root.find(f"{namespace}IsTruncated")
                next_token = root.find(f"{namespace}NextContinuationToken")
                if (
                    truncated is not None
                    and (truncated.text or "").strip() == "true"
                    and next_token is not None
                    and next_token.text
                ):
                    token = next_token.text
                    continue
                return found

        return self._call("cache-list", attempt)

    # -- the CacheStore interface ------------------------------------------

    def load(self, fingerprint: str) -> str | None:
        key = object_key(fingerprint, self.prefix)

        def attempt() -> str | None:
            fetched = self._get_object(key)
            if fetched is None:
                return None
            payload, headers = fetched
            expected_sha = headers.get(CHECKSUM_HEADER)
            expected_fp = headers.get(FINGERPRINT_HEADER)
            actual_sha = hashlib.sha256(payload).hexdigest()
            if expected_sha is not None and actual_sha != expected_sha:
                raise ObjectIntegrityError(
                    key,
                    f"sha256 mismatch ({actual_sha[:12]} != {expected_sha[:12]})",
                    payload,
                )
            if expected_fp is not None and expected_fp != fingerprint:
                raise ObjectIntegrityError(
                    key, f"fingerprint echo mismatch ({expected_fp[:12]})", payload
                )
            try:
                return payload.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise ObjectIntegrityError(
                    key, f"not UTF-8: {exc}", payload
                ) from exc

        try:
            text = with_resilience(
                "cache-get",
                attempt,
                policy=self.policy,
                breaker=self.breaker,
                retry_on=(TransientStoreError,),
                rng=self._rng,
                on_outcome=self.on_outcome,
            )
        except ObjectIntegrityError as exc:
            # The object itself is poison, not the transport: move it
            # aside so no other driver trips over it, then miss.
            self.errors += 1
            self._last_ok = True  # the transport worked; the bytes lied
            self._quarantine_key(fingerprint, exc.reason, body=exc.payload)
            return None
        except BreakerOpen:
            self.shed += 1
            return None
        except (ResilienceError, ObjectStoreError, OSError):
            self.errors += 1
            self._last_ok = False
            return None
        self._last_ok = True
        return text

    def save(self, fingerprint: str, text: str) -> None:
        key = object_key(fingerprint, self.prefix)
        body = text.encode("utf-8")
        metadata = {
            CHECKSUM_HEADER: hashlib.sha256(body).hexdigest(),
            FINGERPRINT_HEADER: fingerprint,
        }
        self._call("cache-put", lambda: self._put_object(key, body, metadata))

    def quarantine(self, fingerprint: str, text: str, reason: str) -> None:
        """Copy a poisoned entry under ``quarantine/`` and record it.

        Called both internally (integrity failures caught in
        :meth:`load`) and by :class:`~repro.experiments.engine.
        ResultCache` when a transport-intact entry fails semantic
        validation.  The quarantine object keeps the poisoned bytes and
        tags the reason, so operators can inspect the corruption; the
        original key is deliberately left in place for them to delete —
        an unauthenticated cache client quietly deleting shared objects
        would be worse than the poison.
        """
        self._quarantine_key(fingerprint, reason, body=text.encode("utf-8"))

    def _quarantine_key(
        self, fingerprint: str, reason: str, *, body: bytes = b""
    ) -> None:
        self.quarantined.append((fingerprint, reason))
        target = f"{QUARANTINE_PREFIX}/{object_key(fingerprint, self.prefix)}"
        header_safe = reason.encode("ascii", "replace").decode("ascii")
        metadata = {
            CHECKSUM_HEADER: hashlib.sha256(body).hexdigest(),
            FINGERPRINT_HEADER: fingerprint,
            "x-amz-meta-repro-quarantine-reason": header_safe,
        }
        # Best effort via the same resilience wrapper; a failed
        # quarantine PUT must not escalate (the local record stands).
        self._call(
            "cache-quarantine", lambda: self._put_object(target, body, metadata)
        )

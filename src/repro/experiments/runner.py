"""Grid runner: every scheduler configuration over one workload.

Produces the raw material of the paper's Tables 3–6 (objective values and
percentages against the FCFS+EASY reference) and Tables 7–8 (computation
time of the scheduling algorithms).

Computation time is measured by wrapping the scheduler in a
:class:`TimingScheduler` proxy that accumulates the wall-clock spent inside
scheduler callbacks only — queue management and start decisions — excluding
simulator bookkeeping, which is what the paper's "computation time to
execute the various algorithms" refers to.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.core import vector
from repro.core.job import Job
from repro.core.machine import Machine
from repro.core.packing import PackedJobs, unpack_jobs
from repro.core.scheduler import Scheduler, SchedulerContext
from repro.core.simulator import (
    Cancellation,
    ScenarioInputs,
    SimulationConfig,
    Simulator,
)
from repro.metrics.objectives import (
    average_response_time,
    average_weighted_response_time,
)
from repro.schedulers.registry import SchedulerConfig, build_scheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.failures.trace import FailureTrace


class TimingScheduler(Scheduler):
    """Delegating proxy that accumulates time spent in scheduler callbacks."""

    def __init__(self, inner: Scheduler) -> None:
        self.inner = inner
        self.name = inner.name
        self.uses_estimates = inner.uses_estimates
        self.elapsed = 0.0

    def reset(self) -> None:
        self.elapsed = 0.0
        self.inner.reset()

    def on_submit(self, job: Job, ctx: SchedulerContext) -> None:
        t0 = time.perf_counter()
        self.inner.on_submit(job, ctx)
        self.elapsed += time.perf_counter() - t0

    def on_complete(self, job: Job, ctx: SchedulerContext) -> None:
        t0 = time.perf_counter()
        self.inner.on_complete(job, ctx)
        self.elapsed += time.perf_counter() - t0

    def on_cancel(self, job: Job, ctx: SchedulerContext) -> None:
        t0 = time.perf_counter()
        self.inner.on_cancel(job, ctx)
        self.elapsed += time.perf_counter() - t0

    def next_wakeup(self, ctx: SchedulerContext) -> float | None:
        t0 = time.perf_counter()
        out = self.inner.next_wakeup(ctx)
        self.elapsed += time.perf_counter() - t0
        return out

    def select_jobs(self, ctx: SchedulerContext) -> list[Job]:
        t0 = time.perf_counter()
        out = self.inner.select_jobs(ctx)
        self.elapsed += time.perf_counter() - t0
        return out

    @property
    def pending_count(self) -> int:
        return self.inner.pending_count


@dataclass(frozen=True, slots=True)
class CellResult:
    """Measured outcome of one grid cell."""

    config: SchedulerConfig
    objective: float
    compute_time: float     # seconds spent inside the scheduling algorithm
    max_queue_length: int
    makespan: float
    decision_time: float = 0.0  # seconds inside select_jobs at decision points
    # Resilience metrics (all zero when the cell ran without failure
    # injection; see repro.failures and docs/architecture.md).
    interrupted_jobs: int = 0
    wasted_node_seconds: float = 0.0
    lost_node_seconds: float = 0.0
    requeue_delay: float = 0.0

    def pct_vs(self, reference: float) -> float:
        """Percentage difference against a reference value (paper style)."""
        if reference == 0:
            return 0.0
        return (self.objective - reference) / reference * 100.0


@dataclass(slots=True)
class GridResult:
    """All cells of one (workload, regime) grid."""

    workload_name: str
    weighted: bool
    total_nodes: int
    n_jobs: int
    cells: dict[str, CellResult] = field(default_factory=dict)
    #: Cell key the percentages are computed against; ``None`` selects
    #: ``fcfs/easy`` when present, else the first cell in grid order.
    reference_key: str | None = None
    #: Content-address of each cell (cache fingerprint), filled by the
    #: engine.  Part of the run-lifecycle audit trail: resume tests and
    #: :func:`repro.experiments.journal.verify_run` compare these for
    #: bit-identity.  Empty for grids built before PR 5 or by hand.
    fingerprints: dict[str, str] = field(default_factory=dict)

    @property
    def reference(self) -> CellResult:
        """The 0 % baseline cell.

        ``reference_key`` when set; otherwise FCFS + EASY (the paper's
        reference), falling back to the grid's first cell for custom
        config lists that omit it.
        """
        if not self.cells:
            raise KeyError("grid has no cells yet; run it before asking for a reference")
        if self.reference_key is not None:
            if self.reference_key not in self.cells:
                raise KeyError(
                    f"reference cell {self.reference_key!r} is not in the grid; "
                    f"available cells: {', '.join(self.cells)}"
                )
            return self.cells[self.reference_key]
        if "fcfs/easy" in self.cells:
            return self.cells["fcfs/easy"]
        return next(iter(self.cells.values()))

    def _cell(self, key: str) -> CellResult:
        try:
            return self.cells[key]
        except KeyError:
            raise KeyError(
                f"unknown grid cell {key!r}; available cells: "
                f"{', '.join(self.cells) or '(none)'}"
            ) from None

    def pct(self, key: str) -> float:
        return self._cell(key).pct_vs(self.reference.objective)

    def compute_pct(self, key: str) -> float:
        """Computation time vs the reference cell (Tables 7–8 layout)."""
        ref = self.reference.compute_time
        if ref == 0:
            return 0.0
        return (self._cell(key).compute_time - ref) / ref * 100.0


ProgressFn = Callable[[SchedulerConfig, CellResult], None]


def simulate_cell(
    config: SchedulerConfig,
    jobs: "Sequence[Job] | PackedJobs",
    *,
    total_nodes: int = 256,
    weighted: bool = False,
    recompute_threshold: float = 2.0 / 3.0,
    failures: "FailureTrace | None" = None,
    recovery: str | None = None,
    cancellations: "Sequence[Cancellation]" = (),
    cancel_over_limit: bool = False,
    backend: str | None = None,
) -> CellResult:
    """Simulate one grid cell and measure the paper's metrics.

    The single place a cell is actually computed — the serial
    :func:`run_grid`, the parallel engine's workers, and its cache misses
    all funnel through here, which is what makes parallel and serial runs
    bit-identical.

    ``jobs`` may be a :class:`~repro.core.packing.PackedJobs` columnar
    buffer (the zero-copy dispatch format); it is unpacked to the same
    ``Job`` tuple the caller would have shipped, so results are identical
    either way.

    ``failures``/``recovery``/``cancellations``/``cancel_over_limit`` are
    the *compiled* scenario inputs (see :mod:`repro.scenarios`): a failure
    trace plus recovery spec, user-withdrawal events, and the
    estimate-limit kill flag.  The resilience metrics of the result are
    populated when failures are injected.  ``recovery`` must be a spec
    string here (not a policy object) so the cell stays picklable and
    cache-fingerprintable.

    ``backend`` selects the simulation kernels (see
    :func:`repro.core.vector.resolve_backend`); both backends produce
    bit-identical cells, which is why the backend is absent from the cache
    fingerprint.  Under the numpy backend the objective reduces over the
    run's columnar buffers (:class:`repro.core.vector.ResultColumns`) with
    the exact-summation kernels — same bits as the scalar loops.
    """
    if isinstance(jobs, PackedJobs):
        jobs = unpack_jobs(jobs)
    scheduler = TimingScheduler(
        build_scheduler(
            config, total_nodes, weighted=weighted,
            recompute_threshold=recompute_threshold,
        )
    )
    scenario = ScenarioInputs(
        cancellations=tuple(cancellations), failures=failures, recovery=recovery
    )
    result = Simulator(
        Machine(total_nodes),
        scheduler,
        SimulationConfig(backend=backend, cancel_over_limit=cancel_over_limit),
    ).run(jobs, scenario=scenario)
    if result.columns is not None:
        objective = (
            vector.average_weighted_response_time_columns(result.columns)
            if weighted
            else vector.average_response_time_columns(result.columns)
        )
    else:
        objective = (
            average_weighted_response_time(result.schedule)
            if weighted
            else average_response_time(result.schedule)
        )
    return CellResult(
        config=config,
        objective=objective,
        compute_time=scheduler.elapsed,
        max_queue_length=result.max_queue_length,
        makespan=result.schedule.makespan,
        decision_time=result.decision_time,
        interrupted_jobs=result.interrupted_jobs,
        wasted_node_seconds=result.wasted_node_seconds,
        lost_node_seconds=result.lost_node_seconds,
        requeue_delay=result.requeue_delay,
    )


def run_grid(
    jobs: Sequence[Job],
    *,
    workload_name: str = "workload",
    total_nodes: int = 256,
    weighted: bool = False,
    configs: Sequence[SchedulerConfig] | None = None,
    progress: ProgressFn | None = None,
    reference_key: str | None = None,
    backend: str | None = None,
) -> GridResult:
    """Run every configuration over ``jobs`` and collect the paper's metrics.

    ``weighted`` selects both the objective (ART vs AWRT) and the ordering
    weight SMART/PSRS use internally — matching the paper, which tunes and
    evaluates each regime separately.  ``backend`` selects the simulation
    kernels per cell (bit-identical either way).

    This is a thin serial wrapper over
    :class:`repro.experiments.engine.ExperimentEngine` (one worker, no
    cache); use the engine directly for parallel fan-out, the on-disk
    result cache, and structured progress events.
    """
    from repro.experiments.engine import ExperimentEngine

    return ExperimentEngine(workers=1, backend=backend).run(
        jobs,
        workload_name=workload_name,
        total_nodes=total_nodes,
        weighted=weighted,
        configs=configs,
        progress=progress,
        reference_key=reference_key,
    )

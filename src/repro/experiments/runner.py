"""Grid runner: every scheduler configuration over one workload.

Produces the raw material of the paper's Tables 3–6 (objective values and
percentages against the FCFS+EASY reference) and Tables 7–8 (computation
time of the scheduling algorithms).

Computation time is measured by wrapping the scheduler in a
:class:`TimingScheduler` proxy that accumulates the wall-clock spent inside
scheduler callbacks only — queue management and start decisions — excluding
simulator bookkeeping, which is what the paper's "computation time to
execute the various algorithms" refers to.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.job import Job
from repro.core.machine import Machine
from repro.core.scheduler import Scheduler, SchedulerContext
from repro.core.simulator import Simulator
from repro.metrics.objectives import (
    average_response_time,
    average_weighted_response_time,
)
from repro.schedulers.registry import (
    SchedulerConfig,
    build_scheduler,
    paper_configurations,
)


class TimingScheduler(Scheduler):
    """Delegating proxy that accumulates time spent in scheduler callbacks."""

    def __init__(self, inner: Scheduler) -> None:
        self.inner = inner
        self.name = inner.name
        self.uses_estimates = inner.uses_estimates
        self.elapsed = 0.0

    def reset(self) -> None:
        self.elapsed = 0.0
        self.inner.reset()

    def on_submit(self, job: Job, ctx: SchedulerContext) -> None:
        t0 = time.perf_counter()
        self.inner.on_submit(job, ctx)
        self.elapsed += time.perf_counter() - t0

    def on_complete(self, job: Job, ctx: SchedulerContext) -> None:
        t0 = time.perf_counter()
        self.inner.on_complete(job, ctx)
        self.elapsed += time.perf_counter() - t0

    def on_cancel(self, job: Job, ctx: SchedulerContext) -> None:
        t0 = time.perf_counter()
        self.inner.on_cancel(job, ctx)
        self.elapsed += time.perf_counter() - t0

    def next_wakeup(self, ctx: SchedulerContext) -> float | None:
        return self.inner.next_wakeup(ctx)

    def select_jobs(self, ctx: SchedulerContext) -> list[Job]:
        t0 = time.perf_counter()
        out = self.inner.select_jobs(ctx)
        self.elapsed += time.perf_counter() - t0
        return out

    @property
    def pending_count(self) -> int:
        return self.inner.pending_count


@dataclass(frozen=True, slots=True)
class CellResult:
    """Measured outcome of one grid cell."""

    config: SchedulerConfig
    objective: float
    compute_time: float     # seconds spent inside the scheduling algorithm
    max_queue_length: int
    makespan: float

    def pct_vs(self, reference: float) -> float:
        """Percentage difference against a reference value (paper style)."""
        if reference == 0:
            return 0.0
        return (self.objective - reference) / reference * 100.0


@dataclass(slots=True)
class GridResult:
    """All cells of one (workload, regime) grid."""

    workload_name: str
    weighted: bool
    total_nodes: int
    n_jobs: int
    cells: dict[str, CellResult] = field(default_factory=dict)

    @property
    def reference(self) -> CellResult:
        """The FCFS + EASY cell (the paper's 0 % baseline)."""
        return self.cells["fcfs/easy"]

    def pct(self, key: str) -> float:
        return self.cells[key].pct_vs(self.reference.objective)

    def compute_pct(self, key: str) -> float:
        """Computation time vs the reference cell (Tables 7–8 layout)."""
        ref = self.reference.compute_time
        if ref == 0:
            return 0.0
        return (self.cells[key].compute_time - ref) / ref * 100.0


ProgressFn = Callable[[SchedulerConfig, CellResult], None]


def run_grid(
    jobs: Sequence[Job],
    *,
    workload_name: str = "workload",
    total_nodes: int = 256,
    weighted: bool = False,
    configs: Sequence[SchedulerConfig] | None = None,
    progress: ProgressFn | None = None,
) -> GridResult:
    """Run every configuration over ``jobs`` and collect the paper's metrics.

    ``weighted`` selects both the objective (ART vs AWRT) and the ordering
    weight SMART/PSRS use internally — matching the paper, which tunes and
    evaluates each regime separately.
    """
    chosen = list(configs) if configs is not None else list(paper_configurations())
    grid = GridResult(
        workload_name=workload_name,
        weighted=weighted,
        total_nodes=total_nodes,
        n_jobs=len(jobs),
    )
    for config in chosen:
        scheduler = TimingScheduler(
            build_scheduler(config, total_nodes, weighted=weighted)
        )
        result = Simulator(Machine(total_nodes), scheduler).run(jobs)
        objective = (
            average_weighted_response_time(result.schedule)
            if weighted
            else average_response_time(result.schedule)
        )
        cell = CellResult(
            config=config,
            objective=objective,
            compute_time=scheduler.elapsed,
            max_queue_length=result.max_queue_length,
            makespan=result.schedule.makespan,
        )
        grid.cells[config.key] = cell
        if progress is not None:
            progress(config, cell)
    return grid

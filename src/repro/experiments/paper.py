"""One entry per paper artifact: workload recipe + regime + published values.

``EXPERIMENTS`` maps experiment ids (``table3`` … ``table8``, ``fig3`` …
``fig6``) to :class:`ExperimentSpec` objects; :func:`run_experiment`
executes one at a chosen scale and returns measured grids plus the
paper-comparison report.  The figures share their data with the tables
(Fig 3/4 = Table 3, Fig 5 = Table 4, Fig 6 = Table 6), so they resolve to
the same runs rendered as bars.

The published values below are transcribed from the paper (average
response times in seconds; weighted values in node-second-weighted
seconds).  Absolute magnitudes are trace-specific and NOT a reproduction
target; the percentages against FCFS+EASY and the pairwise order of the
cells are.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from pathlib import Path

from repro.core.job import Job
from repro.experiments.engine import EventFn, ExperimentEngine, ResultCache
from repro.experiments.runner import GridResult
from repro.experiments.tables import (
    agreement_score,
    format_bars,
    format_comparison,
    format_compute_times,
    format_grid,
)
from repro.workloads.ctc import ctc_like_workload
from repro.workloads.probabilistic import ProbabilisticModel
from repro.workloads.randomized import randomized_workload
from repro.workloads.transforms import (
    cap_nodes,
    renumber,
    take_prefix,
    with_exact_estimates,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenarios import ScenarioSpec

# -- published numbers (Tables 3–6) --------------------------------------------------

PAPER_TABLE3_UNWEIGHTED = {
    "fcfs/list": 4.91e6, "fcfs/conservative": 6.70e5, "fcfs/easy": 3.95e5,
    "psrs/list": 1.59e5, "psrs/conservative": 1.02e5, "psrs/easy": 1.06e5,
    "smart-ffia/list": 1.57e5, "smart-ffia/conservative": 1.00e5, "smart-ffia/easy": 1.17e5,
    "smart-nfiw/list": 1.82e5, "smart-nfiw/conservative": 1.02e5, "smart-nfiw/easy": 1.11e5,
    "gg/list": 1.46e5,
}
PAPER_TABLE3_WEIGHTED = {
    "fcfs/list": 4.99e11, "fcfs/conservative": 1.83e11, "fcfs/easy": 1.43e11,
    "psrs/list": 3.82e11, "psrs/conservative": 1.70e11, "psrs/easy": 1.43e11,
    "smart-ffia/list": 3.57e11, "smart-ffia/conservative": 2.00e11, "smart-ffia/easy": 1.51e11,
    "smart-nfiw/list": 3.91e11, "smart-nfiw/conservative": 2.03e11, "smart-nfiw/easy": 1.49e11,
    "gg/list": 1.20e11,
}
PAPER_TABLE4_UNWEIGHTED = {
    "fcfs/list": 6.17e6, "fcfs/conservative": 1.06e6, "fcfs/easy": 1.03e6,
    "psrs/list": 2.86e5, "psrs/conservative": 1.71e5, "psrs/easy": 1.55e5,
    "smart-ffia/list": 2.67e5, "smart-ffia/conservative": 1.74e5, "smart-ffia/easy": 1.57e5,
    "smart-nfiw/list": 2.85e5, "smart-nfiw/conservative": 1.65e5, "smart-nfiw/easy": 1.64e5,
    "gg/list": 2.78e5,
}
PAPER_TABLE4_WEIGHTED = {
    "fcfs/list": 6.17e11, "fcfs/conservative": 3.03e11, "fcfs/easy": 2.96e11,
    "psrs/list": 5.10e11, "psrs/conservative": 3.05e11, "psrs/easy": 2.91e11,
    "smart-ffia/list": 4.84e11, "smart-ffia/conservative": 3.33e11, "smart-ffia/easy": 2.97e11,
    "smart-nfiw/list": 4.86e11, "smart-nfiw/conservative": 3.31e11, "smart-nfiw/easy": 3.03e11,
    "gg/list": 2.72e11,
}
PAPER_TABLE5_UNWEIGHTED = {
    "fcfs/list": 3.40e8, "fcfs/conservative": 1.72e8, "fcfs/easy": 1.73e8,
    "psrs/list": 1.66e8, "psrs/conservative": 1.44e8, "psrs/easy": 1.32e8,
    "smart-ffia/list": 1.57e8, "smart-ffia/conservative": 1.41e8, "smart-ffia/easy": 1.37e8,
    "smart-nfiw/list": 1.61e8, "smart-nfiw/conservative": 1.42e8, "smart-nfiw/easy": 1.39e8,
    "gg/list": 1.73e8,
}
PAPER_TABLE5_WEIGHTED = {
    "fcfs/list": 9.40e14, "fcfs/conservative": 6.66e14, "fcfs/easy": 6.64e14,
    "psrs/list": 8.66e14, "psrs/conservative": 6.61e14, "psrs/easy": 6.60e14,
    "smart-ffia/list": 8.15e14, "smart-ffia/conservative": 7.54e14, "smart-ffia/easy": 6.96e14,
    "smart-nfiw/list": 9.05e14, "smart-nfiw/conservative": 7.96e14, "smart-nfiw/easy": 7.09e14,
    "gg/list": 6.68e14,
}
PAPER_TABLE6_UNWEIGHTED = {
    "fcfs/list": 4.91e6, "fcfs/conservative": 4.05e5, "fcfs/easy": 3.93e5,
    "psrs/list": 1.05e5, "psrs/conservative": 6.35e4, "psrs/easy": 5.48e4,
    "smart-ffia/list": 9.07e4, "smart-ffia/conservative": 5.60e4, "smart-ffia/easy": 5.33e4,
    "smart-nfiw/list": 9.39e4, "smart-nfiw/conservative": 5.66e4, "smart-nfiw/easy": 5.34e4,
    "gg/list": 1.46e5,
}
PAPER_TABLE6_WEIGHTED = {
    "fcfs/list": 4.99e11, "fcfs/conservative": 1.14e11, "fcfs/easy": 9.82e10,
    "psrs/list": 3.91e11, "psrs/conservative": 1.15e11, "psrs/easy": 9.91e10,
    "smart-ffia/list": 3.03e11, "smart-ffia/conservative": 2.73e11, "smart-ffia/easy": 2.58e11,
    "smart-nfiw/list": 3.33e11, "smart-nfiw/conservative": 2.92e11, "smart-nfiw/easy": 2.68e11,
    "gg/list": 1.20e11,
}

#: Tables 7/8: computation time pct vs FCFS+EASY.  The paper merges the two
#: SMART variants into one row; we replicate its value for both variants.
PAPER_TABLE7 = {
    "unweighted": {
        "fcfs/list": -81.6, "psrs/list": -76.7, "smart-ffia/list": -75.6,
        "smart-nfiw/list": -75.6, "gg/list": -58.4,
        "psrs/easy": -33.7, "smart-ffia/easy": -32.7, "smart-nfiw/easy": -32.7,
    },
    "weighted": {
        "fcfs/list": -80.6, "psrs/list": +30.6, "smart-ffia/list": -13.7,
        "smart-nfiw/list": -13.7, "gg/list": -57.2,
        "psrs/easy": -39.4, "smart-ffia/easy": -34.3, "smart-nfiw/easy": -34.3,
    },
}
PAPER_TABLE8 = {
    "unweighted": {
        "fcfs/list": -92.1, "psrs/list": -88.5, "smart-ffia/list": -87.1,
        "smart-nfiw/list": -87.1, "gg/list": -72.3,
        "psrs/easy": -79.6, "smart-ffia/easy": -80.1, "smart-nfiw/easy": -80.1,
    },
    "weighted": {
        "fcfs/list": -91.6, "psrs/list": -27.2, "smart-ffia/list": -50.5,
        "smart-nfiw/list": -50.5, "gg/list": -69.2,
        "psrs/easy": -57.4, "smart-ffia/easy": -72.7, "smart-nfiw/easy": -72.7,
    },
}

#: Table 1 job counts.
PAPER_TABLE1 = {"ctc": 79_164, "probabilistic": 50_000, "randomized": 50_000}


# -- workload recipes -----------------------------------------------------------------

def ctc_workload(scale: int, seed: int = 42) -> list[Job]:
    """The experiment CTC workload: synthetic trace capped at 256 nodes."""
    return renumber(cap_nodes(ctc_like_workload(scale, seed=seed), 256))


def probabilistic_workload(scale: int, seed: int = 42) -> list[Job]:
    """Section 6.2: fit the model on the CTC workload, sample a fresh one."""
    source = ctc_workload(scale, seed=seed)
    model = ProbabilisticModel.fit(source)
    return model.sample(scale, seed=seed + 1)


def randomized_workload_at(scale: int, seed: int = 42) -> list[Job]:
    return randomized_workload(scale, seed=seed)


def ctc_exact_workload(scale: int, seed: int = 42) -> list[Job]:
    """Table 6: the CTC workload with estimates replaced by actual runtimes."""
    return with_exact_estimates(ctc_workload(scale, seed=seed))


# -- experiment specs -------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class ExperimentSpec:
    """One paper artifact: how to regenerate it and what the paper printed."""

    experiment_id: str
    description: str
    workload: Callable[[int, int], list[Job]]
    #: regime -> paper cell values (absolute objective, Tables 3–6) or
    #: compute-time percentages (Tables 7–8).
    paper: dict[str, dict[str, float]]
    #: job count used by the paper.
    paper_scale: int
    #: default scale for laptop runs.
    default_scale: int
    kind: str = "objective"     # "objective" | "compute" | "figure"
    renders_figure: str | None = None


@dataclass(slots=True)
class ExperimentResult:
    """Measured grids for both regimes plus rendered reports."""

    spec: ExperimentSpec
    grids: dict[str, GridResult]
    reports: dict[str, str]
    agreement: dict[str, float]
    #: Deterministic journal run id per regime (empty for journal-less
    #: runs) — the ``--resume`` handles.
    run_ids: dict[str, str] = field(default_factory=dict)


EXPERIMENTS: dict[str, ExperimentSpec] = {
    "table3": ExperimentSpec(
        experiment_id="table3",
        description="Average response time for the CTC workload (Figs 3 and 4)",
        workload=ctc_workload,
        paper={"unweighted": PAPER_TABLE3_UNWEIGHTED, "weighted": PAPER_TABLE3_WEIGHTED},
        paper_scale=PAPER_TABLE1["ctc"],
        default_scale=3000,
    ),
    "table4": ExperimentSpec(
        experiment_id="table4",
        description="Average response time for the probability distributed workload (Fig 5)",
        workload=probabilistic_workload,
        paper={"unweighted": PAPER_TABLE4_UNWEIGHTED, "weighted": PAPER_TABLE4_WEIGHTED},
        paper_scale=PAPER_TABLE1["probabilistic"],
        default_scale=3000,
    ),
    "table5": ExperimentSpec(
        experiment_id="table5",
        description="Average response time for the randomized workload",
        workload=randomized_workload_at,
        paper={"unweighted": PAPER_TABLE5_UNWEIGHTED, "weighted": PAPER_TABLE5_WEIGHTED},
        paper_scale=PAPER_TABLE1["randomized"],
        default_scale=3000,
    ),
    "table6": ExperimentSpec(
        experiment_id="table6",
        description="CTC workload with knowledge of the exact execution time (Fig 6)",
        workload=ctc_exact_workload,
        paper={"unweighted": PAPER_TABLE6_UNWEIGHTED, "weighted": PAPER_TABLE6_WEIGHTED},
        paper_scale=PAPER_TABLE1["ctc"],
        default_scale=3000,
    ),
    "table7": ExperimentSpec(
        experiment_id="table7",
        description="Computation time for the CTC workload",
        workload=ctc_workload,
        paper=PAPER_TABLE7,
        paper_scale=PAPER_TABLE1["ctc"],
        default_scale=3000,
        kind="compute",
    ),
    "table8": ExperimentSpec(
        experiment_id="table8",
        description="Computation time for the probability distributed workload",
        workload=probabilistic_workload,
        paper=PAPER_TABLE8,
        paper_scale=PAPER_TABLE1["probabilistic"],
        default_scale=3000,
        kind="compute",
    ),
}
# The figures render the same runs as their tables.
EXPERIMENTS["fig3"] = ExperimentSpec(
    experiment_id="fig3",
    description="Figure 3: bars of Table 3, unweighted",
    workload=ctc_workload,
    paper={"unweighted": PAPER_TABLE3_UNWEIGHTED},
    paper_scale=PAPER_TABLE1["ctc"],
    default_scale=3000,
    kind="figure",
    renders_figure="unweighted",
)
EXPERIMENTS["fig4"] = ExperimentSpec(
    experiment_id="fig4",
    description="Figure 4: bars of Table 3, weighted",
    workload=ctc_workload,
    paper={"weighted": PAPER_TABLE3_WEIGHTED},
    paper_scale=PAPER_TABLE1["ctc"],
    default_scale=3000,
    kind="figure",
    renders_figure="weighted",
)
EXPERIMENTS["fig5"] = ExperimentSpec(
    experiment_id="fig5",
    description="Figure 5: bars of Table 4, unweighted",
    workload=probabilistic_workload,
    paper={"unweighted": PAPER_TABLE4_UNWEIGHTED},
    paper_scale=PAPER_TABLE1["probabilistic"],
    default_scale=3000,
    kind="figure",
    renders_figure="unweighted",
)
EXPERIMENTS["fig6"] = ExperimentSpec(
    experiment_id="fig6",
    description="Figure 6: bars of Table 6 (exact runtimes), unweighted",
    workload=ctc_exact_workload,
    paper={"unweighted": PAPER_TABLE6_UNWEIGHTED},
    paper_scale=PAPER_TABLE1["ctc"],
    default_scale=3000,
    kind="figure",
    renders_figure="unweighted",
)


def run_experiment(
    experiment_id: str,
    *,
    scale: int | None = None,
    seed: int = 42,
    total_nodes: int = 256,
    regimes: Sequence[str] | None = None,
    progress: Callable[[str], None] | None = None,
    source_trace: Sequence[Job] | None = None,
    workers: int | None = None,
    cache: ResultCache | str | Path | None = None,
    on_event: EventFn | None = None,
    use_workload_store: bool = True,
    journal_dir: str | Path | None = None,
    resume_run_id: str | None = None,
    backend: str | None = None,
    scenario: "ScenarioSpec | None" = None,
    execution_backend: str | None = None,
    shards: int = 2,
    connect: Sequence[str] = (),
    remote_cache: str | None = None,
) -> ExperimentResult:
    """Regenerate one paper artifact at the given scale.

    ``scale=None`` uses the laptop default; pass ``spec.paper_scale`` for a
    full-size run (hours for the conservative-backfilling cells in pure
    Python — see DESIGN.md).

    ``source_trace`` replaces the synthetic CTC stand-in with a real trace
    (e.g. the genuine CTC SP2 trace read via
    :func:`repro.workloads.swf.read_swf`): CTC-based experiments take a
    ``scale``-job prefix of it directly; the probabilistic experiments fit
    their model on it; the randomized experiment ignores it (Table 2 is
    trace-free by construction).

    ``workers``, ``cache`` and ``on_event`` configure the underlying
    :class:`~repro.experiments.engine.ExperimentEngine`: worker processes
    for parallel cell fan-out, a content-addressed result cache (a
    directory path suffices), and a structured progress-event callback.
    ``use_workload_store=False`` reverts parallel runs to pickling the job
    tuple per cell instead of the zero-copy digest dispatch.  ``backend``
    selects the simulation kernels per cell (``"python"``/``"numpy"``/
    ``"auto"``; ``None`` consults ``REPRO_BACKEND``) — results, caches and
    run ids are bit-identical across backends.

    ``journal_dir`` overrides where run journals land (default: under the
    cache).  ``resume_run_id`` resumes the regime whose deterministic run
    id matches (other regimes run normally — their completed cells come
    out of the cache anyway); when it matches *no* regime the inputs
    drifted since the run was journaled, and the call refuses with
    :class:`~repro.experiments.journal.UnknownRunError` rather than
    silently re-running everything fresh.  The per-regime ids are
    returned in :attr:`ExperimentResult.run_ids`.

    ``scenario`` runs every regime under a compiled
    :class:`~repro.scenarios.spec.ScenarioSpec` (failures, cancellations,
    load surges, …): its canonical digest joins every cell fingerprint
    and each regime's run id, so scenario runs cache and resume
    independently of the healthy baseline.

    ``execution_backend`` selects *where* cells run (``"local"``,
    ``"sharded"``, ``"remote"``; see
    :mod:`repro.experiments.backends`), ``shards`` sizes the sharded
    pool, ``connect`` lists remote worker addresses and
    ``remote_cache`` points at a shared fleet cache — all forwarded to
    the engine verbatim.  Results and run ids are bit-identical across
    execution backends.
    """
    spec = EXPERIMENTS[experiment_id]
    n = spec.default_scale if scale is None else scale
    jobs = _experiment_jobs(spec, n, seed, source_trace)
    wanted = list(regimes) if regimes is not None else list(spec.paper.keys())
    engine = ExperimentEngine(
        workers=workers,
        cache=cache,
        on_event=on_event,
        use_workload_store=use_workload_store,
        journal_dir=journal_dir,
        backend=backend,
        execution_backend=execution_backend,
        shards=shards,
        connect=connect,
        remote_cache=remote_cache,
    )

    def _grid_kwargs(regime: str) -> dict:
        return dict(
            workload_name=spec.description,
            total_nodes=total_nodes,
            weighted=(regime == "weighted"),
            scenario=scenario,
        )

    if resume_run_id is not None:
        regime_ids = {
            regime: engine.run_id_for(jobs, **_grid_kwargs(regime))
            for regime in wanted
        }
        if resume_run_id not in regime_ids.values():
            from repro.experiments.journal import UnknownRunError

            computed = ", ".join(f"{r}={i}" for r, i in regime_ids.items())
            raise UnknownRunError(
                f"run {resume_run_id} matches no regime of {experiment_id} "
                f"with the requested inputs (computed: {computed}) — the "
                f"workload, scale, seed, nodes or regime set drifted since "
                f"the run was journaled"
            )

    grids: dict[str, GridResult] = {}
    reports: dict[str, str] = {}
    agreement: dict[str, float] = {}
    run_ids: dict[str, str] = {}
    for regime in wanted:
        if progress is not None:
            progress(f"{experiment_id}: running {regime} grid over {len(jobs)} jobs")
        grid_kwargs = _grid_kwargs(regime)
        if (
            resume_run_id is not None
            and engine.run_id_for(jobs, **grid_kwargs) == resume_run_id
        ):
            grid = engine.resume(resume_run_id, jobs, **grid_kwargs)
        else:
            grid = engine.run(jobs, **grid_kwargs)
        if engine.stats.run_id is not None:
            run_ids[regime] = engine.stats.run_id
        grids[regime] = grid
        if spec.kind == "compute":
            reports[regime] = format_compute_times(grid)
            paper_pcts = spec.paper[regime]
            measured_pcts = {k: grid.compute_pct(k) for k in paper_pcts if k in grid.cells}
            agreement[regime] = _pct_agreement(paper_pcts, measured_pcts)
        elif spec.kind == "figure":
            reports[regime] = format_bars(grid)
            agreement[regime] = agreement_score(grid, spec.paper[regime])
        else:
            reports[regime] = (
                format_grid(grid)
                + "\n\n"
                + format_comparison(grid, spec.paper[regime])
            )
            agreement[regime] = agreement_score(grid, spec.paper[regime])
    return ExperimentResult(
        spec=spec, grids=grids, reports=reports, agreement=agreement, run_ids=run_ids
    )


def _experiment_jobs(
    spec: ExperimentSpec,
    scale: int,
    seed: int,
    source_trace: Sequence[Job] | None,
) -> list[Job]:
    """Build an experiment's workload, honouring a real-trace override."""
    if source_trace is None:
        return spec.workload(scale, seed)
    prefix = renumber(cap_nodes(take_prefix(source_trace, scale), 256))
    if spec.workload is ctc_workload:
        return prefix
    if spec.workload is ctc_exact_workload:
        return with_exact_estimates(prefix)
    if spec.workload is probabilistic_workload:
        model = ProbabilisticModel.fit(prefix)
        return model.sample(scale, seed=seed + 1)
    return spec.workload(scale, seed)  # randomized: trace-free by design


def _pct_agreement(paper: dict[str, float], measured: dict[str, float]) -> float:
    """Sign agreement of compute-time percentages (cheaper/slower than ref)."""
    keys = [k for k in paper if k in measured]
    if not keys:
        return 1.0
    hits = sum(1 for k in keys if (paper[k] < 0) == (measured[k] < 0))
    return hits / len(keys)

"""Parameter-sensitivity sweeps (the "parametric fine tuning" of Section 6.1).

"Any parametric fine tuning must be done with a better workload" — the
paper defers it; this module supplies the machinery.  A sweep varies one
knob, re-simulates, and reports the objective series:

* :func:`sweep_smart_gamma` — SMART's bin growth factor ("The parameter
  gamma can be chosen to optimize the schedule", Section 5.4);
* :func:`sweep_psrs_patience` — PSRS's wide-job delay budget;
* :func:`sweep_recompute_threshold` — the on-line 2/3 recomputation rule;
* :func:`sweep_estimate_noise` — per-job estimate error (continuous
  Table 6);
* :func:`sweep_load` — offered load via interarrival scaling, locating
  the saturation knee of a scheduler.

Each returns a :class:`SweepResult` mapping parameter values to the
objective, with convenience accessors for the best setting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.job import Job
from repro.core.scheduler import Scheduler
from repro.core.simulator import simulate
from repro.metrics.objectives import average_response_time
from repro.schedulers.base import OrderedQueueScheduler
from repro.schedulers.disciplines import EasyBackfill
from repro.schedulers.psrs import PsrsOrderPolicy
from repro.schedulers.smart import SmartOrderPolicy, SmartVariant
from repro.schedulers.weights import unit_weight
from repro.workloads.transforms import scale_interarrival, with_noisy_estimates

ObjectiveFn = Callable[..., float]


@dataclass(frozen=True, slots=True)
class SweepResult:
    """Outcome of a one-knob sensitivity sweep (lower objective = better)."""

    knob: str
    objective_name: str
    series: tuple[tuple[float, float], ...]   # (parameter, objective)

    @property
    def best(self) -> tuple[float, float]:
        return min(self.series, key=lambda kv: kv[1])

    @property
    def spread(self) -> float:
        """Worst over best objective across the sweep (1.0 = insensitive)."""
        values = [v for _p, v in self.series]
        low = min(values)
        return max(values) / low if low > 0 else float("inf")

    def format(self) -> str:
        lines = [f"sweep: {self.knob} (objective: {self.objective_name})"]
        best_param, _ = self.best
        for param, value in self.series:
            marker = " <- best" if param == best_param else ""
            lines.append(f"  {param:>10.4g}  {value:14.1f}{marker}")
        lines.append(f"  spread: {self.spread:.2f}x")
        return "\n".join(lines)


def _run_series(
    knob: str,
    values: Sequence[float],
    make_scheduler: Callable[[float], Scheduler],
    jobs_for: Callable[[float], Sequence[Job]],
    total_nodes: int,
) -> SweepResult:
    series = []
    for value in values:
        result = simulate(jobs_for(value), make_scheduler(value), total_nodes)
        series.append((float(value), average_response_time(result.schedule)))
    return SweepResult(knob=knob, objective_name="ART", series=tuple(series))


def sweep_smart_gamma(
    jobs: Sequence[Job],
    total_nodes: int,
    gammas: Sequence[float] = (1.5, 2.0, 3.0, 4.0, 8.0),
    *,
    variant: SmartVariant = SmartVariant.FFIA,
) -> SweepResult:
    """ART of SMART+EASY as a function of the bin growth factor."""
    return _run_series(
        "smart.gamma",
        gammas,
        lambda gamma: OrderedQueueScheduler(
            SmartOrderPolicy(total_nodes, variant=variant, weight=unit_weight, gamma=gamma),
            EasyBackfill(),
            name="smart",
        ),
        lambda _gamma: jobs,
        total_nodes,
    )


def sweep_psrs_patience(
    jobs: Sequence[Job],
    total_nodes: int,
    patiences: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
) -> SweepResult:
    """ART of PSRS+EASY as a function of the wide-job patience factor."""
    return _run_series(
        "psrs.patience",
        patiences,
        lambda patience: OrderedQueueScheduler(
            PsrsOrderPolicy(total_nodes, weight=unit_weight, patience=patience),
            EasyBackfill(),
            name="psrs",
        ),
        lambda _p: jobs,
        total_nodes,
    )


def sweep_recompute_threshold(
    jobs: Sequence[Job],
    total_nodes: int,
    thresholds: Sequence[float] = (0.25, 0.5, 2.0 / 3.0, 0.9, 1.0),
) -> SweepResult:
    """ART of SMART+EASY as a function of the on-line recompute threshold."""
    return _run_series(
        "online.recompute_threshold",
        thresholds,
        lambda threshold: OrderedQueueScheduler(
            SmartOrderPolicy(
                total_nodes,
                variant=SmartVariant.FFIA,
                weight=unit_weight,
                recompute_threshold=threshold,
            ),
            EasyBackfill(),
            name="smart",
        ),
        lambda _t: jobs,
        total_nodes,
    )


def sweep_estimate_noise(
    jobs: Sequence[Job],
    total_nodes: int,
    make_scheduler: Callable[[], Scheduler],
    sigmas: Sequence[float] = (0.0, 0.5, 1.0, 2.0, 3.0),
    *,
    seed: int = 0,
) -> SweepResult:
    """ART of any scheduler as per-job estimate noise grows (Table 6 axis)."""
    return _run_series(
        "estimates.noise_sigma",
        sigmas,
        lambda _sigma: make_scheduler(),
        lambda sigma: with_noisy_estimates(jobs, sigma, seed=seed),
        total_nodes,
    )


def sweep_load(
    jobs: Sequence[Job],
    total_nodes: int,
    make_scheduler: Callable[[], Scheduler],
    compressions: Sequence[float] = (1.5, 1.2, 1.0, 0.8, 0.6),
) -> SweepResult:
    """ART as offered load rises (interarrival compression < 1 = overload).

    The parameter recorded in the series is the *compression factor*; lower
    means higher load.  Saturation shows up as the characteristic knee.
    """
    return _run_series(
        "load.interarrival_factor",
        compressions,
        lambda _factor: make_scheduler(),
        lambda factor: scale_interarrival(jobs, factor),
        total_nodes,
    )

"""Zero-copy workload distribution for the experiment engine.

The engine's grid cells all simulate the same job stream, yet the original
dispatch path pickled the full job tuple into every
``ProcessPoolExecutor`` task: a 21-cell grid over a 10⁴-job trace
serialized the identical workload 21 times and deserialized it 21 times in
the workers.  The :class:`WorkloadStore` replaces that with
register-once/reference-many:

* the parent packs the stream once (:func:`repro.core.packing.pack_jobs`)
  and registers it under its content digest — the same digest the result
  cache already computes, so registration is free of extra hashing;
* the pool is built with an ``initializer`` that ships the packed buffer
  to each worker exactly once per pool lifetime and hydrates it into a
  process-global cache (a rebuilt pool re-runs the initializer, so crash
  recovery re-seeds automatically);
* each cell task then carries only the 64-character digest — dispatch
  payloads shrink by >100x on real workloads (measured in
  ``benchmarks/bench_engine_overhead.py``) and workers deserialize the
  workload once per pool lifetime instead of once per cell.

The in-process serial path (and the engine's serial-degradation fallback)
bypasses the store entirely — it already holds the live job list.

Worker-side state is process-global by design: with the ``fork`` start
method the initializer runs in the child after the fork, with ``spawn`` it
receives the pickled buffer — either way :func:`resolve_worker_workload`
finds the hydrated tuple without any per-task shipping.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path
from typing import Sequence

from repro.core.job import Job
from repro.core.packing import PackedJobs, pack_jobs

__all__ = [
    "WorkloadStore",
    "init_worker",
    "resolve_worker_workload",
    "seed_worker_cache",
    "start_worker_heartbeat",
]


#: Worker-process-global cache: digest -> hydrated job tuple.  Populated by
#: the pool initializer (:func:`seed_worker_cache`), read by cell tasks.
_WORKER_WORKLOADS: dict[str, tuple[Job, ...]] = {}

#: Hydration counter, observable from tests: how many times this process
#: actually unpacked a workload (should be once per digest per pool).
_WORKER_HYDRATIONS = 0


def seed_worker_cache(entries: tuple[tuple[str, PackedJobs], ...]) -> None:
    """Pool initializer: hydrate packed workloads into the worker cache.

    Runs once per worker process per pool.  Idempotent per digest, so a
    worker inheriting an already-seeded cache via ``fork`` does not unpack
    again.
    """
    global _WORKER_HYDRATIONS
    from repro.core.packing import unpack_jobs

    for digest, packed in entries:
        if digest not in _WORKER_WORKLOADS:
            _WORKER_WORKLOADS[digest] = unpack_jobs(packed)
            _WORKER_HYDRATIONS += 1


#: Worker-process heartbeat thread, stamped with the pid it was started
#: in: ``fork`` does not carry threads into children, so a pool worker
#: inheriting this module's globals must start its own thread.
_HEARTBEAT_THREAD: tuple[int, threading.Thread] | None = None


def start_worker_heartbeat(heartbeat_dir: str, interval: float) -> None:
    """Start (or adopt) this process's heartbeat thread.

    A daemon thread touches ``<heartbeat_dir>/<pid>.hb`` every
    ``interval`` seconds; the driver's watchdog reads the mtimes (see
    :func:`repro.experiments.journal.freshest_heartbeat`).  The thread
    heartbeats even while the worker is grinding through a simulation —
    it proves the *process* is alive and scheduled, which is exactly the
    signal that distinguishes a long cell (fine, ``cell_timeout``'s
    business) from a SIGKILLed or SIGSTOPped worker (the watchdog's).
    Idempotent per process; fork-safe via the pid stamp.
    """
    global _HEARTBEAT_THREAD
    pid = os.getpid()
    if _HEARTBEAT_THREAD is not None and _HEARTBEAT_THREAD[0] == pid:
        return
    sentinel = Path(heartbeat_dir) / f"{pid}.hb"

    def beat() -> None:
        while True:
            try:
                sentinel.touch()
            except OSError:
                return  # heartbeat dir removed: the run is over
            time.sleep(interval)

    thread = threading.Thread(
        target=beat, name=f"repro-heartbeat-{pid}", daemon=True
    )
    thread.start()
    _HEARTBEAT_THREAD = (pid, thread)


def init_worker(
    entries: tuple[tuple[str, PackedJobs], ...] | None,
    heartbeat_dir: str | None,
    heartbeat_interval: float | None,
) -> None:
    """Combined pool initializer: seed the workload cache, start heartbeats.

    Either half is optional: legacy per-cell-pickle dispatch passes
    ``entries=None`` (nothing to seed) and a watchdog-less engine passes
    ``heartbeat_dir=None``.  Runs once per worker process per pool; a
    rebuilt pool re-runs it in every fresh worker, which is what re-seeds
    the store and re-arms the heartbeat after a crash — including on
    resume, where the journal replay changes nothing about worker setup.
    """
    if entries is not None:
        seed_worker_cache(entries)
    if heartbeat_dir is not None and heartbeat_interval is not None:
        start_worker_heartbeat(heartbeat_dir, heartbeat_interval)


def resolve_worker_workload(digest: str) -> tuple[Job, ...]:
    """The hydrated job stream for ``digest`` inside a pool worker.

    Raises :class:`RuntimeError` when the digest was never seeded — a
    bookkeeping bug, surfaced loudly so the engine's retry/serial-fallback
    machinery reports it instead of simulating the wrong workload.
    """
    try:
        return _WORKER_WORKLOADS[digest]
    except KeyError:
        raise RuntimeError(
            f"workload {digest[:12]}... was not seeded into this worker; "
            f"seeded: {[d[:12] for d in _WORKER_WORKLOADS]} — was the pool "
            f"built without the WorkloadStore initializer?"
        ) from None


class WorkloadStore:
    """Parent-side registry of packed workloads, keyed by content digest.

    One instance lives on each :class:`~repro.experiments.engine.
    ExperimentEngine`; ``register`` packs at most once per digest (repeat
    runs over the same stream reuse the packed buffer), and ``entries()``
    supplies the pool-initializer arguments.  The store keeps only the
    most recent :data:`MAX_ENTRIES` workloads so long-lived engines
    sweeping many workloads do not accumulate every stream they ever saw.
    """

    #: Packed workloads retained; oldest evicted first (insertion order).
    MAX_ENTRIES = 4

    def __init__(self) -> None:
        self._packed: dict[str, PackedJobs] = {}

    def __len__(self) -> int:
        return len(self._packed)

    def register(self, digest: str, jobs: Sequence[Job]) -> PackedJobs:
        """Pack ``jobs`` under ``digest`` (idempotent per digest)."""
        packed = self._packed.get(digest)
        if packed is None:
            packed = pack_jobs(jobs)
            while len(self._packed) >= self.MAX_ENTRIES:
                self._packed.pop(next(iter(self._packed)))
            self._packed[digest] = packed
        return packed

    def get(self, digest: str) -> PackedJobs | None:
        return self._packed.get(digest)

    def entries(self, digest: str) -> tuple[tuple[str, PackedJobs], ...]:
        """Initializer payload for a pool that will run cells of ``digest``."""
        packed = self._packed.get(digest)
        if packed is None:
            raise KeyError(f"workload {digest[:12]}... is not registered")
        return ((digest, packed),)

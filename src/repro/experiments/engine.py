"""Parallel experiment engine with content-addressed result caching.

The paper's workflow is "run every candidate algorithm over every workload,
compare the tables".  :class:`ExperimentEngine` executes that grid:

* **parallel fan-out** — independent grid cells (config × workload ×
  regime) run concurrently on a ``ProcessPoolExecutor``; each worker
  rebuilds its scheduler from the registry, so nothing unpicklable ever
  crosses the process boundary and user-registered rows work unchanged;
* **content-addressed caching** — every cell result is stored on disk
  under a deterministic fingerprint of the job stream, machine size,
  configuration, regime and cache format version.  A cache hit skips the
  simulation entirely, so re-running a grid after adding one algorithm
  only simulates the new cells, and an interrupted run resumes from the
  cells that already finished;
* **structured progress events** — ``grid-started``, ``cell-started``,
  ``cache-hit``, ``cell-finished`` and ``grid-finished`` events carry the
  cell key, wall-clock and objective; the CLI renders them and
  :func:`repro.analysis.persistence.append_events` archives them as JSON
  lines.

Determinism: the simulation is a pure function of (jobs, config,
machine), so parallel and serial runs produce bit-identical objectives;
only ``compute_time`` (measured wall-clock inside scheduler callbacks) is
machine- and run-dependent, and a cached cell replays the ``compute_time``
of the run that produced it.

``run_grid`` in :mod:`repro.experiments.runner` is a thin serial wrapper
over this engine, so all existing callers share the same execution path.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from repro.core.job import Job
from repro.experiments.runner import (
    CellResult,
    GridResult,
    ProgressFn,
    simulate_cell,
)
from repro.schedulers.registry import SchedulerConfig, paper_configurations

#: Bump when the cached payload or the simulation semantics change; old
#: entries then miss instead of replaying stale results.
CACHE_VERSION = 2


# -- fingerprints --------------------------------------------------------------


def fingerprint_jobs(jobs: Sequence[Job]) -> str:
    """Deterministic content digest of a job stream.

    Covers every field the simulator reads (``repr`` of floats keeps full
    precision, so streams differing in the last bit get distinct digests).
    ``meta`` is excluded: no scheduler may read it.
    """
    hasher = hashlib.sha256()
    for job in jobs:
        record = (
            f"{job.job_id},{job.submit_time!r},{job.nodes},{job.runtime!r},"
            f"{job.estimate!r},{job.user},{job.weight!r}\n"
        )
        hasher.update(record.encode("ascii"))
    return hasher.hexdigest()


def cell_fingerprint(
    jobs_digest: str,
    config: SchedulerConfig,
    *,
    total_nodes: int,
    weighted: bool,
    recompute_threshold: float = 2.0 / 3.0,
) -> str:
    """Content address of one grid cell result."""
    payload = json.dumps(
        {
            "version": CACHE_VERSION,
            "jobs": jobs_digest,
            "row": config.row,
            "column": config.column,
            "total_nodes": total_nodes,
            "weighted": weighted,
            "recompute_threshold": repr(recompute_threshold),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


# -- the on-disk cache ---------------------------------------------------------


class ResultCache:
    """Content-addressed cell store: one JSON file per fingerprint.

    Keys are the hex digests from :func:`cell_fingerprint`; values are
    :class:`CellResult` payloads.  Writes are atomic (tmp file + rename),
    so a killed run never leaves a truncated entry; unreadable or
    version-skewed entries read as misses.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> CellResult | None:
        from repro.analysis.persistence import cell_from_dict

        path = self.path(fingerprint)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if payload.get("version") != CACHE_VERSION:
            return None
        try:
            return cell_from_dict(payload["cell"])
        except (KeyError, TypeError, ValueError):
            return None

    def put(self, fingerprint: str, cell: CellResult) -> None:
        from repro.analysis.persistence import cell_to_dict

        path = self.path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"version": CACHE_VERSION, "cell": cell_to_dict(cell)}
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        tmp.replace(path)


# -- progress events -----------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ProgressEvent:
    """One structured engine event.

    ``kind`` is ``grid-started``, ``cell-started``, ``cache-hit``,
    ``cell-finished`` or ``grid-finished``; ``key`` is the cell key for
    cell-level events and ``None`` for grid-level ones.  ``wall_time`` is
    the wall-clock of the finished unit (whole grid for grid-finished);
    cache hits report the objective but no wall time.
    """

    kind: str
    workload_name: str
    weighted: bool
    key: str | None = None
    wall_time: float | None = None
    objective: float | None = None
    cached: bool = False


EventFn = Callable[[ProgressEvent], None]


@dataclass(slots=True)
class RunStats:
    """Execution accounting for one engine run."""

    total_cells: int = 0
    cache_hits: int = 0
    simulated: int = 0
    wall_time: float = 0.0


# -- the engine ----------------------------------------------------------------


def _run_cell_task(
    args: tuple[str, str, tuple[Job, ...], int, bool, float],
) -> tuple[str, CellResult, float]:
    """Pool worker: simulate one cell, returning (key, result, wall-clock).

    Takes primitive row/column keys and rebuilds the scheduler from the
    registry inside the worker — with the fork start method the child
    inherits user registrations made before the run.
    """
    row, column, jobs, total_nodes, weighted, recompute_threshold = args
    config = SchedulerConfig(row=row, column=column)
    t0 = time.perf_counter()
    cell = simulate_cell(
        config,
        jobs,
        total_nodes=total_nodes,
        weighted=weighted,
        recompute_threshold=recompute_threshold,
    )
    return config.key, cell, time.perf_counter() - t0


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork so in-process registry registrations reach the workers."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


class ExperimentEngine:
    """Runs scheduler grids in parallel with content-addressed caching.

    Parameters
    ----------
    workers:
        Worker processes for cell fan-out.  ``1`` (the default) runs
        serially in-process — exactly the old ``run_grid`` behaviour.
    cache:
        A :class:`ResultCache`, a directory path to create one in, or
        ``None`` to disable caching.
    on_event:
        Callback receiving every :class:`ProgressEvent`.

    ``stats`` holds the :class:`RunStats` of the most recent :meth:`run`.
    """

    def __init__(
        self,
        *,
        workers: int | None = None,
        cache: ResultCache | str | Path | None = None,
        on_event: EventFn | None = None,
    ) -> None:
        self.workers = max(1, workers if workers is not None else 1)
        self.cache = ResultCache(cache) if isinstance(cache, (str, Path)) else cache
        self.on_event = on_event
        self.stats = RunStats()

    def _emit(self, event: ProgressEvent) -> None:
        if self.on_event is not None:
            self.on_event(event)

    def run(
        self,
        jobs: Sequence[Job],
        *,
        workload_name: str = "workload",
        total_nodes: int = 256,
        weighted: bool = False,
        configs: Sequence[SchedulerConfig] | None = None,
        recompute_threshold: float = 2.0 / 3.0,
        progress: ProgressFn | None = None,
        reference_key: str | None = None,
    ) -> GridResult:
        """Run one grid; the parallel, cached equivalent of ``run_grid``.

        Cells are fingerprinted first; hits come from the cache, misses
        are simulated (fanned out when ``workers > 1``) and written back
        as they finish — so an interrupted run resumes where it stopped.
        ``grid.cells`` is always in config order regardless of completion
        order, and the ``progress`` callback (``run_grid`` compatible)
        fires in that same order after all cells exist.
        """
        jobs = list(jobs)
        chosen = list(configs) if configs is not None else list(paper_configurations())
        grid = GridResult(
            workload_name=workload_name,
            weighted=weighted,
            total_nodes=total_nodes,
            n_jobs=len(jobs),
            reference_key=reference_key,
        )
        stats = RunStats(total_cells=len(chosen))
        self.stats = stats
        t_start = time.perf_counter()
        self._emit(
            ProgressEvent(
                kind="grid-started", workload_name=workload_name, weighted=weighted
            )
        )

        digest = fingerprint_jobs(jobs)
        results: dict[str, CellResult] = {}
        pending: list[tuple[SchedulerConfig, str]] = []
        for config in chosen:
            fp = cell_fingerprint(
                digest,
                config,
                total_nodes=total_nodes,
                weighted=weighted,
                recompute_threshold=recompute_threshold,
            )
            cell = self.cache.get(fp) if self.cache is not None else None
            if cell is not None:
                results[config.key] = cell
                stats.cache_hits += 1
                self._emit(
                    ProgressEvent(
                        kind="cache-hit",
                        workload_name=workload_name,
                        weighted=weighted,
                        key=config.key,
                        objective=cell.objective,
                        cached=True,
                    )
                )
            else:
                pending.append((config, fp))

        if self.workers > 1 and len(pending) > 1:
            self._run_parallel(
                pending, jobs, grid, stats, recompute_threshold, results
            )
        else:
            self._run_serial(pending, jobs, grid, stats, recompute_threshold, results)

        for config in chosen:
            grid.cells[config.key] = results[config.key]
            if progress is not None:
                progress(config, results[config.key])
        stats.wall_time = time.perf_counter() - t_start
        self._emit(
            ProgressEvent(
                kind="grid-finished",
                workload_name=workload_name,
                weighted=weighted,
                wall_time=stats.wall_time,
            )
        )
        return grid

    def _run_serial(
        self,
        pending: list[tuple[SchedulerConfig, str]],
        jobs: list[Job],
        grid: GridResult,
        stats: RunStats,
        recompute_threshold: float,
        results: dict[str, CellResult],
    ) -> None:
        for config, fp in pending:
            self._emit(
                ProgressEvent(
                    kind="cell-started",
                    workload_name=grid.workload_name,
                    weighted=grid.weighted,
                    key=config.key,
                )
            )
            t0 = time.perf_counter()
            cell = simulate_cell(
                config,
                jobs,
                total_nodes=grid.total_nodes,
                weighted=grid.weighted,
                recompute_threshold=recompute_threshold,
            )
            wall = time.perf_counter() - t0
            self._record(config.key, fp, cell, wall, grid, stats, results)

    def _run_parallel(
        self,
        pending: list[tuple[SchedulerConfig, str]],
        jobs: list[Job],
        grid: GridResult,
        stats: RunStats,
        recompute_threshold: float,
        results: dict[str, CellResult],
    ) -> None:
        job_tuple = tuple(jobs)
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(pending)), mp_context=_pool_context()
        ) as pool:
            futures = {}
            for config, fp in pending:
                self._emit(
                    ProgressEvent(
                        kind="cell-started",
                        workload_name=grid.workload_name,
                        weighted=grid.weighted,
                        key=config.key,
                    )
                )
                future = pool.submit(
                    _run_cell_task,
                    (
                        config.row,
                        config.column,
                        job_tuple,
                        grid.total_nodes,
                        grid.weighted,
                        recompute_threshold,
                    ),
                )
                futures[future] = fp
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in done:
                    key, cell, wall = future.result()
                    self._record(key, futures[future], cell, wall, grid, stats, results)

    def _record(
        self,
        key: str,
        fingerprint: str,
        cell: CellResult,
        wall: float,
        grid: GridResult,
        stats: RunStats,
        results: dict[str, CellResult],
    ) -> None:
        results[key] = cell
        stats.simulated += 1
        if self.cache is not None:
            self.cache.put(fingerprint, cell)
        self._emit(
            ProgressEvent(
                kind="cell-finished",
                workload_name=grid.workload_name,
                weighted=grid.weighted,
                key=key,
                wall_time=wall,
                objective=cell.objective,
            )
        )

"""Parallel experiment engine with content-addressed result caching.

The paper's workflow is "run every candidate algorithm over every workload,
compare the tables".  :class:`ExperimentEngine` executes that grid:

* **parallel fan-out** — independent grid cells (config × workload ×
  regime) run concurrently on a ``ProcessPoolExecutor``; each worker
  rebuilds its scheduler from the registry, so nothing unpicklable ever
  crosses the process boundary and user-registered rows work unchanged;
* **zero-copy workload distribution** — the job stream is packed once
  into columnar arrays (:mod:`repro.core.packing`) and seeded into each
  worker by the pool initializer; cell tasks then carry only the stream's
  64-character digest, so dispatch payloads shrink >100x and each worker
  deserializes the workload once per pool lifetime instead of once per
  cell (see :class:`repro.experiments.workload_store.WorkloadStore`; the
  serial path and the degradation fallback bypass the store);
* **content-addressed caching** — every cell result is stored on disk
  under a deterministic fingerprint of the job stream, machine size,
  configuration, regime and cache format version.  A cache hit skips the
  simulation entirely, so re-running a grid after adding one algorithm
  only simulates the new cells, and an interrupted run resumes from the
  cells that already finished;
* **structured progress events** — ``grid-started``, ``cell-started``,
  ``cache-hit``, ``cell-finished``, ``cell-retry``, ``engine-degraded``
  and ``grid-finished`` events carry the cell key, wall-clock and
  objective; the CLI renders them and
  :func:`repro.analysis.persistence.append_events` archives them as JSON
  lines;
* **pluggable execution backends** — the dispatch loop drives an
  abstract :class:`~repro.experiments.backends.base.ExecutionBackend`:
  the default local process pool, a sharded multi-pool variant that
  contains crashes to one shard, and a remote backend speaking a
  length-prefixed checksummed socket protocol to
  ``repro.experiments.backends.worker`` processes (see
  docs/architecture.md, "Execution backends").  Work is assigned under
  *leases*: an expired lease re-enters the retry ladder and a late
  duplicate result is deduplicated idempotently by fingerprint;
* **crash tolerance** — a worker crash (or a cell exceeding
  ``cell_timeout``) does not lose the grid: the affected cells are retried
  with jittered exponential backoff, the backend is reset when it breaks
  (re-seeding the workload store), and once the retry/reset budgets are
  exhausted the surviving cells degrade gracefully down the backend
  ladder — remote -> sharded -> local pool -> in-process serial — so the
  grid always completes (deterministic cell errors then surface from the
  serial run, where they belong).  Backoff never blocks the dispatch
  loop: a retried cell receives a *resubmit deadline* folded into the
  collect timeout, so every other in-flight cell keeps being collected
  while the pause elapses;
* **scenario algebra** — grids can run under a compiled
  :class:`~repro.scenarios.spec.ScenarioSpec` (failures, cancellations,
  flash crowds, runtime variability, closed-loop arrivals — any
  registered component): the spec compiles once per run, its canonical
  digest joins every cell fingerprint and the run manifest, and
  :meth:`ExperimentEngine.run_scenarios` sweeps named specs over one
  workload (:meth:`ExperimentEngine.run_failure_scenarios` is a
  compatibility veneer translating the old
  :class:`~repro.failures.trace.FailureTrace` + recovery pairs);
* **run lifecycle** — every cached run keeps an append-only
  :class:`~repro.experiments.journal.RunJournal` under the cache
  directory, keyed by a deterministic run id: the manifest plus one
  fsynced, checksummed record per cell state transition.  A killed
  driver process leaves a resumable journal; :meth:`ExperimentEngine.resume`
  (CLI ``--resume RUN_ID``) replays it, verifies the manifest still
  matches the requested grid, skips completed cells via the cache and
  re-dispatches only the remainder.  SIGINT/SIGTERM trigger a **graceful
  shutdown** (stop dispatching, journal in-flight cells as
  ``interrupted``, terminate the pool, raise
  :class:`~repro.experiments.journal.RunInterrupted`), a driver-side
  **watchdog** detects silently killed or stopped workers through
  mtime-touched heartbeat sentinels and routes them into the retry path,
  and :func:`~repro.experiments.journal.verify_run` audits a journal
  against the cache after the fact.

Determinism: the simulation is a pure function of (jobs, config,
machine), so parallel and serial runs produce bit-identical objectives;
only ``compute_time`` (measured wall-clock inside scheduler callbacks) is
machine- and run-dependent, and a cached cell replays the ``compute_time``
of the run that produced it.

``run_grid`` in :mod:`repro.experiments.runner` is a thin serial wrapper
over this engine, so all existing callers share the same execution path.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import random
import signal
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Mapping, NamedTuple, Sequence

from repro.core.job import Job
from repro.core.packing import job_record
from repro.core.simulator import Cancellation
from repro.experiments.backends.base import (
    BackendUnavailable,
    CellTask,
    ExecutionBackend,
)
from repro.experiments.backends.cache import (
    CacheStore,
    CacheStoreHealth,
    LocalDirStore,
    RemoteCacheStore,
    store_from_spec,
)
from repro.experiments.backends.pool import (
    PoolBackend,
    pool_context,
    terminate_pool,
)
from repro.experiments.backends.remote import RemoteWorkerBackend
from repro.experiments.journal import (
    ManifestMismatchError,
    RunInterrupted,
    RunJournal,
    journal_path,
    manifest_diffs,
    manifest_for,
    read_journal,
)
from repro.experiments.runner import (
    CellResult,
    GridResult,
    ProgressFn,
    simulate_cell,
)
from repro.experiments.workload_store import (
    WorkloadStore,
    resolve_worker_workload,
)
from repro.resilience import BreakerTransition, RetryPolicy
from repro.scenarios import ScenarioSpec, spec_from_legacy
from repro.schedulers.registry import SchedulerConfig, paper_configurations

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.failures.trace import FailureTrace

#: Bump when the cached payload or the simulation semantics change; old
#: entries then miss instead of replaying stale results.  v4: cell
#: fingerprints gained the canonical ``scenario`` digest (the unified
#: scenario algebra of :mod:`repro.scenarios` — see docs/architecture.md,
#: "Scenario algebra", for the decision record).
CACHE_VERSION = 4


# -- fingerprints --------------------------------------------------------------


def fingerprint_jobs(jobs: Sequence[Job]) -> str:
    """Deterministic content digest of a job stream.

    Covers every field the simulator reads (``repr`` of floats keeps full
    precision, so streams differing in the last bit get distinct digests);
    ``meta`` has never been part of a stream's cache identity.  Records
    stream into the hasher one job at a time through the shared
    :func:`repro.core.packing.job_record` formatter — the byte stream, and
    therefore the digest, is identical to what
    :func:`repro.core.packing.fingerprint_packed` computes for the packed
    form of the same jobs, so CACHE_VERSION stays put.
    """
    hasher = hashlib.sha256()
    for job in jobs:
        hasher.update(
            job_record(
                job.job_id,
                job.submit_time,
                job.nodes,
                job.runtime,
                job.estimate,
                job.user,
                job.weight,
            ).encode("ascii")
        )
    return hasher.hexdigest()


def cell_fingerprint(
    jobs_digest: str,
    config: SchedulerConfig,
    *,
    total_nodes: int,
    weighted: bool,
    recompute_threshold: float = 2.0 / 3.0,
    failures_digest: str = "",
    recovery: str = "",
    scenario: str = "",
) -> str:
    """Content address of one grid cell result.

    ``scenario`` is the canonical :meth:`ScenarioSpec.digest` of the
    scenario the cell ran under (``""`` for the healthy baseline) —
    because compilation is a pure function of ``(spec, jobs, seed)``, the
    pair ``(jobs digest, scenario digest)`` fully determines the compiled
    stream and every disturbance event.  ``failures_digest``
    (:meth:`FailureTrace.fingerprint`) and ``recovery`` (the canonical
    recovery-policy spec) additionally pin the *realized* failure inputs,
    so direct engine calls that bypass the spec layer still never collide
    in the cache.
    """
    payload = json.dumps(
        {
            "version": CACHE_VERSION,
            "jobs": jobs_digest,
            "row": config.row,
            "column": config.column,
            "total_nodes": total_nodes,
            "weighted": weighted,
            "recompute_threshold": repr(recompute_threshold),
            "failures": failures_digest,
            "recovery": recovery,
            "scenario": scenario,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


# -- the on-disk cache ---------------------------------------------------------


@dataclass(frozen=True, slots=True)
class CachePruneStats:
    """Outcome of one :meth:`ResultCache.prune` sweep."""

    scanned: int
    stale_evicted: int
    quarantined: int
    tmp_removed: int

    def describe(self) -> str:
        return (
            f"cache: scanned {self.scanned} entr(ies), "
            f"evicted {self.stale_evicted} stale, "
            f"quarantined {self.quarantined} corrupt, "
            f"removed {self.tmp_removed} stray tmp file(s)"
        )


class ResultCache:
    """Content-addressed cell store: one JSON file per fingerprint.

    Keys are the hex digests from :func:`cell_fingerprint`; values are
    :class:`CellResult` payloads.  Writes are crash-safe *and* race-safe
    (see :class:`~repro.experiments.backends.cache.LocalDirStore`): the
    payload goes to a temporary file whose name carries the pid and a
    random token, finalized with ``os.replace``, so a killed run never
    leaves a truncated entry and concurrent engines filling the same
    directory never collide on the temp name.

    An optional ``remote`` :class:`~repro.experiments.backends.cache.
    CacheStore` turns the cache into a fleet-shared one, read-through /
    write-back: a local miss consults the remote store, and every local
    write is mirrored best-effort.  Remote payloads are **validated
    before they are trusted** — only an entry that parses as a current-
    version cell is returned or written back locally, so a corrupt,
    stale or truncated entry served by a remote cache can never enter a
    ``GridResult`` (``remote_rejected`` counts such refusals,
    ``remote_hits`` the accepted ones).  An unreachable remote store
    degrades the run to local-only caching; it never blocks or fails it.

    Reads distinguish three failure modes: a missing file or I/O error is
    a plain miss; a version-skewed entry is a miss that also **evicts**
    the entry (fingerprints embed ``CACHE_VERSION``, so no current or
    future key can ever hit it again — leaving it would accumulate dead
    files forever); an entry that *parses wrong* — truncated JSON,
    malformed payload — is quarantined by renaming it to
    ``<fingerprint>.corrupt`` so the corruption is visible on disk
    instead of silently re-simulated forever.  :meth:`prune` sweeps the
    whole store the same way without needing the fingerprints, and
    :meth:`status` classifies an entry without mutating anything (the
    ``verify_run`` audit path).
    """

    #: Orphaned ``.tmp`` files older than this are removed by ``prune``
    #: (younger ones may belong to a concurrently running engine).
    TMP_MAX_AGE = 3600.0

    def __init__(
        self,
        root: str | Path,
        *,
        remote: "CacheStore | str | None" = None,
    ) -> None:
        self.root = Path(root)
        self._local = LocalDirStore(self.root)
        if isinstance(remote, str):
            remote = store_from_spec(remote)
        self.remote: "CacheStore | None" = remote
        #: Local misses served by the remote store (validated payloads).
        self.remote_hits = 0
        #: Remote payloads refused on validation (corrupt/stale/skewed).
        self.remote_rejected = 0

    def path(self, fingerprint: str) -> Path:
        return self._local.path(fingerprint)

    def get(self, fingerprint: str) -> CellResult | None:
        from repro.analysis.persistence import cell_from_dict

        path = self.path(fingerprint)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return self._get_remote(fingerprint)  # plain local miss
        try:
            payload = json.loads(text)
            if payload.get("version") != CACHE_VERSION:
                # Version-skewed entries can never hit again (the version
                # is part of every fingerprint): evict instead of letting
                # them accumulate forever.
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - racing cleanup
                    pass
                return self._get_remote(fingerprint)
            return cell_from_dict(payload["cell"])
        except (AttributeError, KeyError, TypeError, ValueError):
            self._quarantine(path)
            return self._get_remote(fingerprint)

    def _get_remote(self, fingerprint: str) -> CellResult | None:
        """Read-through: validate a remote payload before trusting it."""
        from repro.analysis.persistence import cell_from_dict

        if self.remote is None:
            return None
        text = self.remote.load(fingerprint)
        if text is None:
            return None
        verdict = self._classify(text)
        if verdict != "hit":
            # Never written locally: a poisoned remote entry is counted,
            # handed to the store's own quarantine hook (the object store
            # moves it under its ``quarantine/`` prefix; the fleet store
            # leaves it to the server), and recomputed.
            self.remote_rejected += 1
            self.remote.quarantine(fingerprint, text, verdict)
            return None
        self.remote_hits += 1
        self._local.save(fingerprint, text)  # write-back for next time
        return cell_from_dict(json.loads(text)["cell"])

    def status(self, fingerprint: str) -> str:
        """Classify an entry without touching it.

        Returns ``"hit"`` (readable, current version), ``"miss"`` (no
        file), ``"stale"`` (version skew) or ``"corrupt"`` (unparseable)
        — unlike :meth:`get`, nothing is evicted or quarantined, so
        audits are repeatable.
        """
        try:
            return self._classify(self.path(fingerprint).read_text(encoding="utf-8"))
        except OSError:
            return "miss"

    @staticmethod
    def _classify(text: str) -> str:
        from repro.analysis.persistence import cell_from_dict

        try:
            payload = json.loads(text)
        except ValueError:
            return "corrupt"
        if not isinstance(payload, dict):
            return "corrupt"
        if payload.get("version") != CACHE_VERSION:
            return "stale"
        try:
            cell_from_dict(payload["cell"])
        except (AttributeError, KeyError, TypeError, ValueError):
            return "corrupt"
        return "hit"

    def prune(self) -> "CachePruneStats":
        """Sweep the store: evict stale entries, quarantine corrupt ones.

        Version-skewed entries are unlinked (their fingerprints are
        unreachable by construction), unparseable ones become
        ``*.corrupt``, and orphaned temp files older than
        :data:`TMP_MAX_AGE` — a crashed writer's leftovers — are removed.
        Used by ``repro-experiments --list-runs`` so long-lived cache
        directories stay honest about what they hold.
        """
        scanned = stale = quarantined = removed_tmp = 0
        if not self.root.is_dir():
            return CachePruneStats(0, 0, 0, 0)
        now = time.time()
        for path in self.root.glob("??/*.json"):
            scanned += 1
            try:
                verdict = self._classify(path.read_text(encoding="utf-8"))
            except OSError:  # pragma: no cover - racing cleanup
                continue
            if verdict == "stale":
                try:
                    path.unlink()
                    stale += 1
                except OSError:  # pragma: no cover - racing cleanup
                    pass
            elif verdict == "corrupt":
                if self._quarantine(path) is not None:
                    quarantined += 1
        for tmp in self.root.glob("??/.*.tmp"):
            try:
                if now - tmp.stat().st_mtime > self.TMP_MAX_AGE:
                    tmp.unlink()
                    removed_tmp += 1
            except OSError:  # pragma: no cover - racing cleanup
                pass
        return CachePruneStats(scanned, stale, quarantined, removed_tmp)

    def _quarantine(self, path: Path) -> Path | None:
        """Move a corrupt entry aside as ``*.corrupt``; best effort."""
        target = path.with_suffix(".corrupt")
        try:
            os.replace(path, target)
        except OSError:  # pragma: no cover - racing cleanup
            return None
        return target

    def put(self, fingerprint: str, cell: CellResult) -> None:
        from repro.analysis.persistence import cell_to_dict

        text = json.dumps({"version": CACHE_VERSION, "cell": cell_to_dict(cell)})
        self._local.save(fingerprint, text)
        if self.remote is not None:
            self.remote.save(fingerprint, text)  # write-back, best effort


# -- progress events -----------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ProgressEvent:
    """One structured engine event.

    ``kind`` is ``grid-started``, ``cell-started``, ``cache-hit``,
    ``cell-finished``, ``cell-retry``, ``cell-duplicate`` (a late result
    for an already-completed cell, deduplicated), ``engine-degraded``,
    ``cache-degraded`` (the remote cache store's circuit breaker tripped
    open: the run continues on local-only caching for one cooldown) or
    ``grid-finished``; ``key`` is the cell key for cell-level events and
    ``None`` for grid-level ones.  ``wall_time`` is the wall-clock of the
    finished unit (whole grid for grid-finished; the backoff pause for
    cell-retry); cache hits report the objective but no wall time.
    ``detail`` carries the human-readable reason for retry/degradation
    events.  Grid-level events of a journaled run carry its ``run_id``
    (the ``--resume`` handle); it is ``None`` for journal-less runs and
    for cell-level events.
    """

    kind: str
    workload_name: str
    weighted: bool
    key: str | None = None
    wall_time: float | None = None
    objective: float | None = None
    cached: bool = False
    detail: str | None = None
    run_id: str | None = None


EventFn = Callable[[ProgressEvent], None]


@dataclass(slots=True)
class RunStats:
    """Execution accounting for one engine run."""

    total_cells: int = 0
    cache_hits: int = 0
    simulated: int = 0
    wall_time: float = 0.0
    #: Worker-side retries (crashes or timeouts) during this run.
    retries: int = 0
    #: Backend resets (pool rebuilds, remote reconnect sweeps) forced by
    #: broken or hung backends.
    pool_rebuilds: int = 0
    #: Cells that fell back to in-process serial execution.
    degraded_cells: int = 0
    #: Late results for already-completed cells, dropped idempotently
    #: (a revoked lease whose worker answered anyway).
    duplicate_results: int = 0
    #: Name of the execution backend that dispatched this run
    #: ("serial" when no backend was started).
    backend: str = "serial"
    #: Deterministic run id of the journal backing this run (``None``
    #: when the run was not journaled).
    run_id: str | None = None
    #: Local misses served by the remote cache store during this run
    #: (validated payloads only).
    remote_hits: int = 0
    #: Remote cache payloads refused on validation during this run.
    remote_rejected: int = 0
    #: Poisoned remote entries quarantined during this run (transport
    #: integrity failures plus validation rejections the store moved
    #: aside).
    quarantined: int = 0
    #: Times the remote cache store's circuit breaker tripped open
    #: during this run (each one a local-only degradation period).
    cache_degraded: int = 0


# -- the engine ----------------------------------------------------------------


def _run_cell_task(
    args: tuple[
        str, str, "tuple[Job, ...] | str", int, bool, float, object, str | None,
        tuple, bool, str | None,
    ],
) -> tuple[str, CellResult, float]:
    """Pool worker: simulate one cell, returning (key, result, wall-clock).

    Takes primitive row/column keys and rebuilds the scheduler from the
    registry inside the worker — with the fork start method the child
    inherits user registrations made before the run.  The jobs slot is
    either the job tuple itself (legacy per-cell-pickle path) or the
    workload digest, resolved against the process-global cache the pool
    initializer seeded — the zero-copy path.  Scenario inputs travel
    *compiled* (the driver compiles the spec exactly once per run):
    ``failures`` as a pickled :class:`FailureTrace`, ``recovery`` as a
    spec string, ``cancellations`` as a tuple of plain
    :class:`~repro.core.simulator.Cancellation` events and the
    estimate-limit kill policy as a bool — nothing unpicklable crosses
    the process boundary.  The trailing ``backend`` slot selects the
    simulation kernels in the worker (cell results are bit-identical
    either way, so it never enters a fingerprint).
    """
    (
        row,
        column,
        jobs,
        total_nodes,
        weighted,
        recompute_threshold,
        failures,
        recovery,
        cancellations,
        cancel_over_limit,
        backend,
    ) = args
    if isinstance(jobs, str):
        jobs = resolve_worker_workload(jobs)
    config = SchedulerConfig(row=row, column=column)
    t0 = time.perf_counter()
    cell = simulate_cell(
        config,
        jobs,
        total_nodes=total_nodes,
        weighted=weighted,
        recompute_threshold=recompute_threshold,
        failures=failures,  # type: ignore[arg-type]
        recovery=recovery,
        cancellations=cancellations,
        cancel_over_limit=cancel_over_limit,
        backend=backend,
    )
    return config.key, cell, time.perf_counter() - t0


# The pool primitives moved to repro.experiments.backends.pool with the
# ExecutionBackend split; the private names stay importable for callers
# that reached into them (benchmarks, notebooks).
_pool_context = pool_context
_terminate_pool = terminate_pool


def _watchdog_defaults() -> "tuple[float | None, float | None]":
    """Watchdog ``(interval, timeout)`` from ``REPRO_WATCHDOG_*`` env vars.

    ``REPRO_WATCHDOG_INTERVAL`` overrides the 15 s heartbeat default
    (``0``/``off``/``none``/``disabled`` turns the watchdog off);
    ``REPRO_WATCHDOG_TIMEOUT`` overrides the staleness budget that
    otherwise defaults to ``max(4 * interval, 30.0)``.  Explicit engine
    kwargs always win over the environment.
    """
    interval: float | None = 15.0
    raw = os.environ.get("REPRO_WATCHDOG_INTERVAL", "").strip()
    if raw:
        if raw.lower() in ("0", "off", "none", "disabled"):
            interval = None
        else:
            try:
                interval = float(raw)
            except ValueError:
                raise ValueError(
                    f"REPRO_WATCHDOG_INTERVAL must be a number of seconds "
                    f"or 'off', got {raw!r}"
                ) from None
    timeout: float | None = None
    raw = os.environ.get("REPRO_WATCHDOG_TIMEOUT", "").strip()
    if raw:
        try:
            timeout = float(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_WATCHDOG_TIMEOUT must be a number of seconds, "
                f"got {raw!r}"
            ) from None
    return interval, timeout


#: Sentinel distinguishing "kwarg not passed" (environment default
#: applies) from an explicit ``heartbeat_interval=None`` (watchdog off).
_WATCHDOG_UNSET: object = object()


@dataclass(frozen=True, slots=True)
class FailureScenario:
    """One named failure-injection scenario for a grid sweep.

    ``failures=None`` (with any ``recovery``) is the healthy baseline;
    ``recovery`` is a canonical spec string (see
    :func:`repro.failures.recovery.recovery_from_spec`).  Kept as the
    stable surface of :meth:`ExperimentEngine.run_failure_scenarios`;
    internally each one is translated into a
    :class:`~repro.scenarios.spec.ScenarioSpec` and swept through
    :meth:`ExperimentEngine.run_scenarios`.
    """

    name: str
    failures: "FailureTrace | None" = None
    recovery: str | None = None


class _PreparedRun(NamedTuple):
    """One grid request, normalized: the inputs of run id and dispatch.

    ``jobs`` and ``digest`` are the *compiled* stream (arrival/transform
    components folded in); ``cancellations``, ``failures``, ``recovery``
    and ``cancel_over_limit`` are the compiled disturbance inputs; and
    ``scenario_digest`` is the canonical spec digest (``""`` for the
    healthy baseline) that joins every cell fingerprint.
    """

    jobs: list[Job]
    chosen: list[SchedulerConfig]
    digest: str
    failures: "FailureTrace | None"
    recovery: str | None
    failures_digest: str
    recovery_spec: str
    cancellations: "tuple[Cancellation, ...]"
    cancel_over_limit: bool
    scenario_digest: str
    manifest: dict


class ExperimentEngine:
    """Runs scheduler grids in parallel with content-addressed caching.

    Parameters
    ----------
    workers:
        Worker processes for cell fan-out.  ``1`` (the default) runs
        serially in-process — exactly the old ``run_grid`` behaviour.
    cache:
        A :class:`ResultCache`, a directory path to create one in, or
        ``None`` to disable caching.
    on_event:
        Callback receiving every :class:`ProgressEvent`.
    cell_timeout:
        Per-cell wall-clock budget in seconds (parallel runs only).  A
        cell still unfinished past it is presumed hung: the pool is torn
        down, the overdue cell charged a retry, and every other in-flight
        cell resubmitted for free.  ``None`` (the default) never times out.
    max_retries:
        Worker-side attempts beyond the first for a cell whose worker
        crashed, timed out, or raised.  Exhausting the budget sends the
        cell to the in-process serial fallback — where a deterministic
        error reproduces and surfaces, and a flaky one recovers.
    retry_backoff:
        Base pause before retry ``n`` (seconds); the actual pause comes
        from a shared :class:`repro.resilience.RetryPolicy` —
        exponential doubling jittered by ×0.5–1.5 so retrying engines
        do not stampede in lockstep.
    max_pool_rebuilds:
        Broken/hung pools rebuilt before giving up on parallelism and
        running every remaining cell serially in-process.
    use_workload_store:
        When true (the default), parallel runs pack the job stream once,
        seed it into workers via the pool initializer, and dispatch cells
        by digest only — the zero-copy path.  When false, every cell task
        pickles the full job tuple (the legacy behaviour, kept for the
        store-on/store-off equivalence test and as an escape hatch).
        Results are bit-identical either way.
    journal_dir:
        Directory for run journals.  ``None`` (the default) journals
        under ``<cache root>/runs`` when a cache is configured, and not
        at all otherwise — ``run_grid``'s cache-less serial path stays
        journal-free.
    heartbeat_interval:
        Seconds between worker heartbeat touches (the watchdog's input).
        ``None`` disables the watchdog entirely.  When not passed, the
        ``REPRO_WATCHDOG_INTERVAL`` environment variable overrides the
        15 s default (``off`` disables).
    heartbeat_timeout:
        Driver-side staleness budget: when no worker heartbeat is newer
        than this while cells are in flight, the backend is presumed
        silently dead (SIGKILLed, SIGSTOPped) and every in-flight cell
        is charged a retry.  Defaults to the ``REPRO_WATCHDOG_TIMEOUT``
        environment variable when set, else
        ``max(4 * heartbeat_interval, 30.0)`` so one missed touch never
        trips it.
    execution_backend:
        ``"local"`` (the default) dispatches to one process pool —
        exactly the historical behaviour; ``"sharded"`` splits the same
        worker budget across ``shards`` independent pools so one
        crashing or hung cell only takes its own shard's in-flight cells
        with it; ``"remote"`` dispatches over TCP to
        ``repro.experiments.backends.worker`` processes named by
        ``connect``.  Every mode degrades down the ladder
        remote -> sharded -> local pool -> serial, so the grid completes
        regardless of backend health.
    shards:
        Pool groups for the sharded backend (also the sharded rung of
        the remote ladder).
    connect:
        ``HOST:PORT`` worker addresses for ``execution_backend="remote"``.
    remote_cache:
        ``HOST:PORT`` of a fleet cache server (any worker started with a
        cache directory).  The local cache becomes read-through /
        write-back against it; requires a local cache.
    handle_signals:
        When true (the default), journaled runs install SIGINT/SIGTERM
        handlers for graceful shutdown: dispatch stops, in-flight cells
        are journaled ``interrupted``, the pool is terminated and
        :class:`~repro.experiments.journal.RunInterrupted` is raised with
        the resumable run id.  Handlers are installed only in the main
        thread and always restored afterwards.
    backend:
        Simulation kernel backend for every cell (``"python"`` /
        ``"numpy"`` / ``"auto"``; ``None`` consults ``REPRO_BACKEND``).
        Bit-identical results either way, so the backend is deliberately
        absent from cell fingerprints and run manifests — caches and
        journals written under one backend resume cleanly under the other.

    ``stats`` holds the :class:`RunStats` of the most recent :meth:`run`.
    """

    def __init__(
        self,
        *,
        workers: int | None = None,
        cache: ResultCache | str | Path | None = None,
        on_event: EventFn | None = None,
        cell_timeout: float | None = None,
        max_retries: int = 2,
        retry_backoff: float = 0.5,
        max_pool_rebuilds: int = 2,
        use_workload_store: bool = True,
        journal_dir: str | Path | None = None,
        heartbeat_interval: float | None = _WATCHDOG_UNSET,  # type: ignore[assignment]
        heartbeat_timeout: float | None = None,
        handle_signals: bool = True,
        backend: str | None = None,
        execution_backend: str | None = None,
        shards: int = 2,
        connect: Sequence[str] = (),
        remote_cache: str | None = None,
    ) -> None:
        self.workers = max(1, workers if workers is not None else 1)
        self.backend = backend
        self.cache = (
            ResultCache(cache, remote=remote_cache)
            if isinstance(cache, (str, Path))
            else cache
        )
        if remote_cache is not None:
            if self.cache is None:
                raise ValueError(
                    "remote_cache requires a local cache directory "
                    "(remote entries are validated and written back locally)"
                )
            if self.cache.remote is None:
                self.cache.remote = store_from_spec(remote_cache)
        self.remote_cache = remote_cache
        mode = execution_backend or "local"
        if mode not in ("local", "sharded", "remote"):
            raise ValueError(
                f"execution_backend must be 'local', 'sharded' or 'remote', "
                f"got {execution_backend!r}"
            )
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.connect = tuple(connect)
        if mode == "remote" and not self.connect:
            raise ValueError(
                "execution_backend='remote' needs at least one "
                "connect='HOST:PORT' worker address"
            )
        self.execution_backend = mode
        self.shards = shards
        self.on_event = on_event
        self.use_workload_store = use_workload_store
        self.workload_store = WorkloadStore()
        if cell_timeout is not None and cell_timeout <= 0:
            raise ValueError(f"cell_timeout must be positive, got {cell_timeout}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {max_retries}")
        if retry_backoff < 0:
            raise ValueError(f"retry_backoff must be non-negative, got {retry_backoff}")
        if max_pool_rebuilds < 0:
            raise ValueError(
                f"max_pool_rebuilds must be non-negative, got {max_pool_rebuilds}"
            )
        env_interval, env_timeout = _watchdog_defaults()
        if heartbeat_interval is _WATCHDOG_UNSET:
            heartbeat_interval = env_interval
        if heartbeat_timeout is None:
            heartbeat_timeout = env_timeout
        if heartbeat_interval is not None and heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be positive, got {heartbeat_interval}"
            )
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise ValueError(
                f"heartbeat_timeout must be positive, got {heartbeat_timeout}"
            )
        self.cell_timeout = cell_timeout
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.retry_policy = RetryPolicy(
            max_attempts=max_retries + 1, backoff=retry_backoff, jitter=(0.5, 1.5)
        )
        self.max_pool_rebuilds = max_pool_rebuilds
        self.journal_dir = Path(journal_dir) if journal_dir is not None else None
        self.heartbeat_interval = heartbeat_interval
        if heartbeat_timeout is None and heartbeat_interval is not None:
            heartbeat_timeout = max(4.0 * heartbeat_interval, 30.0)
        self.heartbeat_timeout = heartbeat_timeout
        self.handle_signals = handle_signals
        self.stats = RunStats()
        #: Signal name ("SIGINT"/"SIGTERM") once a shutdown was requested.
        self._interrupted: str | None = None
        self._journal: RunJournal | None = None
        self._run_id: str | None = None
        self._handlers_active = False

    def _emit(self, event: ProgressEvent) -> None:
        if self.on_event is not None:
            self.on_event(event)

    # -- run lifecycle plumbing -------------------------------------------

    def _journal_root(self) -> Path | None:
        if self.journal_dir is not None:
            return self.journal_dir
        if self.cache is not None:
            return self.cache.root / "runs"
        return None

    def _journal_cell(self, key: str, state: str, **kwargs: object) -> None:
        if self._journal is not None:
            self._journal.record_cell(key, state, **kwargs)  # type: ignore[arg-type]

    def _watch_cache_health(
        self, stats: RunStats, workload_name: str, weighted: bool
    ) -> Callable[[], dict | None]:
        """Wire remote-cache health into one run's stats and events.

        Snapshots the cache's cumulative counters (the store may outlive
        many runs) and hooks the store's circuit breaker so the moment it
        trips open the run emits a ``cache-degraded`` event — the
        operator-visible signal that caching just fell back to local-only
        for a cooldown.  Returns a ``settle()`` callable for the run's
        ``finally``: it unhooks the breaker, folds the per-run deltas
        into ``stats``, and returns the ``cache-health`` journal payload
        (``None`` when the run had no remote store).
        """
        cache = self.cache
        remote = cache.remote if cache is not None else None
        if cache is None or remote is None:
            return lambda: None
        base_hits = cache.remote_hits
        base_rejected = cache.remote_rejected
        base_quarantined = len(getattr(remote, "quarantined", ()))
        base_errors = int(getattr(remote, "errors", 0))
        base_shed = int(getattr(remote, "shed", 0))
        breaker = getattr(remote, "breaker", None)
        previous_hook = breaker.on_transition if breaker is not None else None

        def on_transition(transition: "BreakerTransition") -> None:
            if previous_hook is not None:
                previous_hook(transition)
            if transition.new == "open":
                stats.cache_degraded += 1
                self._emit(
                    ProgressEvent(
                        kind="cache-degraded",
                        workload_name=workload_name,
                        weighted=weighted,
                        detail=(
                            f"remote cache breaker opened "
                            f"({getattr(breaker, 'name', '') or 'remote store'}); "
                            f"caching degraded to local-only for the cooldown"
                        ),
                        run_id=stats.run_id,
                    )
                )

        if breaker is not None:
            breaker.on_transition = on_transition

        def settle() -> dict | None:
            if breaker is not None:
                breaker.on_transition = previous_hook
            stats.remote_hits = cache.remote_hits - base_hits
            stats.remote_rejected = cache.remote_rejected - base_rejected
            stats.quarantined = (
                len(getattr(remote, "quarantined", ())) - base_quarantined
            )
            health = remote.health()
            return {
                "remote_cache": self.remote_cache or "",
                "store": health.kind if health is not None else "",
                "remote_hits": stats.remote_hits,
                "remote_rejected": stats.remote_rejected,
                "quarantined": stats.quarantined,
                "breaker_opened": stats.cache_degraded,
                "breaker_state": (
                    health.breaker_state if health is not None else ""
                ),
                "errors": int(getattr(remote, "errors", 0)) - base_errors,
                "shed": int(getattr(remote, "shed", 0)) - base_shed,
            }

        return settle

    def _prepare(
        self,
        jobs: Sequence[Job],
        *,
        workload_name: str = "workload",
        total_nodes: int = 256,
        weighted: bool = False,
        configs: Sequence[SchedulerConfig] | None = None,
        recompute_threshold: float = 2.0 / 3.0,
        reference_key: str | None = None,
        failures: "FailureTrace | None" = None,
        recovery: str | None = None,
        scenario: "ScenarioSpec | None" = None,
    ) -> "_PreparedRun":
        """Normalize one grid request into its manifest-defining form.

        Shared by :meth:`run`, :meth:`resume` and :meth:`run_id_for`, so
        the deterministic run id is computed from exactly the inputs the
        dispatch path will use.

        The legacy ``failures``/``recovery`` keywords are translated into
        an equivalent single-``FailureModel`` spec, so both call styles
        compile through one path and share one cache identity (the
        translated trace is byte-identical, see
        :func:`repro.scenarios.spec.spec_from_legacy`).
        """
        if scenario is not None and (failures is not None or recovery is not None):
            raise TypeError(
                "pass either scenario=ScenarioSpec(...) or the legacy "
                "failures=/recovery= keywords, not both"
            )
        if scenario is None:
            scenario = spec_from_legacy(failures=failures, recovery=recovery)
        if scenario is not None and not scenario.components:
            scenario = None  # the empty spec is the healthy baseline
        cancellations: "tuple[Cancellation, ...]" = ()
        cancel_over_limit = False
        scenario_digest = ""
        if scenario is not None:
            compiled = scenario.compile(jobs)
            jobs = list(compiled.jobs)
            cancellations = compiled.inputs.cancellations
            failures = compiled.inputs.failures
            recovery = compiled.inputs.recovery
            cancel_over_limit = compiled.cancel_over_limit
            scenario_digest = compiled.digest
        else:
            jobs = list(jobs)
        failures_digest = ""
        recovery_spec = ""
        if failures is not None and failures:
            failures_digest = failures.fingerprint()
        else:
            failures = None
        if recovery is not None:
            from repro.failures.recovery import recovery_from_spec

            # Canonicalize (and fail fast on malformed specs) before the
            # spec reaches fingerprints or workers.
            recovery_spec = recovery = recovery_from_spec(recovery).spec
        chosen = list(configs) if configs is not None else list(paper_configurations())
        digest = fingerprint_jobs(jobs)
        manifest = manifest_for(
            workload_digest=digest,
            configs=[config.key for config in chosen],
            total_nodes=total_nodes,
            weighted=weighted,
            recompute_threshold=recompute_threshold,
            failures_digest=failures_digest,
            recovery=recovery_spec,
            cache_version=CACHE_VERSION,
            workload_name=workload_name,
            n_jobs=len(jobs),
            reference_key=reference_key,
            scenario=scenario_digest,
            execution_backend=self.execution_backend,
            remote_cache=self.remote_cache or "",
        )
        return _PreparedRun(
            jobs=jobs,
            chosen=chosen,
            digest=digest,
            failures=failures,
            recovery=recovery,
            failures_digest=failures_digest,
            recovery_spec=recovery_spec,
            cancellations=cancellations,
            cancel_over_limit=cancel_over_limit,
            scenario_digest=scenario_digest,
            manifest=manifest,
        )

    def run_id_for(self, jobs: Sequence[Job], **kwargs: object) -> str:
        """The deterministic run id :meth:`run` would journal under.

        Accepts the grid-shaping keyword arguments of :meth:`run`
        (``workload_name``, ``total_nodes``, ``weighted``, ``configs``,
        ``recompute_threshold``, ``reference_key``, ``failures``,
        ``recovery``, ``scenario``); drivers use it to print or predict
        the ``--resume`` handle without running anything.
        """
        return str(self._prepare(jobs, **kwargs).manifest["run"])  # type: ignore[arg-type]

    def _on_signal(self, signum: int, frame: object) -> None:
        if self._interrupted is not None:
            # Second signal: the operator is insistent — restore the
            # default disposition so a third one kills us outright.
            try:
                signal.signal(signum, signal.SIG_DFL)
            except (OSError, ValueError):  # pragma: no cover - exotic platform
                pass
            return
        self._interrupted = signal.Signals(signum).name

    def _install_signal_handlers(self) -> dict[int, object] | None:
        """Install graceful-shutdown handlers (main thread only)."""
        if (
            not self.handle_signals
            or threading.current_thread() is not threading.main_thread()
        ):
            return None
        self._interrupted = None
        previous: dict[int, object] = {}
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[sig] = signal.signal(sig, self._on_signal)
            except (OSError, ValueError):  # pragma: no cover - exotic platform
                pass
        self._handlers_active = bool(previous)
        return previous or None

    def _restore_signal_handlers(self, previous: dict[int, object] | None) -> None:
        self._handlers_active = False
        if not previous:
            return
        for sig, handler in previous.items():
            try:
                signal.signal(sig, handler)  # type: ignore[arg-type]
            except (OSError, ValueError):  # pragma: no cover - exotic platform
                pass

    def run(
        self,
        jobs: Sequence[Job],
        *,
        workload_name: str = "workload",
        total_nodes: int = 256,
        weighted: bool = False,
        configs: Sequence[SchedulerConfig] | None = None,
        recompute_threshold: float = 2.0 / 3.0,
        progress: ProgressFn | None = None,
        reference_key: str | None = None,
        failures: "FailureTrace | None" = None,
        recovery: str | None = None,
        scenario: "ScenarioSpec | None" = None,
        resume_run_id: str | None = None,
    ) -> GridResult:
        """Run one grid; the parallel, cached equivalent of ``run_grid``.

        Cells are fingerprinted first; hits come from the cache, misses
        are simulated (fanned out when ``workers > 1``) and written back
        as they finish — so an interrupted run resumes where it stopped.
        ``grid.cells`` is always in config order regardless of completion
        order, and the ``progress`` callback (``run_grid`` compatible)
        fires in that same order after all cells exist.

        ``scenario`` runs every cell under a compiled
        :class:`~repro.scenarios.spec.ScenarioSpec`: the spec is compiled
        once against ``jobs`` (arrival components may rewrite the
        stream), its canonical digest joins every cell fingerprint and
        the run manifest, and the compiled disturbance inputs ship to the
        workers — no per-component wiring anywhere in the engine.  The
        legacy ``failures``/``recovery`` keywords still work (mutually
        exclusive with ``scenario``) and are translated into an
        equivalent spec, sharing one cache identity.  ``recovery`` must
        be a spec string (workers rebuild the policy from it).

        When a journal root is available (a cache or ``journal_dir``),
        the run is journaled under its deterministic id: a fresh run
        truncates any prior journal for the same grid, while
        ``resume_run_id`` (usually via :meth:`resume`) appends to the
        existing one after verifying the manifest still matches —
        mismatches raise
        :class:`~repro.experiments.journal.ManifestMismatchError`.
        """
        prep = self._prepare(
            jobs,
            workload_name=workload_name,
            total_nodes=total_nodes,
            weighted=weighted,
            configs=configs,
            recompute_threshold=recompute_threshold,
            reference_key=reference_key,
            failures=failures,
            recovery=recovery,
            scenario=scenario,
        )
        jobs = prep.jobs
        failures = prep.failures
        recovery = prep.recovery
        chosen = prep.chosen
        run_id = str(prep.manifest["run"])
        journal_root = self._journal_root()
        if resume_run_id is not None:
            if journal_root is None:
                raise ValueError(
                    "resume requires a journal: configure a cache or journal_dir"
                )
            path = journal_path(journal_root, resume_run_id)
            diffs = manifest_diffs(read_journal(path).manifest, prep.manifest)
            if diffs:
                raise ManifestMismatchError(resume_run_id, diffs)

        grid = GridResult(
            workload_name=workload_name,
            weighted=weighted,
            total_nodes=total_nodes,
            n_jobs=len(jobs),
            reference_key=reference_key,
        )
        stats = RunStats(total_cells=len(chosen))
        stats.run_id = run_id if journal_root is not None else None
        self.stats = stats
        self._run_id = stats.run_id

        journal: RunJournal | None = None
        already: set[str] = set()
        if journal_root is not None:
            path = journal_path(journal_root, run_id)
            if resume_run_id is not None:
                journal, replay = RunJournal.open_resume(path)
                # Cells already terminal in the journal keep their original
                # records; only genuinely new transitions are appended.
                already = set(replay.completed)
            else:
                journal = RunJournal.create(path, prep.manifest)
        self._journal = journal
        settle_cache_health = self._watch_cache_health(
            stats, workload_name, weighted
        )

        t_start = time.perf_counter()
        self._emit(
            ProgressEvent(
                kind="grid-started",
                workload_name=workload_name,
                weighted=weighted,
                run_id=stats.run_id,
            )
        )

        try:
            results: dict[str, CellResult] = {}
            pending: list[tuple[SchedulerConfig, str]] = []
            for config in chosen:
                fp = cell_fingerprint(
                    prep.digest,
                    config,
                    total_nodes=total_nodes,
                    weighted=weighted,
                    recompute_threshold=recompute_threshold,
                    failures_digest=prep.failures_digest,
                    recovery=prep.recovery_spec,
                    scenario=prep.scenario_digest,
                )
                grid.fingerprints[config.key] = fp
                cell = self.cache.get(fp) if self.cache is not None else None
                if cell is not None:
                    results[config.key] = cell
                    stats.cache_hits += 1
                    if config.key not in already:
                        self._journal_cell(
                            config.key,
                            "completed",
                            fingerprint=fp,
                            objective=cell.objective,
                            cached=True,
                        )
                    self._emit(
                        ProgressEvent(
                            kind="cache-hit",
                            workload_name=workload_name,
                            weighted=weighted,
                            key=config.key,
                            objective=cell.objective,
                            cached=True,
                        )
                    )
                else:
                    self._journal_cell(config.key, "scheduled", fingerprint=fp)
                    pending.append((config, fp))

            previous = self._install_signal_handlers() if journal is not None else None
            try:
                if (
                    self.workers > 1 or self.execution_backend != "local"
                ) and len(pending) > 1:
                    self._run_distributed(
                        pending, jobs, grid, stats, recompute_threshold, results,
                        failures, recovery, prep.cancellations,
                        prep.cancel_over_limit, prep.digest,
                    )
                else:
                    self._run_serial(
                        pending, jobs, grid, stats, recompute_threshold, results,
                        failures, recovery, prep.cancellations,
                        prep.cancel_over_limit,
                    )
            finally:
                self._restore_signal_handlers(previous)
        finally:
            cache_health = settle_cache_health()
            if journal is not None:
                if cache_health is not None:
                    try:
                        journal.record_cache_health(cache_health)
                    except (OSError, ValueError):  # pragma: no cover
                        pass  # a failed health line must not fail the run
                journal.close()
            self._journal = None

        for config in chosen:
            grid.cells[config.key] = results[config.key]
            if progress is not None:
                progress(config, results[config.key])
        stats.wall_time = time.perf_counter() - t_start
        self._emit(
            ProgressEvent(
                kind="grid-finished",
                workload_name=workload_name,
                weighted=weighted,
                wall_time=stats.wall_time,
                run_id=stats.run_id,
            )
        )
        return grid

    def resume(
        self, run_id: str, jobs: Sequence[Job], **kwargs: object
    ) -> GridResult:
        """Resume a journaled run from its deterministic ``run_id``.

        The caller supplies the same job stream and grid-shaping keyword
        arguments as the original :meth:`run`; the journal's manifest is
        verified against them (:class:`~repro.experiments.journal.
        ManifestMismatchError` on drift, :class:`~repro.experiments.
        journal.UnknownRunError` when no journal exists).  Completed
        cells are skipped via the cache, and only the remainder is
        re-dispatched.
        """
        return self.run(jobs, resume_run_id=run_id, **kwargs)  # type: ignore[arg-type]

    def run_scenarios(
        self,
        jobs: Sequence[Job],
        scenarios: "Mapping[str, ScenarioSpec | None]",
        *,
        workload_name: str = "workload",
        **kwargs: object,
    ) -> Mapping[str, GridResult]:
        """Sweep named :class:`~repro.scenarios.spec.ScenarioSpec`s.

        Runs one full grid per spec (the scenario name is appended to
        ``workload_name`` for progress events) and returns
        ``{scenario_name: GridResult}`` in mapping order.  ``None`` (or
        the empty spec) is the healthy baseline.  Cells are cached per
        scenario — the canonical spec digest is part of every fingerprint
        — so re-sweeping with one extra scenario only simulates the new
        cells.
        """
        out: dict[str, GridResult] = {}
        for name, spec in scenarios.items():
            out[name] = self.run(
                jobs,
                workload_name=f"{workload_name}[{name}]",
                scenario=spec,
                **kwargs,  # type: ignore[arg-type]
            )
        return out

    def run_failure_scenarios(
        self,
        jobs: Sequence[Job],
        scenarios: Sequence[FailureScenario],
        *,
        workload_name: str = "workload",
        **kwargs: object,
    ) -> Mapping[str, GridResult]:
        """Sweep named failure scenarios over one workload.

        A compatibility veneer over :meth:`run_scenarios`: each
        :class:`FailureScenario` is translated into an equivalent
        single-``FailureModel`` spec (byte-identical trace, same cache
        identity), so failure sweeps and spec sweeps share one path.
        """
        names = [s.name for s in scenarios]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate scenario names: {names}")
        return self.run_scenarios(
            jobs,
            {
                s.name: spec_from_legacy(failures=s.failures, recovery=s.recovery)
                for s in scenarios
            },
            workload_name=workload_name,
            **kwargs,  # type: ignore[arg-type]
        )

    def _run_serial(
        self,
        pending: list[tuple[SchedulerConfig, str]],
        jobs: list[Job],
        grid: GridResult,
        stats: RunStats,
        recompute_threshold: float,
        results: dict[str, CellResult],
        failures: "FailureTrace | None",
        recovery: str | None,
        cancellations: "tuple[Cancellation, ...]" = (),
        cancel_over_limit: bool = False,
    ) -> None:
        for index, (config, fp) in enumerate(pending):
            if self._interrupted is not None:
                for later_config, later_fp in pending[index:]:
                    self._journal_cell(
                        later_config.key, "interrupted", fingerprint=later_fp
                    )
                raise RunInterrupted(
                    self._run_id,
                    signal_name=self._interrupted,
                    completed=stats.cache_hits + stats.simulated,
                    remaining=len(pending) - index,
                )
            self._emit(
                ProgressEvent(
                    kind="cell-started",
                    workload_name=grid.workload_name,
                    weighted=grid.weighted,
                    key=config.key,
                )
            )
            self._journal_cell(config.key, "started", fingerprint=fp)
            t0 = time.perf_counter()
            cell = simulate_cell(
                config,
                jobs,
                total_nodes=grid.total_nodes,
                weighted=grid.weighted,
                recompute_threshold=recompute_threshold,
                failures=failures,
                recovery=recovery,
                cancellations=cancellations,
                cancel_over_limit=cancel_over_limit,
                backend=self.backend,
            )
            wall = time.perf_counter() - t0
            self._record(config.key, fp, cell, wall, grid, stats, results)

    def _backend_ladder(
        self,
        store_entries: "tuple | None",
        n_cells: int,
    ) -> "list[Callable[[], ExecutionBackend]]":
        """Backend factories, best first: remote -> sharded -> local pool.

        In-process serial execution (the unconditional last resort) is
        not a rung: :meth:`_run_distributed` hands any leftovers straight
        to :meth:`_run_serial`.
        """

        def pool_rung(groups: int) -> "Callable[[], ExecutionBackend]":
            return lambda: PoolBackend(
                workers=self.workers,
                n_cells=n_cells,
                groups=groups,
                store_entries=store_entries,
                heartbeat_interval=self.heartbeat_interval,
            )

        factories: "list[Callable[[], ExecutionBackend]]" = []
        if self.execution_backend == "remote":
            factories.append(
                lambda: RemoteWorkerBackend(
                    self.connect,
                    store_entries=store_entries,
                    heartbeat_interval=self.heartbeat_interval,
                    reconnect_backoff=max(self.retry_backoff, 0.05),
                )
            )
        if self.execution_backend in ("remote", "sharded") and self.shards > 1:
            factories.append(pool_rung(self.shards))
        factories.append(pool_rung(1))
        return factories

    def _run_distributed(
        self,
        pending: list[tuple[SchedulerConfig, str]],
        jobs: list[Job],
        grid: GridResult,
        stats: RunStats,
        recompute_threshold: float,
        results: dict[str, CellResult],
        failures: "FailureTrace | None",
        recovery: str | None,
        cancellations: "tuple[Cancellation, ...]",
        cancel_over_limit: bool,
        digest: str,
    ) -> None:
        """Drive the grid down the execution-backend ladder.

        One backend at a time: cells are leased out (``cell_timeout``
        stamps the deadline at submit), an expired lease is revoked and
        charged into the retry/backoff ladder, a late duplicate result is
        dropped idempotently by fingerprint, and a backend that cannot
        start — or breaks more than ``max_pool_rebuilds`` times on one
        rung — hands its leftovers to the next rung.  In-process serial
        execution is the unconditional last resort, so the grid always
        completes.
        """
        config_by_fp = {fp: config for config, fp in pending}
        order = [fp for _, fp in pending]
        attempts: dict[str, int] = {}
        completed: set[str] = set()
        serial_fallback: list[str] = []
        rng = random.Random()
        hb_budget = self.heartbeat_timeout or 0.0

        # Zero-copy dispatch: register the packed stream once, ship only
        # the digest per cell; pool workers hydrate via the initializer,
        # remote workers via a one-time SEED frame per connection.  The
        # legacy path (store off) pickles the job tuple per cell.
        if self.use_workload_store:
            self.workload_store.register(digest, jobs)
            store_entries = self.workload_store.entries(digest)
            payload: "str | tuple[Job, ...]" = digest
        else:
            store_entries = None
            payload = tuple(jobs)

        def make_task(fp: str) -> CellTask:
            config = config_by_fp[fp]
            return CellTask(
                fingerprint=fp,
                key=config.key,
                args=(
                    config.row,
                    config.column,
                    payload,
                    grid.total_nodes,
                    grid.weighted,
                    recompute_threshold,
                    failures,
                    recovery,
                    cancellations,
                    cancel_over_limit,
                    self.backend,
                ),
            )

        def record_done(fp: str, value: tuple) -> None:
            if fp in completed:
                # A revoked lease answered after all: the cell already
                # counted once; the duplicate is dropped, visibly.
                stats.duplicate_results += 1
                self._emit(
                    ProgressEvent(
                        kind="cell-duplicate",
                        workload_name=grid.workload_name,
                        weighted=grid.weighted,
                        key=config_by_fp[fp].key,
                        detail="late duplicate result dropped",
                    )
                )
                return
            completed.add(fp)
            key, cell, wall = value
            self._record(key, fp, cell, wall, grid, stats, results)

        def emit_degraded(detail: str) -> None:
            self._emit(
                ProgressEvent(
                    kind="engine-degraded",
                    workload_name=grid.workload_name,
                    weighted=grid.weighted,
                    detail=detail,
                )
            )

        queue: list[str] = []
        for config, fp in pending:
            self._emit(
                ProgressEvent(
                    kind="cell-started",
                    workload_name=grid.workload_name,
                    weighted=grid.weighted,
                    key=config.key,
                )
            )
            queue.append(fp)

        ladder = self._backend_ladder(store_entries, len(pending))
        for rung, factory in enumerate(ladder):
            if not queue:
                break
            backend = factory()
            leftovers: list[str] = list(queue)
            try:
                try:
                    backend.start()
                except BackendUnavailable as exc:
                    if rung + 1 < len(ladder):
                        emit_degraded(
                            f"{backend.name} backend unavailable ({exc}); "
                            f"falling back to the next execution backend"
                        )
                    continue
                if stats.backend == "serial":
                    stats.backend = backend.name
                leftovers = self._drive_backend(
                    backend, queue, grid, config_by_fp, attempts, completed,
                    serial_fallback, make_task, record_done, rng, stats,
                    hb_budget,
                )
            finally:
                backend.close()
                queue = leftovers
            if queue and rung + 1 < len(ladder):
                emit_degraded(
                    f"{backend.name} backend gave up with {len(queue)} "
                    f"cell(s) unfinished; falling back to the next "
                    f"execution backend"
                )
        serial_fallback.extend(queue)

        if serial_fallback:
            # Deduplicate while preserving grid order (a cell can be
            # queued for fallback once via retries and once via the reset
            # budget), and drop anything a late duplicate already
            # completed.
            chosen = set(serial_fallback) - completed
            unique = [(config_by_fp[fp], fp) for fp in order if fp in chosen]
            if not unique:
                return
            stats.degraded_cells += len(unique)
            emit_degraded(
                f"{len(unique)} cell(s) fell back to in-process serial "
                f"execution after {stats.retries} retries and "
                f"{stats.pool_rebuilds} pool rebuilds"
            )
            self._run_serial(
                unique, jobs, grid, stats, recompute_threshold, results,
                failures, recovery, cancellations, cancel_over_limit,
            )

    def _drive_backend(
        self,
        backend: ExecutionBackend,
        queue: list[str],
        grid: GridResult,
        config_by_fp: "dict[str, SchedulerConfig]",
        attempts: dict[str, int],
        completed: set[str],
        serial_fallback: list[str],
        make_task: "Callable[[str], CellTask]",
        record_done: "Callable[[str, tuple], None]",
        rng: random.Random,
        stats: RunStats,
        hb_budget: float,
    ) -> list[str]:
        """Run ``queue`` on one started backend; return its leftovers.

        An empty return means the rung finished (or charged into the
        serial fallback) every cell it was given; a non-empty one means
        the rung's reset budget is exhausted and the remainder belongs to
        the next rung down the ladder.
        """
        queue = list(queue)
        #: fp -> perf_counter deadline of the cell's lease, stamped at
        #: submit — exactly the historical per-future timeout deadline.
        leases: dict[str, float] = {}
        #: Cells waiting out a retry backoff: fp -> perf_counter instant
        #: at which they go back to the backend.  Folding these deadlines
        #: into the collect timeout (instead of sleeping in the loop)
        #: keeps every other in-flight cell being collected meanwhile.
        resubmit_at: dict[str, float] = {}
        resets = 0

        def submit_one(fp: str) -> bool:
            if not backend.submit(make_task(fp)):
                return False
            self._journal_cell(config_by_fp[fp].key, "started", fingerprint=fp)
            if self.cell_timeout is not None:
                leases[fp] = time.perf_counter() + self.cell_timeout
            return True

        def charge_retry(fp: str, why: str) -> None:
            """Charge a retry for ``fp``: schedule its resubmission, or send
            it to the serial fallback once the budget is exhausted."""
            attempts[fp] = attempts.get(fp, 0) + 1
            if attempts[fp] > self.max_retries:
                self._journal_cell(
                    config_by_fp[fp].key, "abandoned", fingerprint=fp, detail=why
                )
                serial_fallback.append(fp)
                return
            self._journal_cell(
                config_by_fp[fp].key, "failed", fingerprint=fp, detail=why
            )
            stats.retries += 1
            pause = self.retry_policy.backoff_for(attempts[fp], rng)
            self._emit(
                ProgressEvent(
                    kind="cell-retry",
                    workload_name=grid.workload_name,
                    weighted=grid.weighted,
                    key=config_by_fp[fp].key,
                    wall_time=pause,
                    detail=f"attempt {attempts[fp]}/{self.max_retries}: {why}",
                )
            )
            resubmit_at[fp] = time.perf_counter() + pause

        def spend_reset() -> bool:
            """Count one backend reset; False once the rung is beyond help."""
            nonlocal resets
            stats.pool_rebuilds += 1
            resets += 1
            if resets > self.max_pool_rebuilds:
                return False
            return backend.reset(lambda: self._interrupted is not None)

        def leftovers() -> list[str]:
            seen: set[str] = set()
            out: list[str] = []
            for fp in [*queue, *resubmit_at, *sorted(backend.in_flight())]:
                if fp not in completed and fp not in seen:
                    seen.add(fp)
                    out.append(fp)
            return out

        def next_wait_timeout() -> float | None:
            """Seconds until the next dispatch-loop deadline (None: never).

            Folds together the soonest lease expiry, the soonest retry
            resubmission, the watchdog's heartbeat deadline, and — while
            signal handlers are active — a 0.5 s responsiveness cap so a
            SIGINT/SIGTERM flag is noticed promptly even though blocking
            waits resume after the handler runs (PEP 475).
            """
            now = time.perf_counter()
            candidates: list[float] = []
            if leases:
                candidates.append(min(leases.values()) - now)
            if resubmit_at:
                candidates.append(min(resubmit_at.values()) - now)
            live = backend.liveness()
            if live is not None and hb_budget and backend.in_flight():
                candidates.append((live + hb_budget) - time.time())
            if self._handlers_active:
                candidates.append(0.5)
            if not candidates:
                return None
            return max(0.0, min(candidates))

        while queue or backend.in_flight() or resubmit_at:
            if self._interrupted is not None:
                # Graceful shutdown: journal everything unfinished as
                # interrupted, drop the backend, surface the resumable id.
                unfinished = (
                    set(queue)
                    | backend.in_flight()
                    | set(resubmit_at)
                    | set(serial_fallback)
                ) - completed
                for fp in sorted(unfinished):
                    self._journal_cell(
                        config_by_fp[fp].key, "interrupted", fingerprint=fp
                    )
                raise RunInterrupted(
                    self._run_id,
                    signal_name=self._interrupted,
                    completed=stats.cache_hits + stats.simulated,
                    remaining=len(unfinished),
                )
            now = time.perf_counter()
            for fp in [f for f, at in resubmit_at.items() if at <= now]:
                del resubmit_at[fp]
                queue.append(fp)
            while queue and backend.can_accept():
                fp = queue.pop(0)
                if submit_one(fp):
                    continue
                queue.insert(0, fp)
                break
            if not backend.in_flight():
                if queue:
                    # Wedged: work waiting, nothing running, no capacity
                    # — spend a reset (for a remote backend this is the
                    # blocking reconnect sweep) or yield to the next rung.
                    if not spend_reset():
                        return leftovers()
                    continue
                if resubmit_at:
                    # Nothing in flight: idle until the next resubmit
                    # (capped for signal responsiveness while handlers
                    # are active).
                    pause = min(resubmit_at.values()) - time.perf_counter()
                    if self._handlers_active:
                        pause = min(pause, 0.5)
                    if pause > 0:
                        time.sleep(pause)
                continue
            outcomes = backend.collect(next_wait_timeout())
            broke = False
            for outcome in outcomes:
                fp = outcome.fingerprint
                leases.pop(fp, None)
                if outcome.kind == "done":
                    # A late answer may beat its own retry: cancel the
                    # cell's other copies wherever they are queued.
                    resubmit_at.pop(fp, None)
                    if fp in queue:
                        queue.remove(fp)
                    if fp in serial_fallback:
                        serial_fallback.remove(fp)
                    record_done(fp, outcome.value)
                    continue
                if outcome.kind == "broken":
                    broke = True
                if fp in completed:
                    continue  # stale failure for an already-answered cell
                charge_retry(fp, outcome.detail)
            if broke:
                # Broken backend parts doom their other in-flight cells;
                # requeue them uncharged for the healed backend.
                for fp in backend.drain_broken():
                    leases.pop(fp, None)
                    queue.append(fp)
                if not spend_reset():
                    return leftovers()
                continue
            if outcomes:
                continue
            # collect() timed out: check leases and the watchdog.
            now = time.perf_counter()
            in_flight = backend.in_flight()
            overdue = {
                fp for fp in in_flight if leases.get(fp, math.inf) <= now
            }
            live = backend.liveness()
            stalled = bool(
                live is not None
                and hb_budget
                and in_flight
                and time.time() - live > hb_budget
            )
            if not overdue and not stalled:
                # Woke for a resubmit/responsiveness deadline, not a hung
                # cell or dead backend.
                continue
            # Watchdog: no proof of life within the budget while cells
            # are in flight means the backend died without telling us
            # (SIGKILL before first result, SIGSTOP forever) — every
            # in-flight cell is charged, since a dead backend leaves no
            # one to blame precisely.  Otherwise only the overdue leases
            # are revoked and charged; collateral the backend had to
            # abandon with them resubmits for free.
            charged = set(in_flight) if stalled else overdue
            reason = (
                f"lost worker heartbeat for more than {hb_budget:.0f}s: "
                f"pool presumed dead"
                if stalled
                else f"exceeded cell_timeout={self.cell_timeout}s"
            )
            report = backend.release(charged, reason)
            for fp in sorted(charged):
                leases.pop(fp, None)
                charge_retry(fp, reason)
            for fp in report.requeue:
                leases.pop(fp, None)
                queue.append(fp)
            if report.broke and not spend_reset():
                return leftovers()
        return []


    def _record(
        self,
        key: str,
        fingerprint: str,
        cell: CellResult,
        wall: float,
        grid: GridResult,
        stats: RunStats,
        results: dict[str, CellResult],
    ) -> None:
        results[key] = cell
        stats.simulated += 1
        if self.cache is not None:
            self.cache.put(fingerprint, cell)
        # Cache write lands before the journal record: a crash between
        # the two leaves an orphaned cache entry (healed on resume), never
        # a journaled completion with no backing result.
        self._journal_cell(
            key, "completed", fingerprint=fingerprint, objective=cell.objective
        )
        self._emit(
            ProgressEvent(
                kind="cell-finished",
                workload_name=grid.workload_name,
                weighted=grid.weighted,
                key=key,
                wall_time=wall,
                objective=cell.objective,
            )
        )

"""Parallel experiment engine with content-addressed result caching.

The paper's workflow is "run every candidate algorithm over every workload,
compare the tables".  :class:`ExperimentEngine` executes that grid:

* **parallel fan-out** — independent grid cells (config × workload ×
  regime) run concurrently on a ``ProcessPoolExecutor``; each worker
  rebuilds its scheduler from the registry, so nothing unpicklable ever
  crosses the process boundary and user-registered rows work unchanged;
* **zero-copy workload distribution** — the job stream is packed once
  into columnar arrays (:mod:`repro.core.packing`) and seeded into each
  worker by the pool initializer; cell tasks then carry only the stream's
  64-character digest, so dispatch payloads shrink >100x and each worker
  deserializes the workload once per pool lifetime instead of once per
  cell (see :class:`repro.experiments.workload_store.WorkloadStore`; the
  serial path and the degradation fallback bypass the store);
* **content-addressed caching** — every cell result is stored on disk
  under a deterministic fingerprint of the job stream, machine size,
  configuration, regime and cache format version.  A cache hit skips the
  simulation entirely, so re-running a grid after adding one algorithm
  only simulates the new cells, and an interrupted run resumes from the
  cells that already finished;
* **structured progress events** — ``grid-started``, ``cell-started``,
  ``cache-hit``, ``cell-finished``, ``cell-retry``, ``engine-degraded``
  and ``grid-finished`` events carry the cell key, wall-clock and
  objective; the CLI renders them and
  :func:`repro.analysis.persistence.append_events` archives them as JSON
  lines;
* **crash tolerance** — a worker crash (or a cell exceeding
  ``cell_timeout``) does not lose the grid: the affected cells are retried
  with jittered exponential backoff, the pool is rebuilt when it breaks
  (re-seeding the workload store), and once the retry/rebuild budgets are
  exhausted the surviving cells degrade gracefully to in-process serial
  execution, so the grid always completes (deterministic cell errors then
  surface from the serial run, where they belong).  Backoff never blocks
  the dispatch loop: a retried cell receives a *resubmit deadline* folded
  into the ``wait`` timeout, so every other in-flight cell keeps being
  collected while the pause elapses;
* **scenario algebra** — grids can run under a compiled
  :class:`~repro.scenarios.spec.ScenarioSpec` (failures, cancellations,
  flash crowds, runtime variability, closed-loop arrivals — any
  registered component): the spec compiles once per run, its canonical
  digest joins every cell fingerprint and the run manifest, and
  :meth:`ExperimentEngine.run_scenarios` sweeps named specs over one
  workload (:meth:`ExperimentEngine.run_failure_scenarios` is a
  compatibility veneer translating the old
  :class:`~repro.failures.trace.FailureTrace` + recovery pairs);
* **run lifecycle** — every cached run keeps an append-only
  :class:`~repro.experiments.journal.RunJournal` under the cache
  directory, keyed by a deterministic run id: the manifest plus one
  fsynced, checksummed record per cell state transition.  A killed
  driver process leaves a resumable journal; :meth:`ExperimentEngine.resume`
  (CLI ``--resume RUN_ID``) replays it, verifies the manifest still
  matches the requested grid, skips completed cells via the cache and
  re-dispatches only the remainder.  SIGINT/SIGTERM trigger a **graceful
  shutdown** (stop dispatching, journal in-flight cells as
  ``interrupted``, terminate the pool, raise
  :class:`~repro.experiments.journal.RunInterrupted`), a driver-side
  **watchdog** detects silently killed or stopped workers through
  mtime-touched heartbeat sentinels and routes them into the retry path,
  and :func:`~repro.experiments.journal.verify_run` audits a journal
  against the cache after the fact.

Determinism: the simulation is a pure function of (jobs, config,
machine), so parallel and serial runs produce bit-identical objectives;
only ``compute_time`` (measured wall-clock inside scheduler callbacks) is
machine- and run-dependent, and a cached cell replays the ``compute_time``
of the run that produced it.

``run_grid`` in :mod:`repro.experiments.runner` is a thin serial wrapper
over this engine, so all existing callers share the same execution path.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import math
import multiprocessing
import os
import random
import shutil
import signal
import tempfile
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from itertools import count
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Mapping, NamedTuple, Sequence

from repro.core.job import Job
from repro.core.packing import job_record
from repro.core.simulator import Cancellation
from repro.experiments.journal import (
    ManifestMismatchError,
    RunInterrupted,
    RunJournal,
    freshest_heartbeat,
    journal_path,
    manifest_diffs,
    manifest_for,
    read_journal,
)
from repro.experiments.runner import (
    CellResult,
    GridResult,
    ProgressFn,
    simulate_cell,
)
from repro.experiments.workload_store import (
    WorkloadStore,
    init_worker,
    resolve_worker_workload,
)
from repro.scenarios import ScenarioSpec, spec_from_legacy
from repro.schedulers.registry import SchedulerConfig, paper_configurations

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.failures.trace import FailureTrace

#: Bump when the cached payload or the simulation semantics change; old
#: entries then miss instead of replaying stale results.  v4: cell
#: fingerprints gained the canonical ``scenario`` digest (the unified
#: scenario algebra of :mod:`repro.scenarios` — see docs/architecture.md,
#: "Scenario algebra", for the decision record).
CACHE_VERSION = 4


# -- fingerprints --------------------------------------------------------------


def fingerprint_jobs(jobs: Sequence[Job]) -> str:
    """Deterministic content digest of a job stream.

    Covers every field the simulator reads (``repr`` of floats keeps full
    precision, so streams differing in the last bit get distinct digests);
    ``meta`` has never been part of a stream's cache identity.  Records
    stream into the hasher one job at a time through the shared
    :func:`repro.core.packing.job_record` formatter — the byte stream, and
    therefore the digest, is identical to what
    :func:`repro.core.packing.fingerprint_packed` computes for the packed
    form of the same jobs, so CACHE_VERSION stays put.
    """
    hasher = hashlib.sha256()
    for job in jobs:
        hasher.update(
            job_record(
                job.job_id,
                job.submit_time,
                job.nodes,
                job.runtime,
                job.estimate,
                job.user,
                job.weight,
            ).encode("ascii")
        )
    return hasher.hexdigest()


def cell_fingerprint(
    jobs_digest: str,
    config: SchedulerConfig,
    *,
    total_nodes: int,
    weighted: bool,
    recompute_threshold: float = 2.0 / 3.0,
    failures_digest: str = "",
    recovery: str = "",
    scenario: str = "",
) -> str:
    """Content address of one grid cell result.

    ``scenario`` is the canonical :meth:`ScenarioSpec.digest` of the
    scenario the cell ran under (``""`` for the healthy baseline) —
    because compilation is a pure function of ``(spec, jobs, seed)``, the
    pair ``(jobs digest, scenario digest)`` fully determines the compiled
    stream and every disturbance event.  ``failures_digest``
    (:meth:`FailureTrace.fingerprint`) and ``recovery`` (the canonical
    recovery-policy spec) additionally pin the *realized* failure inputs,
    so direct engine calls that bypass the spec layer still never collide
    in the cache.
    """
    payload = json.dumps(
        {
            "version": CACHE_VERSION,
            "jobs": jobs_digest,
            "row": config.row,
            "column": config.column,
            "total_nodes": total_nodes,
            "weighted": weighted,
            "recompute_threshold": repr(recompute_threshold),
            "failures": failures_digest,
            "recovery": recovery,
            "scenario": scenario,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


# -- the on-disk cache ---------------------------------------------------------


@dataclass(frozen=True, slots=True)
class CachePruneStats:
    """Outcome of one :meth:`ResultCache.prune` sweep."""

    scanned: int
    stale_evicted: int
    quarantined: int
    tmp_removed: int

    def describe(self) -> str:
        return (
            f"cache: scanned {self.scanned} entr(ies), "
            f"evicted {self.stale_evicted} stale, "
            f"quarantined {self.quarantined} corrupt, "
            f"removed {self.tmp_removed} stray tmp file(s)"
        )


class ResultCache:
    """Content-addressed cell store: one JSON file per fingerprint.

    Keys are the hex digests from :func:`cell_fingerprint`; values are
    :class:`CellResult` payloads.  Writes are crash-safe: the payload goes
    to a process-unique temporary file finalized with ``os.replace``, so a
    killed run never leaves a truncated entry and concurrent engines never
    clobber each other's half-written files.

    Reads distinguish three failure modes: a missing file or I/O error is
    a plain miss; a version-skewed entry is a miss that also **evicts**
    the entry (fingerprints embed ``CACHE_VERSION``, so no current or
    future key can ever hit it again — leaving it would accumulate dead
    files forever); an entry that *parses wrong* — truncated JSON,
    malformed payload — is quarantined by renaming it to
    ``<fingerprint>.corrupt`` so the corruption is visible on disk
    instead of silently re-simulated forever.  :meth:`prune` sweeps the
    whole store the same way without needing the fingerprints, and
    :meth:`status` classifies an entry without mutating anything (the
    ``verify_run`` audit path).
    """

    #: Orphaned ``.tmp`` files older than this are removed by ``prune``
    #: (younger ones may belong to a concurrently running engine).
    TMP_MAX_AGE = 3600.0

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> CellResult | None:
        from repro.analysis.persistence import cell_from_dict

        path = self.path(fingerprint)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None  # missing or unreadable device: plain miss
        try:
            payload = json.loads(text)
            if payload.get("version") != CACHE_VERSION:
                # Version-skewed entries can never hit again (the version
                # is part of every fingerprint): evict instead of letting
                # them accumulate forever.
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - racing cleanup
                    pass
                return None
            return cell_from_dict(payload["cell"])
        except (AttributeError, KeyError, TypeError, ValueError):
            self._quarantine(path)
            return None

    def status(self, fingerprint: str) -> str:
        """Classify an entry without touching it.

        Returns ``"hit"`` (readable, current version), ``"miss"`` (no
        file), ``"stale"`` (version skew) or ``"corrupt"`` (unparseable)
        — unlike :meth:`get`, nothing is evicted or quarantined, so
        audits are repeatable.
        """
        try:
            return self._classify(self.path(fingerprint).read_text(encoding="utf-8"))
        except OSError:
            return "miss"

    @staticmethod
    def _classify(text: str) -> str:
        from repro.analysis.persistence import cell_from_dict

        try:
            payload = json.loads(text)
        except ValueError:
            return "corrupt"
        if not isinstance(payload, dict):
            return "corrupt"
        if payload.get("version") != CACHE_VERSION:
            return "stale"
        try:
            cell_from_dict(payload["cell"])
        except (AttributeError, KeyError, TypeError, ValueError):
            return "corrupt"
        return "hit"

    def prune(self) -> "CachePruneStats":
        """Sweep the store: evict stale entries, quarantine corrupt ones.

        Version-skewed entries are unlinked (their fingerprints are
        unreachable by construction), unparseable ones become
        ``*.corrupt``, and orphaned temp files older than
        :data:`TMP_MAX_AGE` — a crashed writer's leftovers — are removed.
        Used by ``repro-experiments --list-runs`` so long-lived cache
        directories stay honest about what they hold.
        """
        scanned = stale = quarantined = removed_tmp = 0
        if not self.root.is_dir():
            return CachePruneStats(0, 0, 0, 0)
        now = time.time()
        for path in self.root.glob("??/*.json"):
            scanned += 1
            try:
                verdict = self._classify(path.read_text(encoding="utf-8"))
            except OSError:  # pragma: no cover - racing cleanup
                continue
            if verdict == "stale":
                try:
                    path.unlink()
                    stale += 1
                except OSError:  # pragma: no cover - racing cleanup
                    pass
            elif verdict == "corrupt":
                if self._quarantine(path) is not None:
                    quarantined += 1
        for tmp in self.root.glob("??/.*.tmp"):
            try:
                if now - tmp.stat().st_mtime > self.TMP_MAX_AGE:
                    tmp.unlink()
                    removed_tmp += 1
            except OSError:  # pragma: no cover - racing cleanup
                pass
        return CachePruneStats(scanned, stale, quarantined, removed_tmp)

    def _quarantine(self, path: Path) -> Path | None:
        """Move a corrupt entry aside as ``*.corrupt``; best effort."""
        target = path.with_suffix(".corrupt")
        try:
            os.replace(path, target)
        except OSError:  # pragma: no cover - racing cleanup
            return None
        return target

    def put(self, fingerprint: str, cell: CellResult) -> None:
        from repro.analysis.persistence import cell_to_dict

        path = self.path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"version": CACHE_VERSION, "cell": cell_to_dict(cell)}
        tmp = path.parent / f".{fingerprint}.{os.getpid()}.tmp"
        try:
            tmp.write_text(json.dumps(payload), encoding="utf-8")
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)


# -- progress events -----------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ProgressEvent:
    """One structured engine event.

    ``kind`` is ``grid-started``, ``cell-started``, ``cache-hit``,
    ``cell-finished``, ``cell-retry``, ``engine-degraded`` or
    ``grid-finished``; ``key`` is the cell key for cell-level events and
    ``None`` for grid-level ones.  ``wall_time`` is the wall-clock of the
    finished unit (whole grid for grid-finished; the backoff pause for
    cell-retry); cache hits report the objective but no wall time.
    ``detail`` carries the human-readable reason for retry/degradation
    events.  Grid-level events of a journaled run carry its ``run_id``
    (the ``--resume`` handle); it is ``None`` for journal-less runs and
    for cell-level events.
    """

    kind: str
    workload_name: str
    weighted: bool
    key: str | None = None
    wall_time: float | None = None
    objective: float | None = None
    cached: bool = False
    detail: str | None = None
    run_id: str | None = None


EventFn = Callable[[ProgressEvent], None]


@dataclass(slots=True)
class RunStats:
    """Execution accounting for one engine run."""

    total_cells: int = 0
    cache_hits: int = 0
    simulated: int = 0
    wall_time: float = 0.0
    #: Worker-side retries (crashes or timeouts) during this run.
    retries: int = 0
    #: Pool rebuilds forced by broken or hung pools.
    pool_rebuilds: int = 0
    #: Cells that fell back to in-process serial execution.
    degraded_cells: int = 0
    #: Deterministic run id of the journal backing this run (``None``
    #: when the run was not journaled).
    run_id: str | None = None


# -- the engine ----------------------------------------------------------------


def _run_cell_task(
    args: tuple[
        str, str, "tuple[Job, ...] | str", int, bool, float, object, str | None,
        tuple, bool, str | None,
    ],
) -> tuple[str, CellResult, float]:
    """Pool worker: simulate one cell, returning (key, result, wall-clock).

    Takes primitive row/column keys and rebuilds the scheduler from the
    registry inside the worker — with the fork start method the child
    inherits user registrations made before the run.  The jobs slot is
    either the job tuple itself (legacy per-cell-pickle path) or the
    workload digest, resolved against the process-global cache the pool
    initializer seeded — the zero-copy path.  Scenario inputs travel
    *compiled* (the driver compiles the spec exactly once per run):
    ``failures`` as a pickled :class:`FailureTrace`, ``recovery`` as a
    spec string, ``cancellations`` as a tuple of plain
    :class:`~repro.core.simulator.Cancellation` events and the
    estimate-limit kill policy as a bool — nothing unpicklable crosses
    the process boundary.  The trailing ``backend`` slot selects the
    simulation kernels in the worker (cell results are bit-identical
    either way, so it never enters a fingerprint).
    """
    (
        row,
        column,
        jobs,
        total_nodes,
        weighted,
        recompute_threshold,
        failures,
        recovery,
        cancellations,
        cancel_over_limit,
        backend,
    ) = args
    if isinstance(jobs, str):
        jobs = resolve_worker_workload(jobs)
    config = SchedulerConfig(row=row, column=column)
    t0 = time.perf_counter()
    cell = simulate_cell(
        config,
        jobs,
        total_nodes=total_nodes,
        weighted=weighted,
        recompute_threshold=recompute_threshold,
        failures=failures,  # type: ignore[arg-type]
        recovery=recovery,
        cancellations=cancellations,
        cancel_over_limit=cancel_over_limit,
        backend=backend,
    )
    return config.key, cell, time.perf_counter() - t0


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork so in-process registry registrations reach the workers."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a (possibly hung) pool down without waiting for its workers.

    The process table must be captured *before* ``shutdown`` — it nulls
    ``_processes``, and a worker stuck in a simulation never notices a mere
    shutdown request.  Unterminated hung workers would keep the executor's
    manager thread alive, which ``concurrent.futures`` joins at interpreter
    exit: the whole process would hang long after the grid finished.
    """
    procs = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        try:
            proc.terminate()
        except (OSError, ValueError):  # pragma: no cover - already dead
            pass


@dataclass(frozen=True, slots=True)
class FailureScenario:
    """One named failure-injection scenario for a grid sweep.

    ``failures=None`` (with any ``recovery``) is the healthy baseline;
    ``recovery`` is a canonical spec string (see
    :func:`repro.failures.recovery.recovery_from_spec`).  Kept as the
    stable surface of :meth:`ExperimentEngine.run_failure_scenarios`;
    internally each one is translated into a
    :class:`~repro.scenarios.spec.ScenarioSpec` and swept through
    :meth:`ExperimentEngine.run_scenarios`.
    """

    name: str
    failures: "FailureTrace | None" = None
    recovery: str | None = None


class _PreparedRun(NamedTuple):
    """One grid request, normalized: the inputs of run id and dispatch.

    ``jobs`` and ``digest`` are the *compiled* stream (arrival/transform
    components folded in); ``cancellations``, ``failures``, ``recovery``
    and ``cancel_over_limit`` are the compiled disturbance inputs; and
    ``scenario_digest`` is the canonical spec digest (``""`` for the
    healthy baseline) that joins every cell fingerprint.
    """

    jobs: list[Job]
    chosen: list[SchedulerConfig]
    digest: str
    failures: "FailureTrace | None"
    recovery: str | None
    failures_digest: str
    recovery_spec: str
    cancellations: "tuple[Cancellation, ...]"
    cancel_over_limit: bool
    scenario_digest: str
    manifest: dict


class ExperimentEngine:
    """Runs scheduler grids in parallel with content-addressed caching.

    Parameters
    ----------
    workers:
        Worker processes for cell fan-out.  ``1`` (the default) runs
        serially in-process — exactly the old ``run_grid`` behaviour.
    cache:
        A :class:`ResultCache`, a directory path to create one in, or
        ``None`` to disable caching.
    on_event:
        Callback receiving every :class:`ProgressEvent`.
    cell_timeout:
        Per-cell wall-clock budget in seconds (parallel runs only).  A
        cell still unfinished past it is presumed hung: the pool is torn
        down, the overdue cell charged a retry, and every other in-flight
        cell resubmitted for free.  ``None`` (the default) never times out.
    max_retries:
        Worker-side attempts beyond the first for a cell whose worker
        crashed, timed out, or raised.  Exhausting the budget sends the
        cell to the in-process serial fallback — where a deterministic
        error reproduces and surfaces, and a flaky one recovers.
    retry_backoff:
        Base pause before retry ``n`` (seconds); the actual pause is
        ``retry_backoff * 2**(n-1)``, jittered by ×0.5–1.5 so retrying
        engines do not stampede in lockstep.
    max_pool_rebuilds:
        Broken/hung pools rebuilt before giving up on parallelism and
        running every remaining cell serially in-process.
    use_workload_store:
        When true (the default), parallel runs pack the job stream once,
        seed it into workers via the pool initializer, and dispatch cells
        by digest only — the zero-copy path.  When false, every cell task
        pickles the full job tuple (the legacy behaviour, kept for the
        store-on/store-off equivalence test and as an escape hatch).
        Results are bit-identical either way.
    journal_dir:
        Directory for run journals.  ``None`` (the default) journals
        under ``<cache root>/runs`` when a cache is configured, and not
        at all otherwise — ``run_grid``'s cache-less serial path stays
        journal-free.
    heartbeat_interval:
        Seconds between worker heartbeat touches (the watchdog's input).
        ``None`` disables the watchdog entirely.
    heartbeat_timeout:
        Driver-side staleness budget: when no worker heartbeat is newer
        than this while cells are in flight, the pool is presumed
        silently dead (SIGKILLed, SIGSTOPped) and every in-flight cell
        is charged a retry.  Defaults to
        ``max(4 * heartbeat_interval, 30.0)`` so one missed touch never
        trips it.
    handle_signals:
        When true (the default), journaled runs install SIGINT/SIGTERM
        handlers for graceful shutdown: dispatch stops, in-flight cells
        are journaled ``interrupted``, the pool is terminated and
        :class:`~repro.experiments.journal.RunInterrupted` is raised with
        the resumable run id.  Handlers are installed only in the main
        thread and always restored afterwards.
    backend:
        Simulation kernel backend for every cell (``"python"`` /
        ``"numpy"`` / ``"auto"``; ``None`` consults ``REPRO_BACKEND``).
        Bit-identical results either way, so the backend is deliberately
        absent from cell fingerprints and run manifests — caches and
        journals written under one backend resume cleanly under the other.

    ``stats`` holds the :class:`RunStats` of the most recent :meth:`run`.
    """

    def __init__(
        self,
        *,
        workers: int | None = None,
        cache: ResultCache | str | Path | None = None,
        on_event: EventFn | None = None,
        cell_timeout: float | None = None,
        max_retries: int = 2,
        retry_backoff: float = 0.5,
        max_pool_rebuilds: int = 2,
        use_workload_store: bool = True,
        journal_dir: str | Path | None = None,
        heartbeat_interval: float | None = 15.0,
        heartbeat_timeout: float | None = None,
        handle_signals: bool = True,
        backend: str | None = None,
    ) -> None:
        self.workers = max(1, workers if workers is not None else 1)
        self.backend = backend
        self.cache = ResultCache(cache) if isinstance(cache, (str, Path)) else cache
        self.on_event = on_event
        self.use_workload_store = use_workload_store
        self.workload_store = WorkloadStore()
        if cell_timeout is not None and cell_timeout <= 0:
            raise ValueError(f"cell_timeout must be positive, got {cell_timeout}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {max_retries}")
        if retry_backoff < 0:
            raise ValueError(f"retry_backoff must be non-negative, got {retry_backoff}")
        if max_pool_rebuilds < 0:
            raise ValueError(
                f"max_pool_rebuilds must be non-negative, got {max_pool_rebuilds}"
            )
        if heartbeat_interval is not None and heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be positive, got {heartbeat_interval}"
            )
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise ValueError(
                f"heartbeat_timeout must be positive, got {heartbeat_timeout}"
            )
        self.cell_timeout = cell_timeout
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.max_pool_rebuilds = max_pool_rebuilds
        self.journal_dir = Path(journal_dir) if journal_dir is not None else None
        self.heartbeat_interval = heartbeat_interval
        if heartbeat_timeout is None and heartbeat_interval is not None:
            heartbeat_timeout = max(4.0 * heartbeat_interval, 30.0)
        self.heartbeat_timeout = heartbeat_timeout
        self.handle_signals = handle_signals
        self.stats = RunStats()
        #: Signal name ("SIGINT"/"SIGTERM") once a shutdown was requested.
        self._interrupted: str | None = None
        self._journal: RunJournal | None = None
        self._run_id: str | None = None
        self._handlers_active = False

    def _emit(self, event: ProgressEvent) -> None:
        if self.on_event is not None:
            self.on_event(event)

    # -- run lifecycle plumbing -------------------------------------------

    def _journal_root(self) -> Path | None:
        if self.journal_dir is not None:
            return self.journal_dir
        if self.cache is not None:
            return self.cache.root / "runs"
        return None

    def _journal_cell(self, key: str, state: str, **kwargs: object) -> None:
        if self._journal is not None:
            self._journal.record_cell(key, state, **kwargs)  # type: ignore[arg-type]

    def _prepare(
        self,
        jobs: Sequence[Job],
        *,
        workload_name: str = "workload",
        total_nodes: int = 256,
        weighted: bool = False,
        configs: Sequence[SchedulerConfig] | None = None,
        recompute_threshold: float = 2.0 / 3.0,
        reference_key: str | None = None,
        failures: "FailureTrace | None" = None,
        recovery: str | None = None,
        scenario: "ScenarioSpec | None" = None,
    ) -> "_PreparedRun":
        """Normalize one grid request into its manifest-defining form.

        Shared by :meth:`run`, :meth:`resume` and :meth:`run_id_for`, so
        the deterministic run id is computed from exactly the inputs the
        dispatch path will use.

        The legacy ``failures``/``recovery`` keywords are translated into
        an equivalent single-``FailureModel`` spec, so both call styles
        compile through one path and share one cache identity (the
        translated trace is byte-identical, see
        :func:`repro.scenarios.spec.spec_from_legacy`).
        """
        if scenario is not None and (failures is not None or recovery is not None):
            raise TypeError(
                "pass either scenario=ScenarioSpec(...) or the legacy "
                "failures=/recovery= keywords, not both"
            )
        if scenario is None:
            scenario = spec_from_legacy(failures=failures, recovery=recovery)
        if scenario is not None and not scenario.components:
            scenario = None  # the empty spec is the healthy baseline
        cancellations: "tuple[Cancellation, ...]" = ()
        cancel_over_limit = False
        scenario_digest = ""
        if scenario is not None:
            compiled = scenario.compile(jobs)
            jobs = list(compiled.jobs)
            cancellations = compiled.inputs.cancellations
            failures = compiled.inputs.failures
            recovery = compiled.inputs.recovery
            cancel_over_limit = compiled.cancel_over_limit
            scenario_digest = compiled.digest
        else:
            jobs = list(jobs)
        failures_digest = ""
        recovery_spec = ""
        if failures is not None and failures:
            failures_digest = failures.fingerprint()
        else:
            failures = None
        if recovery is not None:
            from repro.failures.recovery import recovery_from_spec

            # Canonicalize (and fail fast on malformed specs) before the
            # spec reaches fingerprints or workers.
            recovery_spec = recovery = recovery_from_spec(recovery).spec
        chosen = list(configs) if configs is not None else list(paper_configurations())
        digest = fingerprint_jobs(jobs)
        manifest = manifest_for(
            workload_digest=digest,
            configs=[config.key for config in chosen],
            total_nodes=total_nodes,
            weighted=weighted,
            recompute_threshold=recompute_threshold,
            failures_digest=failures_digest,
            recovery=recovery_spec,
            cache_version=CACHE_VERSION,
            workload_name=workload_name,
            n_jobs=len(jobs),
            reference_key=reference_key,
            scenario=scenario_digest,
        )
        return _PreparedRun(
            jobs=jobs,
            chosen=chosen,
            digest=digest,
            failures=failures,
            recovery=recovery,
            failures_digest=failures_digest,
            recovery_spec=recovery_spec,
            cancellations=cancellations,
            cancel_over_limit=cancel_over_limit,
            scenario_digest=scenario_digest,
            manifest=manifest,
        )

    def run_id_for(self, jobs: Sequence[Job], **kwargs: object) -> str:
        """The deterministic run id :meth:`run` would journal under.

        Accepts the grid-shaping keyword arguments of :meth:`run`
        (``workload_name``, ``total_nodes``, ``weighted``, ``configs``,
        ``recompute_threshold``, ``reference_key``, ``failures``,
        ``recovery``, ``scenario``); drivers use it to print or predict
        the ``--resume`` handle without running anything.
        """
        return str(self._prepare(jobs, **kwargs).manifest["run"])  # type: ignore[arg-type]

    def _on_signal(self, signum: int, frame: object) -> None:
        if self._interrupted is not None:
            # Second signal: the operator is insistent — restore the
            # default disposition so a third one kills us outright.
            try:
                signal.signal(signum, signal.SIG_DFL)
            except (OSError, ValueError):  # pragma: no cover - exotic platform
                pass
            return
        self._interrupted = signal.Signals(signum).name

    def _install_signal_handlers(self) -> dict[int, object] | None:
        """Install graceful-shutdown handlers (main thread only)."""
        if (
            not self.handle_signals
            or threading.current_thread() is not threading.main_thread()
        ):
            return None
        self._interrupted = None
        previous: dict[int, object] = {}
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[sig] = signal.signal(sig, self._on_signal)
            except (OSError, ValueError):  # pragma: no cover - exotic platform
                pass
        self._handlers_active = bool(previous)
        return previous or None

    def _restore_signal_handlers(self, previous: dict[int, object] | None) -> None:
        self._handlers_active = False
        if not previous:
            return
        for sig, handler in previous.items():
            try:
                signal.signal(sig, handler)  # type: ignore[arg-type]
            except (OSError, ValueError):  # pragma: no cover - exotic platform
                pass

    def run(
        self,
        jobs: Sequence[Job],
        *,
        workload_name: str = "workload",
        total_nodes: int = 256,
        weighted: bool = False,
        configs: Sequence[SchedulerConfig] | None = None,
        recompute_threshold: float = 2.0 / 3.0,
        progress: ProgressFn | None = None,
        reference_key: str | None = None,
        failures: "FailureTrace | None" = None,
        recovery: str | None = None,
        scenario: "ScenarioSpec | None" = None,
        resume_run_id: str | None = None,
    ) -> GridResult:
        """Run one grid; the parallel, cached equivalent of ``run_grid``.

        Cells are fingerprinted first; hits come from the cache, misses
        are simulated (fanned out when ``workers > 1``) and written back
        as they finish — so an interrupted run resumes where it stopped.
        ``grid.cells`` is always in config order regardless of completion
        order, and the ``progress`` callback (``run_grid`` compatible)
        fires in that same order after all cells exist.

        ``scenario`` runs every cell under a compiled
        :class:`~repro.scenarios.spec.ScenarioSpec`: the spec is compiled
        once against ``jobs`` (arrival components may rewrite the
        stream), its canonical digest joins every cell fingerprint and
        the run manifest, and the compiled disturbance inputs ship to the
        workers — no per-component wiring anywhere in the engine.  The
        legacy ``failures``/``recovery`` keywords still work (mutually
        exclusive with ``scenario``) and are translated into an
        equivalent spec, sharing one cache identity.  ``recovery`` must
        be a spec string (workers rebuild the policy from it).

        When a journal root is available (a cache or ``journal_dir``),
        the run is journaled under its deterministic id: a fresh run
        truncates any prior journal for the same grid, while
        ``resume_run_id`` (usually via :meth:`resume`) appends to the
        existing one after verifying the manifest still matches —
        mismatches raise
        :class:`~repro.experiments.journal.ManifestMismatchError`.
        """
        prep = self._prepare(
            jobs,
            workload_name=workload_name,
            total_nodes=total_nodes,
            weighted=weighted,
            configs=configs,
            recompute_threshold=recompute_threshold,
            reference_key=reference_key,
            failures=failures,
            recovery=recovery,
            scenario=scenario,
        )
        jobs = prep.jobs
        failures = prep.failures
        recovery = prep.recovery
        chosen = prep.chosen
        run_id = str(prep.manifest["run"])
        journal_root = self._journal_root()
        if resume_run_id is not None:
            if journal_root is None:
                raise ValueError(
                    "resume requires a journal: configure a cache or journal_dir"
                )
            path = journal_path(journal_root, resume_run_id)
            diffs = manifest_diffs(read_journal(path).manifest, prep.manifest)
            if diffs:
                raise ManifestMismatchError(resume_run_id, diffs)

        grid = GridResult(
            workload_name=workload_name,
            weighted=weighted,
            total_nodes=total_nodes,
            n_jobs=len(jobs),
            reference_key=reference_key,
        )
        stats = RunStats(total_cells=len(chosen))
        stats.run_id = run_id if journal_root is not None else None
        self.stats = stats
        self._run_id = stats.run_id

        journal: RunJournal | None = None
        already: set[str] = set()
        if journal_root is not None:
            path = journal_path(journal_root, run_id)
            if resume_run_id is not None:
                journal, replay = RunJournal.open_resume(path)
                # Cells already terminal in the journal keep their original
                # records; only genuinely new transitions are appended.
                already = set(replay.completed)
            else:
                journal = RunJournal.create(path, prep.manifest)
        self._journal = journal

        t_start = time.perf_counter()
        self._emit(
            ProgressEvent(
                kind="grid-started",
                workload_name=workload_name,
                weighted=weighted,
                run_id=stats.run_id,
            )
        )

        try:
            results: dict[str, CellResult] = {}
            pending: list[tuple[SchedulerConfig, str]] = []
            for config in chosen:
                fp = cell_fingerprint(
                    prep.digest,
                    config,
                    total_nodes=total_nodes,
                    weighted=weighted,
                    recompute_threshold=recompute_threshold,
                    failures_digest=prep.failures_digest,
                    recovery=prep.recovery_spec,
                    scenario=prep.scenario_digest,
                )
                grid.fingerprints[config.key] = fp
                cell = self.cache.get(fp) if self.cache is not None else None
                if cell is not None:
                    results[config.key] = cell
                    stats.cache_hits += 1
                    if config.key not in already:
                        self._journal_cell(
                            config.key,
                            "completed",
                            fingerprint=fp,
                            objective=cell.objective,
                            cached=True,
                        )
                    self._emit(
                        ProgressEvent(
                            kind="cache-hit",
                            workload_name=workload_name,
                            weighted=weighted,
                            key=config.key,
                            objective=cell.objective,
                            cached=True,
                        )
                    )
                else:
                    self._journal_cell(config.key, "scheduled", fingerprint=fp)
                    pending.append((config, fp))

            previous = self._install_signal_handlers() if journal is not None else None
            try:
                if self.workers > 1 and len(pending) > 1:
                    self._run_parallel(
                        pending, jobs, grid, stats, recompute_threshold, results,
                        failures, recovery, prep.cancellations,
                        prep.cancel_over_limit, prep.digest,
                    )
                else:
                    self._run_serial(
                        pending, jobs, grid, stats, recompute_threshold, results,
                        failures, recovery, prep.cancellations,
                        prep.cancel_over_limit,
                    )
            finally:
                self._restore_signal_handlers(previous)
        finally:
            if journal is not None:
                journal.close()
            self._journal = None

        for config in chosen:
            grid.cells[config.key] = results[config.key]
            if progress is not None:
                progress(config, results[config.key])
        stats.wall_time = time.perf_counter() - t_start
        self._emit(
            ProgressEvent(
                kind="grid-finished",
                workload_name=workload_name,
                weighted=weighted,
                wall_time=stats.wall_time,
                run_id=stats.run_id,
            )
        )
        return grid

    def resume(
        self, run_id: str, jobs: Sequence[Job], **kwargs: object
    ) -> GridResult:
        """Resume a journaled run from its deterministic ``run_id``.

        The caller supplies the same job stream and grid-shaping keyword
        arguments as the original :meth:`run`; the journal's manifest is
        verified against them (:class:`~repro.experiments.journal.
        ManifestMismatchError` on drift, :class:`~repro.experiments.
        journal.UnknownRunError` when no journal exists).  Completed
        cells are skipped via the cache, and only the remainder is
        re-dispatched.
        """
        return self.run(jobs, resume_run_id=run_id, **kwargs)  # type: ignore[arg-type]

    def run_scenarios(
        self,
        jobs: Sequence[Job],
        scenarios: "Mapping[str, ScenarioSpec | None]",
        *,
        workload_name: str = "workload",
        **kwargs: object,
    ) -> Mapping[str, GridResult]:
        """Sweep named :class:`~repro.scenarios.spec.ScenarioSpec`s.

        Runs one full grid per spec (the scenario name is appended to
        ``workload_name`` for progress events) and returns
        ``{scenario_name: GridResult}`` in mapping order.  ``None`` (or
        the empty spec) is the healthy baseline.  Cells are cached per
        scenario — the canonical spec digest is part of every fingerprint
        — so re-sweeping with one extra scenario only simulates the new
        cells.
        """
        out: dict[str, GridResult] = {}
        for name, spec in scenarios.items():
            out[name] = self.run(
                jobs,
                workload_name=f"{workload_name}[{name}]",
                scenario=spec,
                **kwargs,  # type: ignore[arg-type]
            )
        return out

    def run_failure_scenarios(
        self,
        jobs: Sequence[Job],
        scenarios: Sequence[FailureScenario],
        *,
        workload_name: str = "workload",
        **kwargs: object,
    ) -> Mapping[str, GridResult]:
        """Sweep named failure scenarios over one workload.

        A compatibility veneer over :meth:`run_scenarios`: each
        :class:`FailureScenario` is translated into an equivalent
        single-``FailureModel`` spec (byte-identical trace, same cache
        identity), so failure sweeps and spec sweeps share one path.
        """
        names = [s.name for s in scenarios]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate scenario names: {names}")
        return self.run_scenarios(
            jobs,
            {
                s.name: spec_from_legacy(failures=s.failures, recovery=s.recovery)
                for s in scenarios
            },
            workload_name=workload_name,
            **kwargs,  # type: ignore[arg-type]
        )

    def _run_serial(
        self,
        pending: list[tuple[SchedulerConfig, str]],
        jobs: list[Job],
        grid: GridResult,
        stats: RunStats,
        recompute_threshold: float,
        results: dict[str, CellResult],
        failures: "FailureTrace | None",
        recovery: str | None,
        cancellations: "tuple[Cancellation, ...]" = (),
        cancel_over_limit: bool = False,
    ) -> None:
        for index, (config, fp) in enumerate(pending):
            if self._interrupted is not None:
                for later_config, later_fp in pending[index:]:
                    self._journal_cell(
                        later_config.key, "interrupted", fingerprint=later_fp
                    )
                raise RunInterrupted(
                    self._run_id,
                    signal_name=self._interrupted,
                    completed=stats.cache_hits + stats.simulated,
                    remaining=len(pending) - index,
                )
            self._emit(
                ProgressEvent(
                    kind="cell-started",
                    workload_name=grid.workload_name,
                    weighted=grid.weighted,
                    key=config.key,
                )
            )
            self._journal_cell(config.key, "started", fingerprint=fp)
            t0 = time.perf_counter()
            cell = simulate_cell(
                config,
                jobs,
                total_nodes=grid.total_nodes,
                weighted=grid.weighted,
                recompute_threshold=recompute_threshold,
                failures=failures,
                recovery=recovery,
                cancellations=cancellations,
                cancel_over_limit=cancel_over_limit,
                backend=self.backend,
            )
            wall = time.perf_counter() - t0
            self._record(config.key, fp, cell, wall, grid, stats, results)

    def _run_parallel(
        self,
        pending: list[tuple[SchedulerConfig, str]],
        jobs: list[Job],
        grid: GridResult,
        stats: RunStats,
        recompute_threshold: float,
        results: dict[str, CellResult],
        failures: "FailureTrace | None",
        recovery: str | None,
        cancellations: "tuple[Cancellation, ...]",
        cancel_over_limit: bool,
        digest: str,
    ) -> None:
        config_by_fp = {fp: config for config, fp in pending}
        attempts: dict[str, int] = {}
        serial_fallback: list[tuple[SchedulerConfig, str]] = []
        rng = random.Random()
        rebuilds = 0

        # Zero-copy dispatch: register the packed stream once, ship only
        # the digest per cell; workers hydrate via the pool initializer.
        # The legacy path (store off) pickles the job tuple per cell.
        if self.use_workload_store:
            self.workload_store.register(digest, jobs)
            store_entries = self.workload_store.entries(digest)
            payload: "str | tuple[Job, ...]" = digest
        else:
            store_entries = None
            payload = tuple(jobs)

        # Worker watchdog: each worker touches <hb_dir>/<pid>.hb from a
        # daemon thread (see workload_store.init_worker); the dispatch
        # loop treats a directory with no fresh touch while cells are in
        # flight as a silently dead pool (SIGKILL leaves no
        # BrokenProcessPool until the executor notices — sometimes never
        # for a SIGSTOPped worker).  ``hb_epoch`` marks pool creation so
        # a fresh pool gets the full budget before its first touch.
        hb_dir = (
            tempfile.mkdtemp(prefix="repro-hb-")
            if self.heartbeat_interval is not None
            else None
        )
        hb_budget = self.heartbeat_timeout or 0.0
        hb_epoch = time.time()

        def hb_freshest() -> float:
            newest = freshest_heartbeat(hb_dir) if hb_dir is not None else None
            return max(newest or 0.0, hb_epoch)

        def task_args(config: SchedulerConfig) -> tuple:
            return (
                config.row,
                config.column,
                payload,
                grid.total_nodes,
                grid.weighted,
                recompute_threshold,
                failures,
                recovery,
                cancellations,
                cancel_over_limit,
                self.backend,
            )

        def make_pool() -> ProcessPoolExecutor:
            # A rebuilt pool re-seeds its workers from the store and
            # re-arms their heartbeats: the initializer runs again in
            # every fresh worker process.
            nonlocal hb_epoch
            kwargs: dict = {}
            if store_entries is not None or hb_dir is not None:
                kwargs["initializer"] = init_worker
                kwargs["initargs"] = (
                    store_entries,
                    hb_dir,
                    self.heartbeat_interval,
                )
            hb_epoch = time.time()
            return ProcessPoolExecutor(
                max_workers=min(self.workers, len(pending)),
                mp_context=_pool_context(),
                **kwargs,
            )

        pool = make_pool()
        futures: dict[Future, str] = {}
        deadlines: dict[Future, float] = {}
        #: Min-heap of (deadline, seq, future) mirroring ``deadlines`` —
        #: the next-deadline lookup is O(log n) with lazy invalidation
        #: instead of min(deadlines.values()) on every wakeup.  Unused
        #: (and unmaintained) when no cell timeout is configured.
        deadline_heap: list[tuple[float, int, Future]] = []
        heap_seq = count()
        #: Cells waiting out a retry backoff: fp -> perf_counter instant at
        #: which they go back to the pool.  Folding these deadlines into
        #: the wait timeout (instead of time.sleep in the monitor loop)
        #: keeps every other in-flight future being collected during the
        #: pause.
        resubmit_at: dict[str, float] = {}

        def submit(fp: str) -> None:
            self._journal_cell(config_by_fp[fp].key, "started", fingerprint=fp)
            future = pool.submit(_run_cell_task, task_args(config_by_fp[fp]))
            futures[future] = fp
            if self.cell_timeout is not None:
                deadline = time.perf_counter() + self.cell_timeout
                deadlines[future] = deadline
                heapq.heappush(deadline_heap, (deadline, next(heap_seq), future))

        def charge_retry(fp: str, why: str) -> None:
            """Charge a retry for ``fp``: schedule its resubmission, or send
            it to the serial fallback once the budget is exhausted."""
            attempts[fp] = attempts.get(fp, 0) + 1
            if attempts[fp] > self.max_retries:
                self._journal_cell(
                    config_by_fp[fp].key, "abandoned", fingerprint=fp, detail=why
                )
                serial_fallback.append((config_by_fp[fp], fp))
                return
            self._journal_cell(
                config_by_fp[fp].key, "failed", fingerprint=fp, detail=why
            )
            stats.retries += 1
            pause = (
                self.retry_backoff
                * (2 ** (attempts[fp] - 1))
                * rng.uniform(0.5, 1.5)
            )
            self._emit(
                ProgressEvent(
                    kind="cell-retry",
                    workload_name=grid.workload_name,
                    weighted=grid.weighted,
                    key=config_by_fp[fp].key,
                    wall_time=pause,
                    detail=f"attempt {attempts[fp]}/{self.max_retries}: {why}",
                )
            )
            resubmit_at[fp] = time.perf_counter() + pause

        def next_wait_timeout() -> float | None:
            """Seconds until the next dispatch-loop deadline (None: never).

            Folds together the cell-timeout heap (peeked with lazy
            invalidation), the soonest retry resubmission, the watchdog's
            heartbeat deadline, and — while signal handlers are active —
            a 0.5 s responsiveness cap so a SIGINT/SIGTERM flag is
            noticed promptly even though ``wait`` resumes after the
            handler runs (PEP 475).
            """
            now = time.perf_counter()
            candidates: list[float] = []
            if self.cell_timeout is not None:
                while deadline_heap and deadline_heap[0][2] not in futures:
                    heapq.heappop(deadline_heap)
                if deadline_heap:
                    candidates.append(deadline_heap[0][0] - now)
            if resubmit_at:
                candidates.append(min(resubmit_at.values()) - now)
            if hb_dir is not None and futures:
                candidates.append((hb_freshest() + hb_budget) - time.time())
            if self._handlers_active:
                candidates.append(0.5)
            if not candidates:
                return None
            return max(0.0, min(candidates))

        for config, fp in pending:
            self._emit(
                ProgressEvent(
                    kind="cell-started",
                    workload_name=grid.workload_name,
                    weighted=grid.weighted,
                    key=config.key,
                )
            )
            submit(fp)

        try:
            while futures or resubmit_at:
                if self._interrupted is not None:
                    # Graceful shutdown: journal everything unfinished as
                    # interrupted, kill the pool, surface the resumable id.
                    unfinished = (
                        set(futures.values())
                        | set(resubmit_at)
                        | {fp for _, fp in serial_fallback}
                    )
                    for fp in sorted(unfinished):
                        self._journal_cell(
                            config_by_fp[fp].key, "interrupted", fingerprint=fp
                        )
                    raise RunInterrupted(
                        self._run_id,
                        signal_name=self._interrupted,
                        completed=stats.cache_hits + stats.simulated,
                        remaining=len(unfinished),
                    )
                if resubmit_at:
                    now = time.perf_counter()
                    due = [fp for fp, at in resubmit_at.items() if at <= now]
                    for fp in due:
                        del resubmit_at[fp]
                        submit(fp)
                    if not futures:
                        # Nothing in flight: idle until the next resubmit
                        # (capped for signal responsiveness while handlers
                        # are active).
                        pause = min(resubmit_at.values()) - time.perf_counter()
                        if self._handlers_active:
                            pause = min(pause, 0.5)
                        if pause > 0:
                            time.sleep(pause)
                        continue
                done, _ = wait(
                    set(futures),
                    timeout=next_wait_timeout(),
                    return_when=FIRST_COMPLETED,
                )
                retry_now: list[str] = []
                pool_broken = False
                if not done:
                    now = time.perf_counter()
                    overdue = {
                        fp
                        for future, fp in futures.items()
                        if now >= deadlines.get(future, math.inf)
                    }
                    # Watchdog: no worker heartbeat within the budget while
                    # cells are in flight means the pool died without a
                    # BrokenProcessPool (SIGKILL before first result,
                    # SIGSTOP forever) — every in-flight cell is charged,
                    # since a dead pool leaves no one to blame precisely.
                    stalled = (
                        hb_dir is not None
                        and bool(futures)
                        and time.time() - hb_freshest() > hb_budget
                    )
                    if not overdue and not stalled:
                        # Woke for a resubmit/responsiveness deadline, not
                        # a hung cell or dead pool.
                        continue
                    # A cell blew its wall-clock budget (or the pool lost
                    # its pulse): kill the pool; charged cells take a
                    # retry, every other in-flight cell resubmits for free.
                    for future, fp in futures.items():
                        if fp in overdue:
                            charge_retry(
                                fp, f"exceeded cell_timeout={self.cell_timeout}s"
                            )
                        elif stalled:
                            charge_retry(
                                fp,
                                f"lost worker heartbeat for more than "
                                f"{hb_budget:.0f}s: pool presumed dead",
                            )
                        else:
                            retry_now.append(fp)
                    futures.clear()
                    deadlines.clear()
                    deadline_heap.clear()
                    pool_broken = True
                else:
                    for future in done:
                        fp = futures.pop(future)
                        deadlines.pop(future, None)
                        try:
                            key, cell, wall = future.result()
                        except BrokenProcessPool as exc:
                            pool_broken = True
                            charge_retry(fp, f"worker crashed: {exc!r}")
                        except Exception as exc:
                            # The task itself raised inside a healthy
                            # worker: retry (flaky crashes recover), then
                            # surface deterministic errors via the serial
                            # fallback where the traceback is direct.
                            charge_retry(fp, f"cell raised: {exc!r}")
                        else:
                            self._record(
                                key, fp, cell, wall, grid, stats, results
                            )
                    if pool_broken:
                        # A broken executor dooms every in-flight future;
                        # resubmit them to the next pool uncharged.
                        retry_now.extend(futures.values())
                        futures.clear()
                        deadlines.clear()
                        deadline_heap.clear()
                if pool_broken:
                    _terminate_pool(pool)
                    rebuilds += 1
                    stats.pool_rebuilds += 1
                    if rebuilds > self.max_pool_rebuilds:
                        # Give up on parallelism entirely: everything still
                        # in flight or waiting out a backoff goes serial.
                        serial_fallback.extend(
                            (config_by_fp[fp], fp) for fp in retry_now
                        )
                        serial_fallback.extend(
                            (config_by_fp[fp], fp) for fp in futures.values()
                        )
                        serial_fallback.extend(
                            (config_by_fp[fp], fp) for fp in resubmit_at
                        )
                        futures.clear()
                        deadlines.clear()
                        deadline_heap.clear()
                        resubmit_at.clear()
                        break
                    pool = make_pool()
                for fp in retry_now:
                    submit(fp)
        finally:
            _terminate_pool(pool)
            if hb_dir is not None:
                # Worker heartbeat threads exit on their next touch (the
                # sentinel directory is gone).
                shutil.rmtree(hb_dir, ignore_errors=True)

        if serial_fallback:
            # Deduplicate while preserving order (a cell can be queued for
            # fallback once via retries and once via the rebuild budget).
            seen: set[str] = set()
            unique = [
                (config, fp)
                for config, fp in serial_fallback
                if not (fp in seen or seen.add(fp))
            ]
            stats.degraded_cells += len(unique)
            self._emit(
                ProgressEvent(
                    kind="engine-degraded",
                    workload_name=grid.workload_name,
                    weighted=grid.weighted,
                    detail=(
                        f"{len(unique)} cell(s) fell back to in-process serial "
                        f"execution after {stats.retries} retries and "
                        f"{stats.pool_rebuilds} pool rebuilds"
                    ),
                )
            )
            self._run_serial(
                unique, jobs, grid, stats, recompute_threshold, results,
                failures, recovery, cancellations, cancel_over_limit,
            )

    def _record(
        self,
        key: str,
        fingerprint: str,
        cell: CellResult,
        wall: float,
        grid: GridResult,
        stats: RunStats,
        results: dict[str, CellResult],
    ) -> None:
        results[key] = cell
        stats.simulated += 1
        if self.cache is not None:
            self.cache.put(fingerprint, cell)
        # Cache write lands before the journal record: a crash between
        # the two leaves an orphaned cache entry (healed on resume), never
        # a journaled completion with no backing result.
        self._journal_cell(
            key, "completed", fingerprint=fingerprint, objective=cell.objective
        )
        self._emit(
            ProgressEvent(
                kind="cell-finished",
                workload_name=grid.workload_name,
                weighted=grid.weighted,
                key=key,
                wall_time=wall,
                objective=cell.objective,
            )
        )

"""Experiment harness regenerating the paper's Tables 3–8 and Figures 3–6.

* :mod:`repro.experiments.runner` — the grid result records and the serial
  ``run_grid`` convenience wrapper;
* :mod:`repro.experiments.engine` — the parallel experiment engine:
  process-pool cell fan-out, content-addressed result caching, structured
  progress events;
* :mod:`repro.experiments.tables` — render results in the paper's table
  layout (Listscheduler / Backfilling / EASY-Backfilling columns, absolute
  values plus percentages against the FCFS+EASY reference);
* :mod:`repro.experiments.paper` — one entry per paper artifact, each
  bundling the workload recipe, the regime, the paper's published numbers
  and the comparison report;
* :mod:`repro.experiments.journal` — the crash-tolerant run lifecycle:
  append-only run journals, deterministic run ids, resume, the
  ``verify_run`` integrity audit;
* :mod:`repro.experiments.cli` — ``repro-experiments`` command line.
"""

from repro.experiments.runner import CellResult, GridResult, run_grid
from repro.experiments.engine import (
    CachePruneStats,
    ExperimentEngine,
    FailureScenario,
    ProgressEvent,
    ResultCache,
    RunStats,
)
from repro.experiments.journal import (
    JournalCorruptError,
    JournalError,
    ManifestMismatchError,
    RunAudit,
    RunInterrupted,
    RunJournal,
    RunSummary,
    UnknownRunError,
    list_runs,
    read_journal,
    verify_run,
)
from repro.experiments.paper import (
    EXPERIMENTS,
    ExperimentSpec,
    run_experiment,
)
from repro.experiments.tables import format_grid, format_comparison

__all__ = [
    "CachePruneStats",
    "CellResult",
    "EXPERIMENTS",
    "ExperimentEngine",
    "ExperimentSpec",
    "FailureScenario",
    "GridResult",
    "JournalCorruptError",
    "JournalError",
    "ManifestMismatchError",
    "ProgressEvent",
    "ResultCache",
    "RunAudit",
    "RunInterrupted",
    "RunJournal",
    "RunStats",
    "RunSummary",
    "UnknownRunError",
    "format_comparison",
    "format_grid",
    "list_runs",
    "read_journal",
    "run_experiment",
    "run_grid",
    "verify_run",
]

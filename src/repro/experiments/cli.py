"""Command line: ``repro-experiments [ids...] [--scale N] [--seed S]``.

Regenerates paper artifacts from the shell::

    repro-experiments table3                 # laptop-scale Table 3
    repro-experiments fig3 fig4 --scale 2000
    repro-experiments all --scale 1000       # everything, small
    repro-experiments table3 --full          # paper-scale job count (slow!)
    repro-experiments all --workers 8        # parallel cell fan-out

Reports print to stdout; ``--out DIR`` additionally writes one text file
per experiment and regime.

Grid cells run through the parallel experiment engine: ``--workers N``
fans independent cells out over N processes, and results are cached
content-addressed under ``--cache-dir`` (default ``.repro-cache``), so
re-runs and interrupted runs only simulate what is missing.  ``--no-cache``
forces fresh simulations; ``--events FILE`` appends the engine's
structured progress events as JSON lines.

Every cached run is journaled under ``<cache>/runs/<run_id>.jsonl``
(crash-tolerant run lifecycle)::

    repro-experiments --list-runs            # journals + cache prune stats
    repro-experiments table3 --resume RUN_ID # re-dispatch only the remainder
    repro-experiments --verify-run RUN_ID    # audit journal vs cache
    repro-experiments --verify-run all

A run killed by SIGINT/SIGTERM exits cleanly (status 130) after printing
the ``--resume`` handle.

A fleet of remote workers turns the same grid into a distributed run
(trusted networks only — the wire protocol ships pickles)::

    repro-experiments --serve-worker 9100            # on each worker host
    repro-experiments all --backend-exec remote \\
        --connect hostA:9100 --connect hostB:9100 \\
        --remote-cache hostA:9100

``--remote-cache`` also accepts an S3-compatible object store
(``s3://HOST:PORT/BUCKET[/PREFIX]``, path-style, MinIO-friendly) as the
durable fleet cache; entries are checksummed, validated before trust,
and poisoned objects are quarantined under a ``quarantine/`` prefix::

    repro-experiments all --workers 8 \\
        --remote-cache s3://minio.internal:9000/repro-cache/grids

Execution backends never change results: grids, per-cell fingerprints
and run ids are bit-identical whether cells ran serially, in a local
pool, in sharded pools, or on a remote fleet that crashed halfway
through (lease expiry, retries and the remote -> sharded -> local ->
serial degradation ladder guarantee completion).

Scenario runs (see :mod:`repro.scenarios`) are driven either by a JSON
spec file or by convenience flags that translate into spec components::

    repro-experiments table3 --scenario spec.json
    repro-experiments table3 --failure-mtbf 40000 --recovery resubmit
    repro-experiments table3 --cancellation-rate 0.05 --scenario-seed 7

Both styles meet in one :class:`~repro.scenarios.spec.ScenarioSpec`, so
the canonical scenario digest — and with it caching, journaling and
``--resume`` — is identical no matter how the scenario was spelled.
"""

from __future__ import annotations

import argparse
import sys
from typing import TYPE_CHECKING
from pathlib import Path

from repro.experiments.paper import EXPERIMENTS, run_experiment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.engine import ResultCache
    from repro.experiments.journal import RunSummary
    from repro.scenarios import ScenarioSpec


def _journal_root(args: argparse.Namespace) -> Path:
    if args.journal_dir is not None:
        return args.journal_dir
    return args.cache_dir / "runs"


def _evicted_cells(summary: "RunSummary", cache: "ResultCache") -> int:
    """Completed cells of a journaled run whose cache entries are gone.

    A CACHE_VERSION bump (or a prune after one) evicts every entry the
    journal's fingerprints point at; ``--resume`` of such a run will
    re-simulate those cells, so ``--list-runs`` says so out loud.
    """
    from repro.experiments.journal import JournalError, read_journal

    if summary.path is None or summary.status == "corrupt":
        return 0
    try:
        replay = read_journal(summary.path)
    except JournalError:
        return 0
    missing = 0
    for key in replay.completed:
        fingerprint = replay.cells[key].fingerprint
        if fingerprint and cache.status(fingerprint) != "hit":
            missing += 1
    return missing


def _cmd_list_runs(args: argparse.Namespace) -> int:
    from repro.experiments.engine import ResultCache
    from repro.experiments.journal import list_runs

    summaries = list_runs(_journal_root(args))
    if not summaries:
        print(f"no runs journaled under {_journal_root(args)}")
    for summary in summaries:
        print(summary.describe())
    if not args.no_cache and args.cache_dir.is_dir():
        cache = ResultCache(args.cache_dir)
        for summary in summaries:
            evicted = _evicted_cells(summary, cache)
            if evicted:
                print(
                    f"note: run {summary.run_id} references {evicted} "
                    f"completed cell(s) whose cache entries were evicted "
                    f"(version skew or prune); --resume will re-simulate them"
                )
        # Listing runs is the natural moment to sweep the cache the
        # journals point into: stale entries out, corruption quarantined.
        print(cache.prune().describe())
    return 0


def scenario_from_args(args: argparse.Namespace) -> "ScenarioSpec | None":
    """Build the run's :class:`~repro.scenarios.spec.ScenarioSpec`.

    ``--scenario FILE`` loads a JSON spec; ``--cancellation-rate``,
    ``--failure-mtbf``/``--failure-mttr``/``--recovery`` translate into
    the equivalent components and are appended to it (component order
    never matters).  ``--scenario-seed`` overrides the spec seed.
    Returns ``None`` — the healthy baseline — when nothing was asked for.
    """
    from repro.scenarios import CancellationModel, FailureModel, ScenarioSpec

    spec = ScenarioSpec()
    if args.scenario is not None:
        spec = ScenarioSpec.from_json(args.scenario.read_text(encoding="utf-8"))
    extras: list = []
    if args.cancellation_rate is not None:
        extras.append(CancellationModel(fraction=args.cancellation_rate))
    if args.failure_mtbf is not None:
        extras.append(
            FailureModel(
                mtbf=args.failure_mtbf,
                mttr=3600.0 if args.failure_mttr is None else args.failure_mttr,
                recovery=args.recovery,
                total_nodes=args.nodes,
            )
        )
    if extras:
        spec = spec.with_components(*extras)
    if not spec.components:
        return None
    if args.scenario_seed is not None:
        from dataclasses import replace

        spec = replace(spec, seed=args.scenario_seed)
    return spec


def _cmd_verify_run(args: argparse.Namespace) -> int:
    from repro.experiments.engine import ResultCache
    from repro.experiments.journal import JournalError, list_runs, verify_run

    root = _journal_root(args)
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    if args.verify_run == "all":
        run_ids = [s.run_id for s in list_runs(root) if s.status != "corrupt"]
        if not run_ids:
            print(f"no runs journaled under {root}")
            return 0
    else:
        run_ids = [args.verify_run]
    failures = 0
    for run_id in run_ids:
        try:
            audit = verify_run(run_id, journal_dir=root, cache=cache)
        except JournalError as exc:
            print(f"run {run_id}: UNREADABLE ({exc})", file=sys.stderr)
            failures += 1
            continue
        print(audit.describe())
        if not audit.ok:
            failures += 1
    return 1 if failures else 0


def _cmd_profile_cell(args: argparse.Namespace) -> int:
    """Re-simulate one journaled cell with per-phase instrumentation.

    Locates the cell by (a prefix of) its cache fingerprint with the same
    journal walk ``--verify-run`` performs, rebuilds the run's workload
    from its manifest recipe (and the scenario from the CLI flags, when
    the cell ran under one), proves the reconstruction by recomputing the
    cell fingerprint, then re-runs that single cell with
    ``SimulationConfig(profile_phases=True)`` and prints the
    ``phase_seconds`` breakdown plus the coalescing counters — a
    regression is attributable to a phase without reaching for a
    profiler.
    """
    from repro.core.machine import Machine
    from repro.core.simulator import ScenarioInputs, SimulationConfig, Simulator
    from repro.experiments.engine import cell_fingerprint, fingerprint_jobs
    from repro.experiments.journal import (
        JournalError,
        journal_path,
        list_runs,
        read_journal,
    )
    from repro.schedulers.registry import SchedulerConfig, build_scheduler

    target = args.profile_cell
    root = _journal_root(args)
    matches: list[tuple[str, str, str, dict]] = []
    seen: set[str] = set()
    for summary in list_runs(root):
        if summary.status == "corrupt":
            continue
        try:
            replay = read_journal(journal_path(root, summary.run_id))
        except JournalError:
            continue
        for key, cell in replay.cells.items():
            fingerprint = cell.fingerprint
            if not fingerprint or not fingerprint.startswith(target):
                continue
            if fingerprint not in seen:
                seen.add(fingerprint)
                matches.append((summary.run_id, key, fingerprint, replay.manifest))
    if not matches:
        print(
            f"no journaled cell under {root} has a fingerprint starting "
            f"with {target!r}",
            file=sys.stderr,
        )
        return 1
    if len(matches) > 1:
        print(
            f"fingerprint prefix {target!r} is ambiguous "
            f"({len(matches)} cells):",
            file=sys.stderr,
        )
        for run_id, key, fingerprint, _manifest in matches:
            print(f"  {fingerprint}  {key} (run {run_id})", file=sys.stderr)
        return 1
    run_id, key, fingerprint, manifest = matches[0]

    name = str(manifest.get("workload_name", "workload"))
    spec = next(
        (s for s in EXPERIMENTS.values() if s.description == name), None
    )
    if spec is None:
        print(
            f"cell {key} of run {run_id} used workload {name!r}, which is "
            "not a registered experiment recipe — cannot rebuild its jobs",
            file=sys.stderr,
        )
        return 1
    scale = args.scale if args.scale is not None else int(manifest.get("n_jobs", 0))
    jobs = spec.workload(scale, args.seed)

    # Recompile the scenario (if any) exactly as the engine did, then prove
    # the whole reconstruction by recomputing the cell fingerprint.
    scenario_spec = scenario_from_args(args)
    cancellations: tuple = ()
    failures = None
    recovery = None
    cancel_over_limit = False
    scenario_digest = ""
    if scenario_spec is not None:
        compiled = scenario_spec.compile(jobs)
        jobs = list(compiled.jobs)
        cancellations = compiled.inputs.cancellations
        failures = compiled.inputs.failures
        recovery = compiled.inputs.recovery
        cancel_over_limit = compiled.cancel_over_limit
        scenario_digest = compiled.digest
    failures_digest = failures.fingerprint() if failures else ""
    recovery_spec = ""
    if recovery is not None:
        from repro.failures.recovery import recovery_from_spec

        recovery_spec = recovery = recovery_from_spec(recovery).spec
    total_nodes = int(manifest["total_nodes"])
    weighted = bool(manifest["weighted"])
    recompute_threshold = float(manifest["recompute_threshold"])
    row, _, column = key.partition("/")
    config = SchedulerConfig(row=row, column=column)
    expected = cell_fingerprint(
        fingerprint_jobs(jobs),
        config,
        total_nodes=total_nodes,
        weighted=weighted,
        recompute_threshold=recompute_threshold,
        failures_digest=failures_digest,
        recovery=recovery_spec,
        scenario=scenario_digest,
    )
    if expected != fingerprint:
        print(
            f"reconstructed inputs do not reproduce fingerprint "
            f"{fingerprint}\n(got {expected}).  Re-run with the original "
            "--scale/--seed and scenario flags of run "
            f"{run_id} (workload {name!r}, {manifest.get('n_jobs')} jobs"
            f"{', scenario ' + manifest['scenario'][:12] if manifest.get('scenario') else ''}).",
            file=sys.stderr,
        )
        return 1

    simulator = Simulator(
        Machine(total_nodes),
        build_scheduler(
            config, total_nodes, weighted=weighted,
            recompute_threshold=recompute_threshold,
        ),
        SimulationConfig(
            backend=args.backend,
            cancel_over_limit=cancel_over_limit,
            profile_phases=True,
        ),
    )
    result = simulator.run(
        jobs,
        scenario=ScenarioInputs(
            cancellations=tuple(cancellations),
            failures=failures,
            recovery=recovery,
        ),
    )
    print(f"cell {key} of run {run_id}")
    print(f"  fingerprint {fingerprint}")
    print(
        f"  workload {name!r}, {len(jobs)} jobs, {total_nodes} nodes, "
        f"{'weighted' if weighted else 'unweighted'}"
    )
    print(
        f"  decision points {result.decision_points}, "
        f"backend {simulator.backend}"
    )
    print("phase_seconds:")
    for phase in ("total", "decide", "events", "commit", "coalesce", "other"):
        if phase in result.phase_seconds:
            print(f"  {phase:<10}{result.phase_seconds[phase] * 1e3:10.3f} ms")
    if result.coalesced:
        print("coalesced:")
        for counter, value in sorted(result.coalesced.items()):
            print(f"  {counter:<22}{value}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of Krallmann et al. (IPPS'99).",
    )
    from repro.experiments.extensions import EXTENSIONS

    parser.add_argument(
        "ids",
        nargs="*",
        help="experiment ids "
        f"({', '.join(sorted(EXPERIMENTS))}; extensions: "
        f"{', '.join(sorted(EXTENSIONS))}), 'all' (paper artifacts) or "
        "'ext-all' (extensions)",
    )
    parser.add_argument("--scale", type=int, default=None, help="jobs per workload")
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the paper's job counts (very slow for conservative cells)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--nodes", type=int, default=256)
    parser.add_argument("--out", type=Path, default=None, help="directory for report files")
    parser.add_argument(
        "--swf",
        type=Path,
        default=None,
        help="real trace (Standard Workload Format) replacing the synthetic "
        "CTC stand-in — e.g. the genuine CTC SP2 trace from the Parallel "
        "Workloads Archive",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for parallel grid-cell fan-out (default 1)",
    )
    parser.add_argument(
        "--backend",
        choices=["auto", "python", "numpy"],
        default=None,
        help="simulation kernel backend (default: $REPRO_BACKEND, else auto "
        "— numpy when importable); results are bit-identical either way",
    )
    parser.add_argument(
        "--backend-exec",
        choices=["local", "sharded", "remote"],
        default=None,
        help="where grid cells execute: local (single process pool, "
        "default), sharded (independent pool groups so one crash only "
        "costs its own shard), or remote (TCP workers from --connect); "
        "results are bit-identical across execution backends",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=2,
        help="pool groups for --backend-exec sharded (default 2)",
    )
    parser.add_argument(
        "--connect",
        action="append",
        default=None,
        metavar="HOST:PORT",
        help="remote worker address for --backend-exec remote (repeat "
        "for a fleet); start workers with --serve-worker",
    )
    parser.add_argument(
        "--serve-worker",
        metavar="[HOST:]PORT",
        default=None,
        help="run a remote worker serving cells (and the shared cache, "
        "unless --no-cache) on this address until killed, then exit; "
        "trusted networks only — the protocol ships pickles",
    )
    parser.add_argument(
        "--remote-cache",
        metavar="HOST:PORT|s3://…",
        default=None,
        help="shared fleet result cache: HOST:PORT reads through a "
        "worker's cache, s3://HOST:PORT/BUCKET[/PREFIX] (or s3://BUCKET "
        "with REPRO_S3_ENDPOINT set) a durable S3-compatible object "
        "store; every entry is validated before trust, poisoned objects "
        "are quarantined, and an unreachable store trips a circuit "
        "breaker that degrades the run to local-only caching",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=Path(".repro-cache"),
        help="content-addressed result cache directory (default .repro-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache: simulate every cell fresh",
    )
    parser.add_argument(
        "--events",
        type=Path,
        default=None,
        help="append engine progress events to this file as JSON lines",
    )
    parser.add_argument(
        "--no-workload-store",
        action="store_true",
        help="ship the full job tuple to every parallel cell instead of the "
        "zero-copy digest dispatch (debugging/measurement aid)",
    )
    parser.add_argument(
        "--journal-dir",
        type=Path,
        default=None,
        help="run-journal directory (default: <cache-dir>/runs)",
    )
    parser.add_argument(
        "--resume",
        metavar="RUN_ID",
        default=None,
        help="resume the journaled run with this id: completed cells are "
        "skipped via the cache, only the remainder is re-dispatched",
    )
    parser.add_argument(
        "--scenario",
        type=Path,
        default=None,
        metavar="SPEC.json",
        help="run every cell under this JSON scenario spec (see "
        "repro.scenarios; the spec's canonical digest enters every cell "
        "fingerprint and run id)",
    )
    parser.add_argument(
        "--cancellation-rate",
        type=float,
        default=None,
        metavar="FRACTION",
        help="scenario shorthand: cancel this fraction of jobs "
        "(a CancellationModel component)",
    )
    parser.add_argument(
        "--failure-mtbf",
        type=float,
        default=None,
        metavar="SECONDS",
        help="scenario shorthand: inject node failures with this "
        "mean-time-between-failures (a FailureModel component)",
    )
    parser.add_argument(
        "--failure-mttr",
        type=float,
        default=None,
        metavar="SECONDS",
        help="mean repair time for --failure-mtbf (default 3600)",
    )
    parser.add_argument(
        "--recovery",
        default=None,
        metavar="SPEC",
        help="recovery policy for injected failures: abandon, resubmit, "
        "or checkpoint:interval=T,overhead=O (needs --failure-mtbf)",
    )
    parser.add_argument(
        "--scenario-seed",
        type=int,
        default=None,
        help="override the scenario spec's seed (component sub-seeds "
        "derive from it)",
    )
    parser.add_argument(
        "--list-runs",
        action="store_true",
        help="list journaled runs (and prune the result cache), then exit",
    )
    parser.add_argument(
        "--verify-run",
        metavar="RUN_ID",
        default=None,
        help="audit a journaled run against the cache ('all' audits every "
        "journal), then exit",
    )
    parser.add_argument(
        "--profile-cell",
        metavar="FINGERPRINT",
        default=None,
        help="re-simulate one journaled cell (by cache-fingerprint prefix) "
        "with per-phase instrumentation and print its phase_seconds "
        "breakdown, then exit (pass the run's --scale/--seed/scenario "
        "flags if they differed from the defaults)",
    )
    args = parser.parse_args(argv)

    if args.serve_worker is not None:
        from repro.experiments.backends.worker import serve_worker

        cache_dir = None if args.no_cache else args.cache_dir
        try:
            serve_worker(args.serve_worker, cache_dir=cache_dir)
        except KeyboardInterrupt:
            return 130
        return 0
    if args.list_runs:
        return _cmd_list_runs(args)
    if args.verify_run is not None:
        return _cmd_verify_run(args)
    if args.profile_cell is not None:
        return _cmd_profile_cell(args)
    if not args.ids:
        parser.error(
            "experiment ids are required "
            "(or --list-runs/--verify-run/--profile-cell)"
        )
    if args.resume is not None and args.no_cache:
        parser.error("--resume needs the cache; drop --no-cache")
    if args.backend_exec == "remote" and not args.connect:
        parser.error("--backend-exec remote needs at least one --connect")
    if args.connect and args.backend_exec != "remote":
        parser.error("--connect needs --backend-exec remote")
    if args.remote_cache is not None and args.no_cache:
        parser.error("--remote-cache needs the local cache; drop --no-cache")
    if args.recovery is not None and args.failure_mtbf is None:
        parser.error("--recovery needs --failure-mtbf")
    if args.failure_mttr is not None and args.failure_mtbf is None:
        parser.error("--failure-mttr needs --failure-mtbf")
    try:
        scenario = scenario_from_args(args)
    except (OSError, ValueError) as exc:
        parser.error(f"bad scenario: {exc}")

    source_trace = None
    if args.swf is not None:
        from repro.workloads.swf import read_swf

        source_trace = read_swf(args.swf)
        print(f"loaded {len(source_trace)} jobs from {args.swf}", file=sys.stderr)

    ids = list(args.ids)
    if "all" in ids:
        ids = sorted(EXPERIMENTS) + [i for i in ids if i != "all" and i in EXTENSIONS]
    if "ext-all" in ids:
        ids = [i for i in ids if i != "ext-all"] + sorted(EXTENSIONS)
    unknown = [i for i in ids if i not in EXPERIMENTS and i not in EXTENSIONS]
    if unknown:
        parser.error(f"unknown experiment ids: {', '.join(unknown)}")

    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)

    from repro.experiments.extensions import run_extension

    for experiment_id in (i for i in ids if i in EXTENSIONS):
        result = run_extension(experiment_id, scale=args.scale, seed=args.seed)
        banner = f"=== {experiment_id} — {EXTENSIONS[experiment_id].description} ==="
        print(banner)
        print(result.report)
        print(f"claim holds: {result.claim_holds}")
        print()
        if args.out is not None:
            (args.out / f"{experiment_id}.txt").write_text(
                banner + "\n" + result.report + f"\nclaim holds: {result.claim_holds}\n"
            )

    cache = None if args.no_cache else args.cache_dir

    def on_event(event) -> None:
        from repro.analysis.persistence import append_events

        if event.kind in ("cell-finished", "cache-hit"):
            wall = f" in {event.wall_time:.2f}s" if event.wall_time is not None else ""
            hit = " (cache hit)" if event.cached else ""
            print(
                f"  {event.key}: objective {event.objective:.4G}{wall}{hit}",
                file=sys.stderr,
            )
        elif event.kind == "cache-degraded":
            print(f"  [cache degraded] {event.detail}", file=sys.stderr)
        if args.events is not None:
            append_events([event], args.events)

    from repro.experiments.journal import (
        ManifestMismatchError,
        RunInterrupted,
        UnknownRunError,
    )

    for experiment_id in (i for i in ids if i in EXPERIMENTS):
        spec = EXPERIMENTS[experiment_id]
        scale = spec.paper_scale if args.full else args.scale
        try:
            result = run_experiment(
                experiment_id,
                scale=scale,
                seed=args.seed,
                total_nodes=args.nodes,
                progress=lambda msg: print(f"[{experiment_id}] {msg}", file=sys.stderr),
                source_trace=source_trace,
                workers=args.workers,
                cache=cache,
                on_event=on_event,
                use_workload_store=not args.no_workload_store,
                journal_dir=args.journal_dir,
                resume_run_id=args.resume,
                backend=args.backend,
                scenario=scenario,
                execution_backend=args.backend_exec,
                shards=args.shards,
                connect=tuple(args.connect or ()),
                remote_cache=args.remote_cache,
            )
        except RunInterrupted as exc:
            print(f"\ninterrupted by {exc.signal_name}: {exc}", file=sys.stderr)
            if exc.run_id:
                print(
                    f"resume with: repro-experiments {experiment_id} --resume "
                    f"{exc.run_id}",
                    file=sys.stderr,
                )
            return 130
        except (ManifestMismatchError, UnknownRunError) as exc:
            print(f"cannot resume {args.resume}: {exc}", file=sys.stderr)
            return 2
        for regime, run_id in result.run_ids.items():
            print(f"[{experiment_id}] {regime} run id: {run_id}", file=sys.stderr)
        for regime, report in result.reports.items():
            banner = f"=== {experiment_id} ({regime}) — {spec.description} ==="
            print(banner)
            print(report)
            print(f"rank agreement with the paper: {result.agreement[regime]:.2f}")
            print()
            if args.out is not None:
                path = args.out / f"{experiment_id}_{regime}.txt"
                path.write_text(banner + "\n" + report + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

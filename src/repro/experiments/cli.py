"""Command line: ``repro-experiments [ids...] [--scale N] [--seed S]``.

Regenerates paper artifacts from the shell::

    repro-experiments table3                 # laptop-scale Table 3
    repro-experiments fig3 fig4 --scale 2000
    repro-experiments all --scale 1000       # everything, small
    repro-experiments table3 --full          # paper-scale job count (slow!)
    repro-experiments all --workers 8        # parallel cell fan-out

Reports print to stdout; ``--out DIR`` additionally writes one text file
per experiment and regime.

Grid cells run through the parallel experiment engine: ``--workers N``
fans independent cells out over N processes, and results are cached
content-addressed under ``--cache-dir`` (default ``.repro-cache``), so
re-runs and interrupted runs only simulate what is missing.  ``--no-cache``
forces fresh simulations; ``--events FILE`` appends the engine's
structured progress events as JSON lines.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.experiments.paper import EXPERIMENTS, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of Krallmann et al. (IPPS'99).",
    )
    from repro.experiments.extensions import EXTENSIONS

    parser.add_argument(
        "ids",
        nargs="+",
        help="experiment ids "
        f"({', '.join(sorted(EXPERIMENTS))}; extensions: "
        f"{', '.join(sorted(EXTENSIONS))}), 'all' (paper artifacts) or "
        "'ext-all' (extensions)",
    )
    parser.add_argument("--scale", type=int, default=None, help="jobs per workload")
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the paper's job counts (very slow for conservative cells)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--nodes", type=int, default=256)
    parser.add_argument("--out", type=Path, default=None, help="directory for report files")
    parser.add_argument(
        "--swf",
        type=Path,
        default=None,
        help="real trace (Standard Workload Format) replacing the synthetic "
        "CTC stand-in — e.g. the genuine CTC SP2 trace from the Parallel "
        "Workloads Archive",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for parallel grid-cell fan-out (default 1)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=Path(".repro-cache"),
        help="content-addressed result cache directory (default .repro-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache: simulate every cell fresh",
    )
    parser.add_argument(
        "--events",
        type=Path,
        default=None,
        help="append engine progress events to this file as JSON lines",
    )
    parser.add_argument(
        "--no-workload-store",
        action="store_true",
        help="ship the full job tuple to every parallel cell instead of the "
        "zero-copy digest dispatch (debugging/measurement aid)",
    )
    args = parser.parse_args(argv)

    source_trace = None
    if args.swf is not None:
        from repro.workloads.swf import read_swf

        source_trace = read_swf(args.swf)
        print(f"loaded {len(source_trace)} jobs from {args.swf}", file=sys.stderr)

    ids = list(args.ids)
    if "all" in ids:
        ids = sorted(EXPERIMENTS) + [i for i in ids if i != "all" and i in EXTENSIONS]
    if "ext-all" in ids:
        ids = [i for i in ids if i != "ext-all"] + sorted(EXTENSIONS)
    unknown = [i for i in ids if i not in EXPERIMENTS and i not in EXTENSIONS]
    if unknown:
        parser.error(f"unknown experiment ids: {', '.join(unknown)}")

    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)

    from repro.experiments.extensions import run_extension

    for experiment_id in (i for i in ids if i in EXTENSIONS):
        result = run_extension(experiment_id, scale=args.scale, seed=args.seed)
        banner = f"=== {experiment_id} — {EXTENSIONS[experiment_id].description} ==="
        print(banner)
        print(result.report)
        print(f"claim holds: {result.claim_holds}")
        print()
        if args.out is not None:
            (args.out / f"{experiment_id}.txt").write_text(
                banner + "\n" + result.report + f"\nclaim holds: {result.claim_holds}\n"
            )

    cache = None if args.no_cache else args.cache_dir

    def on_event(event) -> None:
        from repro.analysis.persistence import append_events

        if event.kind in ("cell-finished", "cache-hit"):
            wall = f" in {event.wall_time:.2f}s" if event.wall_time is not None else ""
            hit = " (cache hit)" if event.cached else ""
            print(
                f"  {event.key}: objective {event.objective:.4G}{wall}{hit}",
                file=sys.stderr,
            )
        if args.events is not None:
            append_events([event], args.events)

    for experiment_id in (i for i in ids if i in EXPERIMENTS):
        spec = EXPERIMENTS[experiment_id]
        scale = spec.paper_scale if args.full else args.scale
        result = run_experiment(
            experiment_id,
            scale=scale,
            seed=args.seed,
            total_nodes=args.nodes,
            progress=lambda msg: print(f"[{experiment_id}] {msg}", file=sys.stderr),
            source_trace=source_trace,
            workers=args.workers,
            cache=cache,
            on_event=on_event,
            use_workload_store=not args.no_workload_store,
        )
        for regime, report in result.reports.items():
            banner = f"=== {experiment_id} ({regime}) — {spec.description} ==="
            print(banner)
            print(report)
            print(f"rank agreement with the paper: {result.agreement[regime]:.2f}")
            print()
            if args.out is not None:
                path = args.out / f"{experiment_id}_{regime}.txt"
                path.write_text(banner + "\n" + report + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Extension experiments: the paper's loose ends as runnable artifacts.

Each entry mirrors the shape of :mod:`repro.experiments.paper` — an id, a
description, a run function returning a text report plus a machine-usable
result dict — so the CLI can regenerate them alongside the tables:

========= ===========================================================
id        claim quantified
========= ===========================================================
ext-gang      gang scheduling rescues FCFS ([15]); unbounded MPL thrashes
ext-combined  the Section 7 day/night combination, scored per window
ext-drain     Example 4's drain windows under three estimate regimes
ext-bounds    Section 2.3 lower-bound headroom of the paper's winners
ext-closedloop Section 2.4: better service elicits more submitted work
ext-meta      [17]: routing policies over a three-site metasystem
========= ===========================================================

``repro-experiments ext-gang`` etc. run them from the shell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.simulator import simulate
from repro.experiments.paper import ctc_workload
from repro.metrics.objectives import average_response_time, utilisation
from repro.metrics.bounds import improvement_potential
from repro.metrics.windows import windowed_art, windowed_awrt
from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.garey_graham import GareyGrahamScheduler

NODES = 256


@dataclass(slots=True)
class ExtensionResult:
    """Outcome of one extension experiment."""

    experiment_id: str
    report: str
    values: dict[str, float]
    #: True when the experiment's headline claim held in this run.
    claim_holds: bool


@dataclass(frozen=True, slots=True)
class ExtensionSpec:
    experiment_id: str
    description: str
    run: Callable[[int, int], ExtensionResult]
    default_scale: int = 800


def _gang(scale: int, seed: int) -> ExtensionResult:
    from repro.gang import fcfs_gang_schedule

    jobs = ctc_workload(scale, seed=seed)
    values = {
        "fcfs": average_response_time(
            simulate(jobs, FCFSScheduler.plain(), NODES).schedule
        ),
        "fcfs+easy": average_response_time(
            simulate(jobs, FCFSScheduler.with_easy(), NODES).schedule
        ),
        "gang-2": fcfs_gang_schedule(jobs, NODES, max_slots=2).average_response_time(),
        "gang-inf": fcfs_gang_schedule(jobs, NODES).average_response_time(),
    }
    lines = ["Gang scheduling vs space sharing ([15]) — unweighted ART"]
    for key, value in values.items():
        lines.append(f"  {key:<10} {value:12.0f}")
    holds = values["gang-2"] < values["fcfs"] and values["gang-2"] < values["gang-inf"]
    return ExtensionResult("ext-gang", "\n".join(lines), values, holds)


def _combined(scale: int, seed: int) -> ExtensionResult:
    from repro.schedulers.base import OrderedQueueScheduler
    from repro.schedulers.disciplines import EasyBackfill
    from repro.schedulers.regimes import WEEKDAY_DAYTIME, example5_combined_scheduler
    from repro.schedulers.smart import SmartOrderPolicy, SmartVariant
    from repro.schedulers.weights import unit_weight

    jobs = ctc_workload(scale, seed=seed)

    def smart_easy():
        return OrderedQueueScheduler(
            SmartOrderPolicy(NODES, variant=SmartVariant.FFIA, weight=unit_weight),
            EasyBackfill(),
            name="smart-easy",
        )

    values: dict[str, float] = {}
    for label, factory in (
        ("day-winner", smart_easy),
        ("night-winner", GareyGrahamScheduler),
        ("combined", lambda: example5_combined_scheduler(NODES)),
    ):
        res = simulate(jobs, factory(), NODES)
        values[f"{label}.day_art"] = windowed_art(res.schedule, WEEKDAY_DAYTIME)
        values[f"{label}.night_awrt"] = windowed_awrt(res.schedule, WEEKDAY_DAYTIME)
    lines = ["Combined day/night scheduler (Section 7)"]
    for label in ("day-winner", "night-winner", "combined"):
        lines.append(
            f"  {label:<14} day ART {values[f'{label}.day_art']:>10.0f}   "
            f"night AWRT {values[f'{label}.night_awrt']:.3E}"
        )
    holds = (
        values["combined.day_art"]
        <= max(values["day-winner.day_art"], values["night-winner.day_art"])
        and values["combined.night_awrt"]
        <= max(values["day-winner.night_awrt"], values["night-winner.night_awrt"])
    )
    return ExtensionResult("ext-combined", "\n".join(lines), values, holds)


def _drain(scale: int, seed: int) -> ExtensionResult:
    from repro.schedulers.base import SubmitOrderPolicy
    from repro.schedulers.disciplines import EasyBackfill
    from repro.schedulers.drain import DrainingScheduler, example4_reservations
    from repro.workloads.transforms import with_exact_estimates

    base = ctc_workload(scale, seed=seed)
    reservations = example4_reservations()

    def run(jobs):
        scheduler = DrainingScheduler(SubmitOrderPolicy(), EasyBackfill(), reservations)
        return simulate(jobs, scheduler, NODES)

    truthful = run(with_exact_estimates(base))
    loose = run(base)
    values = {
        "truthful.util": utilisation(truthful.schedule, NODES),
        "loose.util": utilisation(loose.schedule, NODES),
        "truthful.art": average_response_time(truthful.schedule),
        "loose.art": average_response_time(loose.schedule),
    }
    lines = ["Example 4 drain windows: estimate accuracy vs utilisation"]
    lines.append(f"  truthful estimates: util {values['truthful.util']:.1%}, ART {values['truthful.art']:.0f}")
    lines.append(f"  loose estimates:    util {values['loose.util']:.1%}, ART {values['loose.art']:.0f}")
    holds = values["truthful.util"] >= values["loose.util"]
    return ExtensionResult("ext-drain", "\n".join(lines), values, holds)


def _bounds(scale: int, seed: int) -> ExtensionResult:
    jobs = ctc_workload(scale, seed=seed)
    values: dict[str, float] = {}
    lines = ["Section 2.3 lower-bound headroom (unweighted ART)"]
    holds = True
    for label, factory in (
        ("fcfs+easy", FCFSScheduler.with_easy),
        ("gg", GareyGrahamScheduler),
    ):
        res = simulate(jobs, factory(), NODES)
        p = improvement_potential(res.schedule, jobs, NODES)
        values[f"{label}.ratio"] = p.ratio
        values[f"{label}.headroom"] = p.headroom
        holds = holds and p.ratio >= 1.0 - 1e-9
        lines.append(
            f"  {label:<10} measured {p.measured:>10.0f}  bound {p.lower_bound:>10.0f}"
            f"  ratio {p.ratio:5.2f}  headroom {p.headroom:5.1%}"
        )
    return ExtensionResult("ext-bounds", "\n".join(lines), values, holds)


def _closed_loop(scale: int, seed: int) -> ExtensionResult:
    from repro.workloads.feedback import default_population, run_closed_loop

    # scale controls the population; horizon fixed at four days.
    population = default_population(max(8, scale // 50), seed=seed, mean_think_time=900.0)
    values: dict[str, float] = {}
    for label, factory in (("fcfs", FCFSScheduler.plain), ("gg", GareyGrahamScheduler)):
        result = run_closed_loop(population, factory(), 128, horizon=4 * 86_400.0, seed=seed + 1)
        values[label] = float(result.total_jobs)
    lines = ["Section 2.4 closed loop: jobs elicited from the same users"]
    for label, count in values.items():
        lines.append(f"  {label:<6} {count:.0f}")
    return ExtensionResult(
        "ext-closedloop", "\n".join(lines), values, values["gg"] >= values["fcfs"]
    )


def _metasystem(scale: int, seed: int) -> ExtensionResult:
    from dataclasses import replace

    from repro.metasystem import (
        HomeSiteRouter,
        LeastLoadedRouter,
        Metasystem,
        RandomRouter,
        RoundRobinRouter,
        Site,
    )

    homes = ("alpha", "beta", "gamma")
    jobs = [
        replace(j, meta={"home": homes[j.user % 3]})
        for j in ctc_workload(scale, seed=seed)
    ]

    def sites():
        return [
            Site("alpha", 256, GareyGrahamScheduler()),
            Site("beta", 128, FCFSScheduler.with_easy()),
            Site("gamma", 64, FCFSScheduler.with_easy()),
        ]

    values: dict[str, float] = {}
    lines = ["Metasystem routing ([17]): global ART / migrations"]
    for router in (
        RoundRobinRouter(),
        RandomRouter(seed=seed),
        LeastLoadedRouter(),
        HomeSiteRouter(overflow_factor=2.0),
    ):
        result = Metasystem(sites(), router, transfer_delay=120.0).run(jobs)
        values[f"{router.name}.art"] = result.global_art()
        values[f"{router.name}.migrations"] = float(result.migrations)
        lines.append(
            f"  {router.name:<14} ART {result.global_art():>10.0f}"
            f"   migrations {result.migrations}"
        )
    holds = (
        values["least-loaded.art"] < values["round-robin.art"]
        and values["home-overflow.migrations"] < values["round-robin.migrations"]
    )
    return ExtensionResult("ext-meta", "\n".join(lines), values, holds)


EXTENSIONS: dict[str, ExtensionSpec] = {
    spec.experiment_id: spec
    for spec in (
        ExtensionSpec("ext-gang", "Gang scheduling vs space sharing ([15])", _gang),
        ExtensionSpec("ext-combined", "Section 7 combined day/night scheduler", _combined),
        ExtensionSpec("ext-drain", "Example 4 drain windows", _drain),
        ExtensionSpec("ext-bounds", "Section 2.3 lower-bound headroom", _bounds),
        ExtensionSpec("ext-closedloop", "Section 2.4 closed-loop coupling", _closed_loop),
        ExtensionSpec("ext-meta", "Metasystem routing ([17])", _metasystem),
    )
}


def run_extension(
    experiment_id: str, *, scale: int | None = None, seed: int = 42
) -> ExtensionResult:
    """Run one extension experiment by id."""
    spec = EXTENSIONS[experiment_id]
    return spec.run(spec.default_scale if scale is None else scale, seed)

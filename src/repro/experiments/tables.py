"""Render grid results in the paper's table and figure layouts.

Tables 3–6 print one row per algorithm and three columns (Listscheduler,
Backfilling, EASY-Backfilling), each cell holding the objective in seconds
(scientific notation, as in the paper) and the percentage against the
FCFS + EASY reference.  Tables 7–8 print computation-time percentages.
Figures 3–6 are horizontal ASCII bar charts of the same data — the paper's
figures carry no information beyond their tables, so a textual rendering
reproduces them faithfully.

Rows and columns are derived from the grid being rendered, ordered by the
scheduler registry: a user-registered algorithm that ran through the
engine lands in the same tables as the paper's five, and grids over a
config subset only print the columns they contain.
"""

from __future__ import annotations

from repro.experiments.runner import GridResult
from repro.schedulers.registry import (
    column_label,
    registered_columns,
    registered_rows,
    row_label,
)


def _sci(value: float) -> str:
    """Paper-style scientific notation: 4.91E+06."""
    return f"{value:.2E}"


def _pct(value: float) -> str:
    return f"{value:+.1f}%"


def _ordered(present: list[str], registry_order: tuple[str, ...]) -> list[str]:
    """Registry order first, then unknown keys in grid insertion order."""
    known = [key for key in registry_order if key in present]
    return known + [key for key in present if key not in known]


def grid_rows(grid: GridResult) -> list[str]:
    """Row keys present in a grid, in registry-then-insertion order."""
    present: list[str] = []
    for key in grid.cells:
        row = key.split("/", 1)[0]
        if row not in present:
            present.append(row)
    return _ordered(present, registered_rows())


def grid_columns(grid: GridResult) -> list[str]:
    """Column keys present in a grid, in registry-then-insertion order."""
    present: list[str] = []
    for key in grid.cells:
        column = key.split("/", 1)[1]
        if column not in present:
            present.append(column)
    return _ordered(present, registered_columns())


def format_grid(grid: GridResult, *, title: str | None = None) -> str:
    """Tables 3–6 layout: objective value and pct per cell."""
    regime = "Weighted" if grid.weighted else "Unweighted"
    head = title or (
        f"Average {'Weighted ' if grid.weighted else ''}Response Time — "
        f"{grid.workload_name} ({grid.n_jobs} jobs, {grid.total_nodes} nodes)"
    )
    lines = [head, ""]
    rows, columns = grid_rows(grid), grid_columns(grid)
    col_w = 22
    label_w = max([14] + [len(row_label(r)) + 1 for r in rows])
    header = f"{regime:<{label_w}}" + "".join(
        f"{column_label(c):>{col_w}}" for c in columns
    )
    lines.append(header)
    for row in rows:
        cells = []
        for column in columns:
            key = f"{row}/{column}"
            if key not in grid.cells:
                cells.append(f"{'—':>{col_w}}")
                continue
            cell = grid.cells[key]
            cells.append(f"{_sci(cell.objective)} {_pct(grid.pct(key)):>9}".rjust(col_w))
        lines.append(f"{row_label(row):<{label_w}}" + "".join(cells))
    return "\n".join(lines)


def format_compute_times(grid: GridResult, *, title: str | None = None) -> str:
    """Tables 7–8 layout: computation time pct vs FCFS + EASY.

    The paper merges the two SMART variants into one "SMART" row for the
    cost tables; we print both variants.
    """
    head = title or (
        f"Scheduling computation time — {grid.workload_name} "
        f"({'weighted' if grid.weighted else 'unweighted'})"
    )
    lines = [head, ""]
    rows, columns = grid_rows(grid), grid_columns(grid)
    col_w = 26
    label_w = max([14] + [len(row_label(r)) + 1 for r in rows])
    lines.append(
        f"{'':<{label_w}}" + "".join(f"{column_label(c):>{col_w}}" for c in columns)
    )
    for row in rows:
        cells = []
        for column in columns:
            key = f"{row}/{column}"
            if key not in grid.cells:
                cells.append(f"{'—':>{col_w}}")
                continue
            cell = grid.cells[key]
            cells.append(
                f"{cell.compute_time:8.3f}s {_pct(grid.compute_pct(key)):>9}".rjust(col_w)
            )
        lines.append(f"{row_label(row):<{label_w}}" + "".join(cells))
    return "\n".join(lines)


def format_bars(
    grid: GridResult,
    *,
    title: str | None = None,
    width: int = 48,
) -> str:
    """Figures 3–6 as horizontal ASCII bars, longest bar = worst objective."""
    head = title or f"{grid.workload_name} ({'AWRT' if grid.weighted else 'ART'})"
    entries = []
    for row in grid_rows(grid):
        for column in grid_columns(grid):
            key = f"{row}/{column}"
            if key in grid.cells:
                label = f"{row_label(row)} + {column_label(column)}"
                entries.append((label, grid.cells[key].objective))
    worst = max(v for _l, v in entries)
    lines = [head, ""]
    for label, value in entries:
        bar = "#" * max(1, round(value / worst * width))
        lines.append(f"{label:<34} {bar} {_sci(value)}")
    return "\n".join(lines)


def format_comparison(
    measured: GridResult,
    paper_values: dict[str, float],
    *,
    title: str | None = None,
) -> str:
    """Paper-vs-measured report for EXPERIMENTS.md.

    ``paper_values`` maps cell keys to the paper's absolute numbers; the
    comparison is on *percentages against the reference cell*, because the
    paper's absolute values belong to a trace we cannot replay.
    """
    head = title or f"paper vs measured — {measured.workload_name}"
    if "fcfs/easy" in paper_values:
        ref_paper = paper_values["fcfs/easy"]
    else:
        ref_paper = next(iter(paper_values.values()))
    lines = [head, ""]
    lines.append(
        f"{'cell':<24}{'paper':>12}{'paper pct':>12}{'measured':>12}{'meas pct':>12}"
    )
    for row in grid_rows(measured):
        for column in grid_columns(measured):
            key = f"{row}/{column}"
            if key not in paper_values or key not in measured.cells:
                continue
            p = paper_values[key]
            p_pct = (p - ref_paper) / ref_paper * 100.0
            m = measured.cells[key].objective
            m_pct = measured.pct(key)
            lines.append(
                f"{key:<24}{_sci(p):>12}{_pct(p_pct):>12}"
                f"{_sci(m):>12}{_pct(m_pct):>12}"
            )
    return "\n".join(lines)


def agreement_score(
    measured: GridResult, paper_values: dict[str, float]
) -> float:
    """Kendall-style rank agreement between paper and measured cell orders.

    1.0 means the measured objective orders every comparable cell pair the
    same way the paper does; 0.0 means every pair is inverted.  Used by the
    reproduction tests to assert shape fidelity without chasing absolute
    numbers.
    """
    keys = [k for k in paper_values if k in measured.cells]
    agree = 0
    total = 0
    for i, a in enumerate(keys):
        for b in keys[i + 1 :]:
            pa, pb = paper_values[a], paper_values[b]
            ma, mb = measured.cells[a].objective, measured.cells[b].objective
            if pa == pb or ma == mb:
                continue
            total += 1
            if (pa < pb) == (ma < mb):
                agree += 1
    return agree / total if total else 1.0

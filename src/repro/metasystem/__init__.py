"""Multi-site metacomputing substrate (the paper's reference [17]).

Section 2 notes that advance resource reservation "is especially
beneficial for multisite metacomputing [17]" — Schwiegelshohn & Yahyapour,
*Resource Allocation and Scheduling in Metasystems* (HPCN'99).  The
metasystem model there: several independently owned parallel machines, a
meta-scheduler that places each submitted job on one site, and per-site
local schedulers of the kind this library already provides.

This package implements that substrate:

* :class:`~repro.metasystem.system.Site` — a machine plus a local
  scheduler;
* routing policies (:mod:`repro.metasystem.routing`) deciding the target
  site per submission from live site state: round robin, least loaded,
  best fit, random, and home-site-with-overflow;
* :class:`~repro.metasystem.system.Metasystem` — the shared-clock
  co-simulation across all sites, with an optional wide-area transfer
  delay for jobs placed away from their home site.

Placement is per-job and whole (no co-allocation across sites — the [17]
scenario this library's rigid job model supports); every site schedule is
validated independently.
"""

from repro.metasystem.routing import (
    BestFitRouter,
    HomeSiteRouter,
    LeastLoadedRouter,
    RandomRouter,
    Router,
    RoundRobinRouter,
    SiteView,
)
from repro.metasystem.system import Metasystem, MetasystemResult, Site, SiteResult

__all__ = [
    "BestFitRouter",
    "HomeSiteRouter",
    "LeastLoadedRouter",
    "Metasystem",
    "MetasystemResult",
    "RandomRouter",
    "RoundRobinRouter",
    "Router",
    "Site",
    "SiteResult",
    "SiteView",
]

"""Meta-scheduler routing policies.

A :class:`Router` sees the submitted job and a live :class:`SiteView` per
site and names the target site.  Views expose what a metasystem broker
realistically knows: machine size, free nodes, queue length, and the
*projected* backlog (node-seconds of queued + remaining running work by
estimates — never actual runtimes).
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Sequence

from repro.core.job import Job


@dataclass(frozen=True, slots=True)
class SiteView:
    """Broker-visible state of one site at a decision instant."""

    name: str
    total_nodes: int
    free_nodes: int
    queue_length: int
    #: Projected node-seconds of work ahead: queued jobs' estimated areas
    #: plus running jobs' remaining estimated areas.
    projected_backlog: float

    @property
    def relative_backlog(self) -> float:
        """Backlog normalised by machine size — comparable across sites."""
        return self.projected_backlog / self.total_nodes


class Router(abc.ABC):
    """Chooses the site for each submitted job."""

    name: str = "router"

    def reset(self) -> None:
        """Clear internal state before a fresh run."""

    @abc.abstractmethod
    def route(self, job: Job, sites: Sequence[SiteView]) -> str:
        """Return the name of the chosen site.

        ``sites`` lists every site, in the metasystem's fixed order.  The
        router must pick a site whose machine can ever fit the job; helper
        :meth:`feasible` filters them.
        """

    @staticmethod
    def feasible(job: Job, sites: Sequence[SiteView]) -> list[SiteView]:
        out = [s for s in sites if job.nodes <= s.total_nodes]
        if not out:
            raise ValueError(
                f"job {job.job_id} ({job.nodes} nodes) fits no site"
            )
        return out


class RoundRobinRouter(Router):
    """Cycle through the feasible sites, ignoring load entirely."""

    name = "round-robin"

    def __init__(self) -> None:
        self._counter = 0

    def reset(self) -> None:
        self._counter = 0

    def route(self, job: Job, sites: Sequence[SiteView]) -> str:
        feasible = self.feasible(job, sites)
        choice = feasible[self._counter % len(feasible)]
        self._counter += 1
        return choice.name


class LeastLoadedRouter(Router):
    """Send the job to the site with the smallest relative backlog."""

    name = "least-loaded"

    def route(self, job: Job, sites: Sequence[SiteView]) -> str:
        feasible = self.feasible(job, sites)
        return min(feasible, key=lambda s: (s.relative_backlog, s.name)).name


class BestFitRouter(Router):
    """Prefer the smallest machine that can run the job at all.

    Keeps big machines free for big jobs — the packing heuristic of
    hierarchical metasystems; ties broken by lower relative backlog.
    """

    name = "best-fit"

    def route(self, job: Job, sites: Sequence[SiteView]) -> str:
        feasible = self.feasible(job, sites)
        return min(
            feasible, key=lambda s: (s.total_nodes, s.relative_backlog, s.name)
        ).name


class RandomRouter(Router):
    """Uniform random feasible site (seeded) — the routing sanity baseline."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)

    def route(self, job: Job, sites: Sequence[SiteView]) -> str:
        return self._rng.choice(self.feasible(job, sites)).name


class HomeSiteRouter(Router):
    """Keep jobs home unless the home backlog exceeds a threshold.

    Models the sociology of metasystems in [17]: users submit to their own
    machine; the broker offloads to the least-loaded remote site only when
    home is congested (``overflow_factor`` times the best remote backlog).
    The home site is ``job.meta['home']``, falling back to the first site.
    """

    name = "home-overflow"

    def __init__(self, overflow_factor: float = 2.0) -> None:
        if overflow_factor <= 0:
            raise ValueError("overflow_factor must be positive")
        self.overflow_factor = overflow_factor

    def route(self, job: Job, sites: Sequence[SiteView]) -> str:
        feasible = self.feasible(job, sites)
        home_name = job.meta.get("home", feasible[0].name)
        home = next((s for s in feasible if s.name == home_name), feasible[0])
        best = min(feasible, key=lambda s: (s.relative_backlog, s.name))
        if (
            best.name != home.name
            and home.relative_backlog > self.overflow_factor * best.relative_backlog
        ):
            return best.name
        return home.name

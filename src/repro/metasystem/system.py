"""The metasystem co-simulation: shared clock, independent sites.

Each site is a full (machine, scheduler) pair from the core library; the
metasystem advances one global event queue so routing decisions always see
consistent cross-site state.  A job routed away from its *home site*
(``job.meta['home']``) pays ``transfer_delay`` seconds before it becomes
visible to the remote scheduler — the wide-area staging cost of [17].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.events import EventKind, EventQueue
from repro.core.job import Job, validate_stream
from repro.core.machine import Machine
from repro.core.schedule import Schedule, ScheduledJob
from repro.core.scheduler import RunningJob, Scheduler, SchedulerContext
from repro.core.state import SchedulingState, verify_every_from_env
from repro.metasystem.routing import Router, SiteView


@dataclass(slots=True)
class Site:
    """One member machine of the metasystem."""

    name: str
    nodes: int
    scheduler: Scheduler

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise ValueError(f"site {self.name!r} needs positive nodes")


@dataclass(slots=True)
class SiteResult:
    """Per-site outcome."""

    site_name: str
    schedule: Schedule
    jobs_routed: int
    max_queue_length: int


@dataclass(slots=True)
class MetasystemResult:
    """Global outcome of a metasystem run."""

    sites: dict[str, SiteResult]
    #: job_id -> site name, as routed.
    placement: dict[int, str] = field(default_factory=dict)
    #: jobs placed away from their home site.
    migrations: int = 0

    def all_items(self) -> list[ScheduledJob]:
        out: list[ScheduledJob] = []
        for result in self.sites.values():
            out.extend(result.schedule)
        return out

    def global_art(self) -> float:
        """ART over all jobs, response measured from *original* submission.

        Transfer delay is part of the response a user experiences, so the
        per-site records (whose submit times include the delay) are mapped
        back through :attr:`placement` bookkeeping by the caller... the
        simpler exact route: per-site ``ScheduledJob.job`` carries the
        *shifted* submission; the original is preserved in
        ``job.meta['meta_submit']`` when shifting occurred.
        """
        items = self.all_items()
        if not items:
            return 0.0
        total = 0.0
        for item in items:
            submit = float(item.job.meta.get("meta_submit", item.job.submit_time))
            total += item.end_time - submit
        return total / len(items)

    def balance(self) -> float:
        """Imbalance measure: max over min jobs routed per site (>= 1)."""
        counts = [r.jobs_routed for r in self.sites.values()]
        low = min(counts)
        return max(counts) / low if low else float("inf")


class _SiteState:
    """Mutable per-site simulation state."""

    __slots__ = (
        "site", "machine", "running", "state", "ctx", "completed", "routed",
        "max_queue",
    )

    def __init__(self, site: Site) -> None:
        self.site = site
        self.machine = Machine(site.nodes)
        self.running: dict[int, RunningJob] = {}
        self.state = SchedulingState(
            site.nodes, verify_every=verify_every_from_env()
        )
        self.ctx = SchedulerContext(self.machine, self.running, state=self.state)
        self.completed: list[ScheduledJob] = []
        self.routed = 0
        self.max_queue = 0

    def view(self) -> SiteView:
        backlog = sum(
            max(0.0, r.projected_end - self.ctx.now) * r.job.nodes
            for r in self.running.values()
        )
        # Queued work: the scheduler's queue is opaque; expose length via
        # pending_count and approximate queued backlog from it is not
        # possible — so sites track queued area in the wrapper below.
        return SiteView(
            name=self.site.name,
            total_nodes=self.site.nodes,
            free_nodes=self.machine.free_nodes,
            queue_length=self.site.scheduler.pending_count,
            projected_backlog=backlog + self._queued_area(),
        )

    def _queued_area(self) -> float:
        # OrderPolicy-based schedulers expose their queue through ordered();
        # fall back to zero for exotic schedulers.
        policy = getattr(self.site.scheduler, "order_policy", None)
        if policy is None:
            return 0.0
        return sum(j.estimated_area for j in policy.ordered(self.ctx.now))


class Metasystem:
    """Co-simulate a router and a set of sites over one job stream."""

    def __init__(
        self,
        sites: Sequence[Site],
        router: Router,
        *,
        transfer_delay: float = 0.0,
    ) -> None:
        if not sites:
            raise ValueError("need at least one site")
        names = [s.name for s in sites]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate site names: {names}")
        if transfer_delay < 0:
            raise ValueError("transfer_delay must be non-negative")
        self.sites = list(sites)
        self.router = router
        self.transfer_delay = transfer_delay

    def run(self, jobs: Sequence[Job]) -> MetasystemResult:
        stream = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
        validate_stream(list(stream))
        self.router.reset()
        states = {s.name: _SiteState(s) for s in self.sites}
        for state in states.values():
            state.machine.reset()
            state.site.scheduler.reset()

        events = EventQueue()
        placement: dict[int, str] = {}
        migrations = 0
        for job in stream:
            events.push(job.submit_time, EventKind.SUBMISSION, ("route", job))

        while events:
            now = events.peek().time
            for state in states.values():
                state.ctx.now = now
            touched: set[str] = set()
            while events and events.peek().time == now:
                event = events.pop()
                if event.kind is EventKind.COMPLETION:
                    site_name, item = event.payload
                    state = states[site_name]
                    state.machine.release(item.job.job_id)
                    del state.running[item.job.job_id]
                    state.state.on_release(item.job.job_id)
                    state.completed.append(item)
                    state.site.scheduler.on_complete(item.job, state.ctx)
                    touched.add(site_name)
                else:
                    kind, job = event.payload
                    if kind == "route":
                        views = [states[s.name].view() for s in self.sites]
                        target = self.router.route(job, views)
                        if target not in states:
                            raise ValueError(
                                f"router returned unknown site {target!r}"
                            )
                        placement[job.job_id] = target
                        home = job.meta.get("home", target)
                        if target != home and self.transfer_delay > 0:
                            migrations += 1
                            shifted = _shift(job, self.transfer_delay)
                            events.push(
                                shifted.submit_time,
                                EventKind.SUBMISSION,
                                ("arrive", (target, shifted)),
                            )
                        else:
                            if target != home:
                                migrations += 1
                            states[target].routed += 1
                            states[target].state.note_enqueued(job.nodes)
                            states[target].site.scheduler.on_submit(
                                job, states[target].ctx
                            )
                            touched.add(target)
                    else:  # staged arrival at the remote site
                        target, shifted = job
                        states[target].routed += 1
                        states[target].state.note_enqueued(shifted.nodes)
                        states[target].site.scheduler.on_submit(
                            shifted, states[target].ctx
                        )
                        touched.add(target)

            for name in touched:
                state = states[name]
                for job in state.site.scheduler.select_jobs(state.ctx):
                    state.machine.allocate(job)
                    item = ScheduledJob(
                        job=job, start_time=now, end_time=now + job.runtime
                    )
                    state.running[job.job_id] = RunningJob(job=job, start_time=now)
                    state.state.note_dequeued(job.nodes)
                    state.state.on_start(job.job_id, job.estimated_runtime, job.nodes)
                    events.push(item.end_time, EventKind.COMPLETION, (name, item))
                state.max_queue = max(state.max_queue, state.site.scheduler.pending_count)

        results = {}
        for name, state in states.items():
            if state.running:
                raise RuntimeError(f"site {name} finished with running jobs")
            schedule = Schedule(state.completed)
            schedule.validate(state.site.nodes)
            results[name] = SiteResult(
                site_name=name,
                schedule=schedule,
                jobs_routed=state.routed,
                max_queue_length=state.max_queue,
            )
        return MetasystemResult(
            sites=results, placement=placement, migrations=migrations
        )


def _shift(job: Job, delay: float) -> Job:
    """Delay a job's visibility at the remote site, remembering the original
    submission for response-time accounting."""
    from dataclasses import replace

    meta = dict(job.meta)
    meta.setdefault("meta_submit", job.submit_time)
    return replace(job, submit_time=job.submit_time + delay, meta=meta)

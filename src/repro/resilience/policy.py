"""The frozen retry-policy value object: *how* to retry, never *whether*.

A :class:`RetryPolicy` is pure data plus one pure-given-an-rng function
(:meth:`RetryPolicy.backoff_for`), so call sites can share, compare and
fingerprint policies without hidden state.  The exponential-backoff
formula is exactly the one the engine's retry ladder and the remote
backend's reconnect schedule used inline before this package existed::

    pause(n) = min(cap, backoff * multiplier**(n-1)) * uniform(*jitter)

with ``n`` the 1-based count of failures so far — refactoring the call
sites onto it changes no timing distribution.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded attempts with jittered exponential backoff.

    Parameters
    ----------
    max_attempts:
        Total tries including the first (so ``max_attempts=1`` means
        "never retry").  :func:`~repro.resilience.call.with_resilience`
        raises :class:`~repro.resilience.call.RetriesExhausted` once
        they are spent.
    backoff:
        Base pause in seconds before the second attempt; ``0`` retries
        immediately (useful in tests).
    multiplier:
        Growth factor per further failure (2 doubles every time).
    max_backoff:
        Cap on the un-jittered pause; ``inf`` (the default) never caps —
        the historical behaviour of the engine's retry ladder.
    jitter:
        ``(low, high)`` multiplicative jitter band drawn uniformly per
        pause so retrying peers never stampede in lockstep.  ``(1, 1)``
        disables jitter (deterministic tests).
    timeout:
        Per-attempt I/O budget in seconds, carried here so one policy
        object describes the whole attempt; the *caller* applies it to
        its sockets/requests (a synchronous wrapper cannot interrupt a
        stuck syscall from outside).  ``None``: no per-attempt budget.
    """

    max_attempts: int = 3
    backoff: float = 0.5
    multiplier: float = 2.0
    max_backoff: float = math.inf
    jitter: tuple[float, float] = (0.5, 1.5)
    timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be non-negative, got {self.backoff}")
        if self.multiplier <= 0:
            raise ValueError(f"multiplier must be positive, got {self.multiplier}")
        if self.max_backoff < 0:
            raise ValueError(
                f"max_backoff must be non-negative, got {self.max_backoff}"
            )
        low, high = self.jitter
        if not (0 <= low <= high):
            raise ValueError(f"jitter must satisfy 0 <= low <= high, got {self.jitter}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")

    @property
    def max_retries(self) -> int:
        """Retries beyond the first attempt (engine-ladder vocabulary)."""
        return self.max_attempts - 1

    def backoff_for(self, failures: int, rng: random.Random) -> float:
        """Jittered pause after the ``failures``-th consecutive failure.

        ``failures`` is 1-based: the pause slept before retrying for the
        first time is ``backoff_for(1, rng)``.
        """
        if failures < 1:
            raise ValueError(f"failures must be >= 1, got {failures}")
        base = min(
            self.max_backoff, self.backoff * self.multiplier ** (failures - 1)
        )
        low, high = self.jitter
        return base * rng.uniform(low, high)

"""``with_resilience``: run one operation under a policy and a breaker.

The wrapper is deliberately synchronous and deterministic-under-
injection: randomness, sleeping and the clock all come in as arguments,
so chaos suites can drive thousands of simulated failures without a
single real pause.  Per attempt it emits one structured
:class:`CallOutcome` record through the optional ``on_outcome`` hook —
the observability spine the object-store cache uses to report its
remote-round-trip history.

Failure taxonomy:

* an exception in ``retry_on`` is *transient*: the breaker is fed a
  failure, a jittered backoff is slept (if attempts remain) and the call
  is retried;
* any other exception is *fatal*: it is recorded, fed to the breaker,
  and re-raised immediately — misconfiguration (a 403, a bad bucket)
  should surface, not be retried into a stall;
* an open breaker sheds the call *before* attempt 1 ever runs, raising
  :class:`BreakerOpen` — the caller degrades (e.g. the cache answers a
  local-only miss) instead of paying a timeout per call.
"""

from __future__ import annotations

import random
import time
from typing import Callable, NamedTuple, TypeVar

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.policy import RetryPolicy

__all__ = [
    "BreakerOpen",
    "CallOutcome",
    "ResilienceError",
    "RetriesExhausted",
    "with_resilience",
]

T = TypeVar("T")


class ResilienceError(RuntimeError):
    """Base class: the resilience layer gave up on an operation."""


class BreakerOpen(ResilienceError):
    """The circuit breaker shed this call without attempting it."""

    def __init__(self, op: str, breaker: CircuitBreaker) -> None:
        super().__init__(
            f"{op}: circuit breaker"
            f"{' ' + breaker.name if breaker.name else ''} is {breaker.state}; "
            f"call shed"
        )
        self.op = op
        self.breaker = breaker


class RetriesExhausted(ResilienceError):
    """Every attempt the policy allowed failed; ``last`` holds the final
    exception and ``outcomes`` the per-attempt records."""

    def __init__(
        self, op: str, attempts: int, last: BaseException, outcomes: "list[CallOutcome]"
    ) -> None:
        super().__init__(
            f"{op}: all {attempts} attempt(s) failed; last error: {last!r}"
        )
        self.op = op
        self.attempts = attempts
        self.last = last
        self.outcomes = outcomes


class CallOutcome(NamedTuple):
    """One attempt's structured record.

    ``error`` is ``""`` on success, the repr of the exception otherwise;
    ``shed`` marks a call the breaker refused before it ran (its
    ``attempt`` is the attempt that *would* have run); ``final`` is true
    on the record that settled the call (success, fatal error, shed, or
    the last exhausted retry).
    """

    op: str
    attempt: int
    ok: bool
    error: str
    seconds: float
    breaker_state: str
    shed: bool = False
    final: bool = False


def with_resilience(
    op: str,
    fn: Callable[[], T],
    *,
    policy: RetryPolicy,
    breaker: CircuitBreaker | None = None,
    retry_on: tuple[type[BaseException], ...] = (OSError,),
    rng: random.Random | None = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.perf_counter,
    on_outcome: "Callable[[CallOutcome], None] | None" = None,
) -> T:
    """Run ``fn`` under ``policy`` (and ``breaker``), returning its value.

    Raises :class:`BreakerOpen` when shed, :class:`RetriesExhausted` when
    the attempt budget runs out, or the original exception when it is
    not in ``retry_on`` (fatal).  ``on_outcome`` sees every attempt.
    """
    rng = rng if rng is not None else random.Random()
    outcomes: list[CallOutcome] = []

    def emit(outcome: CallOutcome) -> None:
        outcomes.append(outcome)
        if on_outcome is not None:
            on_outcome(outcome)

    for attempt in range(1, policy.max_attempts + 1):
        if breaker is not None and not breaker.allow():
            emit(
                CallOutcome(
                    op=op,
                    attempt=attempt,
                    ok=False,
                    error="shed by open circuit breaker",
                    seconds=0.0,
                    breaker_state=breaker.state,
                    shed=True,
                    final=True,
                )
            )
            raise BreakerOpen(op, breaker)
        t0 = clock()
        try:
            value = fn()
        except BaseException as exc:
            transient = isinstance(exc, retry_on)
            if breaker is not None:
                breaker.record_failure()
            last_attempt = attempt >= policy.max_attempts
            emit(
                CallOutcome(
                    op=op,
                    attempt=attempt,
                    ok=False,
                    error=repr(exc),
                    seconds=clock() - t0,
                    breaker_state=breaker.state if breaker is not None else "",
                    final=not transient or last_attempt,
                )
            )
            if not transient:
                raise
            if last_attempt:
                raise RetriesExhausted(
                    op, policy.max_attempts, exc, outcomes
                ) from exc
            pause = policy.backoff_for(attempt, rng)
            if pause > 0:
                sleep(pause)
            continue
        if breaker is not None:
            breaker.record_success()
        emit(
            CallOutcome(
                op=op,
                attempt=attempt,
                ok=True,
                error="",
                seconds=clock() - t0,
                breaker_state=breaker.state if breaker is not None else "",
                final=True,
            )
        )
        return value
    raise AssertionError("unreachable: the loop always returns or raises")

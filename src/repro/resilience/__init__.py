"""One shared resilience layer for everything that can tear, stall or flap.

Before this package existed, three call sites each hand-rolled their own
fault handling: the fleet cache client kept a fixed-constant cooldown,
the remote execution backend computed its own jittered exponential
reconnect pauses, and the experiment engine's retry ladder inlined the
same ``base * 2**(n-1) * uniform(0.5, 1.5)`` formula a third time.  A
durable object-store cache backend — which can return torn bodies,
rate-limit with 5xx bursts, or stall past any timeout — would have been
the fourth copy.  Instead, every degradation decision now flows through
three primitives:

* :class:`RetryPolicy` — a frozen value object describing *how to retry*:
  bounded attempts, jittered exponential backoff with an optional cap,
  and the per-attempt I/O timeout callers apply to their sockets;
* :class:`CircuitBreaker` — *when to stop trying*: a classic
  closed/open/half-open machine with a jittered cooldown and a single
  probe call per half-open period, so a dead endpoint is left alone
  instead of hammered, and a recovered one is noticed promptly;
* :func:`with_resilience` — *the call wrapper* tying them together: it
  runs an operation under a policy (and optionally a breaker), emits one
  structured :class:`CallOutcome` record per attempt for observability,
  and raises :class:`BreakerOpen` / :class:`RetriesExhausted` with the
  full story attached when the budget runs out.

Users: :class:`~repro.experiments.backends.cache.RemoteCacheStore`,
:class:`~repro.experiments.backends.objectstore.ObjectStoreCacheStore`,
:class:`~repro.experiments.backends.remote.RemoteWorkerBackend`'s
reconnect schedule, and the engine's cell retry ladder.  See
docs/architecture.md, "Cache stores and the resilience layer".
"""

from __future__ import annotations

from repro.resilience.breaker import BreakerTransition, CircuitBreaker
from repro.resilience.call import (
    BreakerOpen,
    CallOutcome,
    ResilienceError,
    RetriesExhausted,
    with_resilience,
)
from repro.resilience.policy import RetryPolicy

__all__ = [
    "BreakerOpen",
    "BreakerTransition",
    "CallOutcome",
    "CircuitBreaker",
    "ResilienceError",
    "RetriesExhausted",
    "RetryPolicy",
    "with_resilience",
]

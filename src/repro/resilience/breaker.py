"""Circuit breaker: stop hammering a dead dependency, probe it back alive.

The classic three-state machine:

* **closed** — calls flow; consecutive failures are counted and any
  success resets the count.  ``failure_threshold`` consecutive failures
  trip the breaker **open**.
* **open** — every call is shed (:meth:`CircuitBreaker.allow` returns
  ``False``) until a jittered ``cooldown`` elapses.  Shedding is the
  point: an unreachable endpoint costs one failed round trip per
  cooldown period, not one per call.
* **half-open** — after the cooldown, exactly *one* probe call is let
  through.  Its success closes the breaker (and resets the failure
  count); its failure re-opens it for another cooldown.  While the probe
  is in flight, everything else is still shed.

State only ever changes inside :meth:`allow` / :meth:`record_success` /
:meth:`record_failure`, driven by the caller's clock — there are no
threads or timers in here, which keeps the machine deterministic under
an injected clock (exactly how the unit suite drives it).  Every
transition is appended to :attr:`CircuitBreaker.transitions` and
forwarded to the optional ``on_transition`` callback — the hook the
experiment engine uses to emit its ``cache-degraded`` progress event the
moment a fleet cache's breaker opens.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, NamedTuple

__all__ = ["BreakerTransition", "CircuitBreaker"]


class BreakerTransition(NamedTuple):
    """One recorded state change, oldest first in ``transitions``."""

    at: float
    old: str
    new: str


@dataclass(frozen=True, slots=True)
class BreakerSnapshot:
    """Point-in-time health of one breaker (for stats and journals)."""

    state: str
    failures: int
    opened: int  # closed/half-open -> open transitions so far


class CircuitBreaker:
    """Closed/open/half-open circuit breaker with a jittered cooldown.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures (while closed) that trip the breaker.
        ``1`` — the fleet-cache setting — opens on the first failed
        round trip, reproducing the old "cooldown after every drop"
        behaviour exactly.
    cooldown:
        Base seconds an open breaker sheds calls before allowing the
        half-open probe.
    jitter:
        Multiplicative band applied to every cooldown draw so a fleet of
        drivers does not re-probe a recovering endpoint in lockstep.
    rng / clock:
        Injectable randomness and monotonic clock (tests pin both).
    name:
        Label carried into transitions/diagnostics.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        cooldown: float = 30.0,
        jitter: tuple[float, float] = (0.9, 1.1),
        rng: random.Random | None = None,
        clock: Callable[[], float] = time.monotonic,
        name: str = "",
        on_transition: "Callable[[BreakerTransition], None] | None" = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown < 0:
            raise ValueError(f"cooldown must be non-negative, got {cooldown}")
        low, high = jitter
        if not (0 <= low <= high):
            raise ValueError(f"jitter must satisfy 0 <= low <= high, got {jitter}")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.jitter = jitter
        self.name = name
        self._rng = rng if rng is not None else random.Random()
        self._clock = clock
        self._state = "closed"
        self._failures = 0
        self._open_until = 0.0
        self._probe_in_flight = False
        #: Every state change, oldest first.
        self.transitions: list[BreakerTransition] = []
        #: Called with each :class:`BreakerTransition` as it happens.
        self.on_transition = on_transition

    # -- observability ------------------------------------------------------

    @property
    def state(self) -> str:
        """``"closed"`` | ``"open"`` | ``"half-open"`` (as of last call)."""
        return self._state

    @property
    def failures(self) -> int:
        """Consecutive failures since the last success."""
        return self._failures

    @property
    def times_opened(self) -> int:
        """How often the breaker tripped open (load-shedding periods)."""
        return sum(1 for t in self.transitions if t.new == "open")

    def snapshot(self) -> BreakerSnapshot:
        return BreakerSnapshot(
            state=self._state, failures=self._failures, opened=self.times_opened
        )

    # -- the state machine --------------------------------------------------

    def _transition(self, new: str) -> None:
        if new == self._state:
            return
        record = BreakerTransition(self._clock(), self._state, new)
        self._state = new
        self.transitions.append(record)
        if self.on_transition is not None:
            self.on_transition(record)

    def allow(self) -> bool:
        """May a call go out right now?  (Open breakers shed; half-open
        lets exactly one probe through per cooldown period.)"""
        if self._state == "closed":
            return True
        if self._state == "open":
            if self._clock() < self._open_until:
                return False
            self._transition("half-open")
            self._probe_in_flight = True
            return True
        # half-open: one probe at a time.
        if self._probe_in_flight:
            return False
        self._probe_in_flight = True
        return True

    def record_success(self) -> None:
        """The call (or probe) worked: close and reset."""
        self._probe_in_flight = False
        self._failures = 0
        if self._state != "closed":
            self._transition("closed")

    def record_failure(self) -> None:
        """The call (or probe) failed: count, and trip open past the
        threshold (a failed half-open probe re-opens immediately)."""
        self._probe_in_flight = False
        self._failures += 1
        if self._state == "half-open" or (
            self._state == "closed" and self._failures >= self.failure_threshold
        ):
            low, high = self.jitter
            self._open_until = self._clock() + self.cooldown * self._rng.uniform(
                low, high
            )
            self._transition("open")

"""Machine partitioning (Example 5, Rule 1; Example 1's preferred access).

"The batch partition of the computer must be as large as possible, leaving
a few nodes for interactive jobs and for some services."  The paper's
administrator settles on 256 of 288 nodes for batch; the remaining nodes
serve interactive work under a different (trivial) discipline.

Partitions are disjoint node sets without time sharing, so the system
decomposes exactly: each partition is an independent machine with its own
scheduler, fed the sub-stream of jobs routed to it.
:class:`PartitionedSystem` performs the routing, runs one simulation per
partition, and merges the results — including the overall utilisation a
site administrator answers for, which is what makes Rule 1's "as large as
possible" measurable (interactive nodes idle whenever no interactive work
exists).

Routing is by predicate, first match wins; a catch-all partition is
required so no job is lost (the paper's machine rejects nothing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.job import Job
from repro.core.machine import Machine
from repro.core.scheduler import Scheduler
from repro.core.simulator import SimulationResult, Simulator

#: Routing predicate: True if the partition accepts the job.
Selector = Callable[[Job], bool]


@dataclass(slots=True)
class Partition:
    """One partition: name, node count, scheduler, routing predicate."""

    name: str
    nodes: int
    scheduler: Scheduler
    selector: Selector

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise ValueError(f"partition {self.name!r} needs positive nodes")


@dataclass(slots=True)
class PartitionResult:
    """Outcome of one partition's simulation."""

    partition: Partition
    result: SimulationResult
    jobs_routed: int


class RoutingError(ValueError):
    """Raised when a job matches no partition or cannot fit its partition."""


class PartitionedSystem:
    """A machine statically divided into independently scheduled partitions."""

    def __init__(self, partitions: Sequence[Partition]) -> None:
        if not partitions:
            raise ValueError("need at least one partition")
        names = [p.name for p in partitions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate partition names: {names}")
        self.partitions = list(partitions)

    @property
    def total_nodes(self) -> int:
        return sum(p.nodes for p in self.partitions)

    def route(self, jobs: Sequence[Job]) -> dict[str, list[Job]]:
        """Split a stream by partition, first matching selector wins."""
        buckets: dict[str, list[Job]] = {p.name: [] for p in self.partitions}
        for job in jobs:
            for partition in self.partitions:
                if partition.selector(job):
                    if job.nodes > partition.nodes:
                        raise RoutingError(
                            f"job {job.job_id} ({job.nodes} nodes) routed to "
                            f"partition {partition.name!r} of {partition.nodes} nodes"
                        )
                    buckets[partition.name].append(job)
                    break
            else:
                raise RoutingError(f"job {job.job_id} matches no partition")
        return buckets

    def run(self, jobs: Sequence[Job]) -> dict[str, PartitionResult]:
        """Route and simulate every partition independently."""
        buckets = self.route(jobs)
        out: dict[str, PartitionResult] = {}
        for partition in self.partitions:
            stream = buckets[partition.name]
            if stream:
                result = Simulator(
                    Machine(partition.nodes), partition.scheduler
                ).run(stream)
            else:
                # Nothing routed here: an idle partition, not a simulation.
                result = SimulationResult.empty()
            out[partition.name] = PartitionResult(
                partition=partition, result=result, jobs_routed=len(stream)
            )
        return out

    def overall_utilisation(self, results: dict[str, PartitionResult]) -> float:
        """System-wide utilisation over the union time frame.

        The frame spans from the earliest submission to the latest
        completion across all partitions; idle interactive nodes dilute
        the figure — the trade-off behind Rule 1.
        """
        frames = [
            (r.result.schedule.first_submission, r.result.schedule.makespan)
            for r in results.values()
            if len(r.result.schedule)
        ]
        if not frames:
            return 0.0
        start = min(f[0] for f in frames)
        end = max(f[1] for f in frames)
        if end <= start:
            return 0.0
        busy = 0.0
        for r in results.values():
            for item in r.result.schedule:
                lo = max(item.start_time, start)
                hi = min(item.end_time, end)
                if hi > lo:
                    busy += (hi - lo) * item.job.nodes
        return busy / ((end - start) * self.total_nodes)


def example5_partitioning(
    batch_scheduler: Scheduler,
    interactive_scheduler: Scheduler,
    *,
    total_nodes: int = 288,
    batch_nodes: int = 256,
) -> PartitionedSystem:
    """Example 5's split: 256-node batch partition, the rest interactive.

    Jobs are routed on the ``meta['interactive']`` flag (workload models
    mark interactive jobs that way); everything else is batch.
    """
    if not 0 < batch_nodes < total_nodes:
        raise ValueError("need 0 < batch_nodes < total_nodes")
    return PartitionedSystem(
        [
            Partition(
                name="interactive",
                nodes=total_nodes - batch_nodes,
                scheduler=interactive_scheduler,
                selector=lambda job: bool(job.meta.get("interactive", False)),
            ),
            Partition(
                name="batch",
                nodes=batch_nodes,
                scheduler=batch_scheduler,
                selector=lambda job: True,
            ),
        ]
    )

"""The on-line scheduler interface driven by the simulator.

Section 2 of the paper: the scheduling system "receives a stream of job
submission data and produces a valid schedule" and "may not be aware of any
data arriving in the future".  The :class:`Scheduler` interface encodes that
contract: the simulator notifies the scheduler of submissions and
completions as they happen, and after each batch of simultaneous events asks
it which queued jobs to start *now*.

Schedulers may inspect

* the machine state (free nodes),
* the currently running jobs with their *projected* completions
  (start + user estimate — never the actual runtime), and
* their own wait queue.

They may not look at actual runtimes of unfinished jobs or at future
arrivals; the simulator hands them only the information an on-line system
would have.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from types import MappingProxyType
from typing import TYPE_CHECKING, Mapping

__all__ = [
    "CoalescingCaps",
    "NO_COALESCING",
    "RunningJob",
    "Scheduler",
    "SchedulerContext",
]

from repro.core.job import Job
from repro.core.machine import Machine
from repro.core.profile import AvailabilityProfile

if TYPE_CHECKING:  # pragma: no cover - typing-only (state imports profile)
    from repro.core.state import SchedulingState


@dataclass(frozen=True, slots=True)
class RunningJob:
    """A job currently holding a partition."""

    job: Job
    start_time: float

    @property
    def projected_end(self) -> float:
        """Completion as the scheduler may project it (start + estimate)."""
        return self.start_time + self.job.estimated_runtime


class SchedulerContext:
    """Read-only view of the system state handed to schedulers.

    Wraps the machine, the running-job table and (when the driving loop
    maintains one) the incremental :class:`~repro.core.state.SchedulingState`;
    exposes the current simulated time.  A fresh context is not built per
    event — the simulator keeps one and updates ``now``, which also
    advances the state's persistent profile to the new instant.
    """

    __slots__ = (
        "machine",
        "_running",
        "_now",
        "state",
        "_capacity_outages",
        "queue_columns",
        "vectorize",
    )

    def __init__(
        self,
        machine: Machine,
        running: dict[int, RunningJob],
        state: "SchedulingState | None" = None,
        capacity_outages: "list[tuple[float, int]] | None" = None,
    ) -> None:
        self.machine = machine
        self._running = running
        self.state = state
        #: Active node outages as ``(repair_time, nodes)`` pairs, maintained
        #: by the simulator; the profile fallback (no incremental state)
        #: reserves them so both paths plan on the same degraded machine.
        self._capacity_outages = capacity_outages if capacity_outages is not None else []
        #: Columnar ``(nodes array, estimated-runtime array)`` view of the
        #: wait queue the discipline is about to scan, parallel to the
        #: ordered queue — or ``None``.  Set transiently by
        #: :meth:`repro.schedulers.base.OrderedQueueScheduler.select_jobs`
        #: when the order policy maintains columns; disciplines may use it
        #: to vectorise candidate scans, never to change a decision.
        self.queue_columns: "tuple[object, object] | None" = None
        #: True when the driving loop runs the numpy backend: schedulers may
        #: then use vectorised kernels internally.  Off by default so the
        #: python backend remains a numpy-free oracle (decisions are
        #: bit-identical either way — the vector-equivalence contract).
        self.vectorize: bool = False
        self._now: float = state.now if state is not None else 0.0

    @property
    def now(self) -> float:
        return self._now

    @now.setter
    def now(self, value: float) -> None:
        self._now = value
        if self.state is not None:
            self.state.advance(value)

    @property
    def running(self) -> Mapping[int, RunningJob]:
        """Currently running jobs, keyed by job id (read-only)."""
        return MappingProxyType(self._running)

    @property
    def free_nodes(self) -> int:
        return self.machine.free_nodes

    @property
    def total_nodes(self) -> int:
        return self.machine.total_nodes

    def projected_releases(self) -> list[tuple[float, int]]:
        """``(projected_end, nodes)`` for every running job.

        This is the raw material for an availability profile; the order is
        unspecified (end-sorted when an incremental state maintains it).
        """
        if self.state is not None:
            return self.state.projected_releases()
        return [(r.projected_end, r.job.nodes) for r in self._running.values()]

    @property
    def profile(self) -> AvailabilityProfile:
        """The availability profile as of ``now`` — a private, mutable copy.

        With an incremental state this is a copy-on-write snapshot of the
        persistent profile (O(overruns), usually O(1)); without one it
        falls back to a full ``from_running`` rebuild.  Either way the
        returned step function is identical, disciplines may freely
        ``reserve`` into it, and every access yields an independent copy.
        """
        if self.state is not None:
            return self.state.snapshot()
        profile = AvailabilityProfile.from_running(
            self.machine.total_nodes, self._now, self.projected_releases()
        )
        for until, nodes in self._capacity_outages:
            if until > self._now:
                profile.reserve_until(self._now, until, nodes)
        return profile

    def queue_min_nodes(self, expected_count: int) -> int | None:
        """Narrowest job in the tracked wait queue, when that is knowable.

        ``expected_count`` is the length of the queue the caller is about
        to scan; the incremental stat is returned only when it describes
        exactly that many jobs (wrappers that filter the queue, or
        schedulers the simulator cannot track, make it refuse).  ``None``
        means "scan it yourself".
        """
        if self.state is None or expected_count <= 0:
            return None
        return self.state.queue_min_nodes(expected_count)


@dataclass(frozen=True, slots=True)
class CoalescingCaps:
    """What the simulator's event coalescer may skip for a scheduler.

    Each flag is a *behavioural guarantee* the scheduler makes about its own
    decision procedure; the simulator's fast paths (see
    ``docs/architecture.md``, "Event coalescing") only engage when the
    corresponding guarantee holds.  All flags default to ``False`` — a
    scheduler that says nothing is never coalesced, which keeps every
    wrapper, regime switcher and exotic policy on the per-event oracle path
    automatically.

    ``blocked_arrivals``
        If ``select_jobs`` just returned (reaching its fixpoint for the
        current instant) and the only change since is newly *appended*
        arrivals each requesting more nodes than are free, the next
        ``select_jobs`` is guaranteed to return ``[]``.
    ``idle_starts``
        Work conservation on an empty queue: a lone arriving job that fits
        the free nodes always starts immediately (``select_jobs`` would
        return exactly the arrivals, in arrival order, when they all fit).
    ``empty_drain``
        With an empty wait queue, ``select_jobs`` / ``on_complete`` /
        ``next_wakeup`` have no observable effect, so pure-completion
        instants need no scheduler involvement at all.
    """

    blocked_arrivals: bool = False
    idle_starts: bool = False
    empty_drain: bool = False

    def __bool__(self) -> bool:
        return self.blocked_arrivals or self.idle_starts or self.empty_drain


#: The default capability set: nothing may be coalesced.
NO_COALESCING = CoalescingCaps()


class Scheduler(abc.ABC):
    """Base class for on-line schedulers.

    Subclasses must manage their own wait queue (``on_submit`` /
    ``on_complete`` bookkeeping) and implement :meth:`select_jobs`.
    """

    #: Human-readable name used by the experiment harness and registries.
    name: str = "scheduler"

    #: Whether the algorithm reads user runtime estimates.  Purely
    #: informational (used by reports); enforcement is by code review —
    #: estimate-free algorithms simply never touch ``estimated_runtime``.
    uses_estimates: bool = True

    def reset(self) -> None:
        """Clear internal state before a fresh simulation run."""

    @abc.abstractmethod
    def on_submit(self, job: Job, ctx: SchedulerContext) -> None:
        """A new job arrived; enqueue it."""

    def on_submit_run(self, jobs: "list[Job]", ctx: SchedulerContext) -> None:
        """A coalesced run of arrivals (time-ordered).  Equivalent to
        per-job :meth:`on_submit`; the simulator only uses it inside
        capability-gated fast paths, and schedulers with bulk-appendable
        queues may override it to hoist the per-job dispatch."""
        for job in jobs:
            self.on_submit(job, ctx)

    def on_complete(self, job: Job, ctx: SchedulerContext) -> None:
        """A running job finished (its nodes are already released)."""

    def on_cancel(self, job: Job, ctx: SchedulerContext) -> None:
        """A *queued* job was cancelled by its user; drop it from the queue.

        Cancellation of running jobs is handled by the simulator (the job
        is killed and reported through ``on_complete``); schedulers only
        see queue withdrawals here.  The default raises — schedulers must
        opt in, because silently ignoring a cancellation would leave a
        ghost job in the queue.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support queued-job cancellation"
        )

    @abc.abstractmethod
    def select_jobs(self, ctx: SchedulerContext) -> list[Job]:
        """Return queued jobs to start *now*, in start order.

        The returned jobs must jointly fit the free nodes; the simulator
        validates and allocates them in order.  Returning an empty list
        means "wait for the next event".  Selected jobs must be removed
        from the scheduler's own queue before returning.
        """

    def coalescing_caps(self) -> CoalescingCaps:
        """Event-coalescing guarantees this scheduler makes (see
        :class:`CoalescingCaps`).  The base default grants none; concrete
        schedulers opt in per capability."""
        return NO_COALESCING

    def next_wakeup(self, ctx: SchedulerContext) -> float | None:
        """Optional timer request, polled after each decision point.

        Return a future instant at which the simulator should create a
        decision point even if no job event occurs then — e.g. the end of
        a reservation window after which queued jobs may start.  ``None``
        (the default) requests nothing.
        """
        return None

    @property
    def pending_count(self) -> int:
        """Number of jobs in the wait queue (for diagnostics)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"

"""The rigid job model.

The paper's Example 5 (Section 3) fixes the job model used throughout the
evaluation:

* jobs are *rigid* — the user provides the exact number of nodes;
* the user provides an *upper limit* on execution time (the estimate); a job
  exceeding it may be cancelled;
* jobs have exclusive access to their partition, and the machine does not
  support time sharing.

A :class:`Job` is therefore fully described by its submission time, node
request, actual execution time, and estimated (requested) execution time.
The *weight* used by the average weighted response time objective is the
job's resource consumption — ``nodes * runtime`` (Section 4); schedulers that
use Smith ratios read :attr:`Job.weight`, which defaults to that area but can
be overridden for custom objectives.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Mapping


class JobState(enum.Enum):
    """Lifecycle of a job inside the on-line simulator."""

    PENDING = "pending"      # not yet submitted (simulated clock < submit)
    QUEUED = "queued"        # submitted, waiting for resources
    RUNNING = "running"      # occupying its partition
    COMPLETED = "completed"  # finished (ran to completion)
    CANCELLED = "cancelled"  # killed at its estimate limit


@dataclass(frozen=True, slots=True)
class Job:
    """An immutable rigid-job record.

    Parameters
    ----------
    job_id:
        Unique identifier within one workload.  Ties in the simulator are
        broken by ``job_id`` so runs are deterministic.
    submit_time:
        Arrival of the submission data at the scheduling system (seconds).
    nodes:
        Exact number of nodes requested (rigid job model).
    runtime:
        Actual execution time in seconds.  Unknown to on-line schedulers
        until completion.
    estimate:
        User-provided upper limit for the execution time.  This is what
        estimate-based schedulers (backfilling, SMART, PSRS) may look at.
        Defaults to ``runtime`` (exact knowledge) when not given.
    user:
        Optional user identifier (used by policy rules and SWF round trips).
    weight:
        Weight for weighted-completion-time style objectives.  ``None``
        means "use the paper's default", i.e. resource consumption
        ``nodes * runtime``; see :attr:`area`.
    meta:
        Free-form extra submission data (LoadLeveler class, node type, ...).
        Ignored by every scheduler, preserved by trace transforms.
    """

    job_id: int
    submit_time: float
    nodes: int
    runtime: float
    estimate: float | None = None
    user: int = 0
    weight: float | None = None
    meta: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.job_id < 0:
            raise ValueError(f"job_id must be non-negative, got {self.job_id}")
        if self.nodes <= 0:
            raise ValueError(f"job {self.job_id}: nodes must be positive, got {self.nodes}")
        if self.runtime < 0:
            raise ValueError(f"job {self.job_id}: runtime must be non-negative, got {self.runtime}")
        if self.submit_time < 0:
            raise ValueError(
                f"job {self.job_id}: submit_time must be non-negative, got {self.submit_time}"
            )
        if self.estimate is not None and self.estimate < 0:
            raise ValueError(
                f"job {self.job_id}: estimate must be non-negative, got {self.estimate}"
            )
        if self.weight is not None and self.weight < 0:
            raise ValueError(f"job {self.job_id}: weight must be non-negative, got {self.weight}")

    # -- derived quantities -------------------------------------------------

    @property
    def estimated_runtime(self) -> float:
        """The execution time the scheduler is allowed to assume.

        The user's upper limit when provided, otherwise the actual runtime
        (i.e. exact knowledge, as in the paper's Table 6 study).
        """
        return self.runtime if self.estimate is None else self.estimate

    @property
    def area(self) -> float:
        """Resource consumption: ``nodes * runtime``.

        This is the weight of the job under the paper's average weighted
        response time objective (Section 4).
        """
        return self.nodes * self.runtime

    @property
    def estimated_area(self) -> float:
        """Resource consumption as projected from the user estimate."""
        return self.nodes * self.estimated_runtime

    @property
    def effective_weight(self) -> float:
        """The weight used by weighted objectives and Smith ratios."""
        return self.area if self.weight is None else self.weight

    # -- convenience --------------------------------------------------------

    def with_exact_estimate(self) -> "Job":
        """Return a copy whose estimate equals the actual runtime.

        Used by the Table 6 experiment ("Knowledge of the Exact Job
        Execution Time").
        """
        return replace(self, estimate=self.runtime)

    def smith_ratio(self) -> float:
        """Smith's ratio weight/runtime (estimated), largest-first is WSPT.

        For zero-runtime jobs the ratio is infinite — such jobs should
        always be ordered first, which ``float('inf')`` achieves naturally.
        """
        rt = self.estimated_runtime
        if rt == 0:
            return float("inf")
        return self.effective_weight / rt

    def modified_smith_ratio(self) -> float:
        """PSRS's modified Smith ratio: weight / (nodes * runtime).

        With the paper's default weight (``nodes * runtime``) this is 1 for
        every job when estimates are exact; PSRS then degenerates to its
        tie-breaking order.  With estimated runtimes, the ratio is
        ``runtime_estimated_area / estimated_area`` computed from the data
        the scheduler may see, i.e. weight over *estimated* area.
        """
        denom = self.nodes * self.estimated_runtime
        if denom == 0:
            return float("inf")
        return self.effective_weight / denom


def validate_stream(jobs: list[Job]) -> None:
    """Validate a job stream: unique ids, sorted by submission time.

    The simulator accepts unsorted input (it sorts internally) but many
    workload-level invariants are easier to state on a normalised stream.
    Raises ``ValueError`` on duplicate ids.
    """
    seen: set[int] = set()
    for job in jobs:
        if job.job_id in seen:
            raise ValueError(f"duplicate job_id {job.job_id} in stream")
        seen.add(job.job_id)


def sort_stream(jobs: list[Job]) -> list[Job]:
    """Return the stream sorted by (submit_time, job_id)."""
    return sorted(jobs, key=lambda j: (j.submit_time, j.job_id))

"""Machine model: a space-shared partition of identical nodes.

Example 5 of the paper fixes the machine: 288 identical nodes of which 256
form the batch partition, variable partitioning, no time sharing, exclusive
access to partitions.  :class:`Machine` models exactly that — a counter of
free identical nodes plus bookkeeping of which job holds how many.

The machine deliberately does *not* model node topology: the paper's
machine supports variable partitioning ("any subset of nodes works"), so
only the count matters.  Heterogeneous node types in the original CTC trace
are handled upstream by the workload transforms (the administrator "decides
to ignore all additional hardware requests", Section 6.1).

Capacity is *time-varying*: node failures (Section 2's "sudden failure of a
hardware component", injected by :mod:`repro.failures`) take nodes out of
the pool via :meth:`Machine.fail_nodes` and return them via
:meth:`Machine.repair_nodes`.  The machine records every capacity change so
:meth:`capacity_at` can answer "how many nodes existed at time t" after the
run — the time-varying bound :meth:`repro.core.schedule.Schedule.validate`
checks against.  Topology stays unmodelled: which *jobs* a failure kills is
the simulator's decision, the machine only counts.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.core.job import Job


class Machine:
    """A pool of ``total_nodes`` identical, space-shared nodes.

    Allocation is by node count only (variable partitioning).  The class
    enforces the two validity constraints of the target machine:

    * a job receives exactly ``job.nodes`` nodes, exclusively;
    * the sum of allocated nodes never exceeds the *available* capacity
      (``total_nodes`` minus nodes currently down; no time sharing).
    """

    __slots__ = ("total_nodes", "_free", "_allocations", "_down", "_capacity_log")

    #: Batch partition size used throughout the paper's evaluation.
    PAPER_BATCH_NODES = 256

    def __init__(self, total_nodes: int = PAPER_BATCH_NODES) -> None:
        if total_nodes <= 0:
            raise ValueError(f"total_nodes must be positive, got {total_nodes}")
        self.total_nodes = total_nodes
        self._free = total_nodes
        self._allocations: dict[int, int] = {}
        self._down = 0
        #: ``(time, capacity_from_time)`` breakpoints; empty while no
        #: failure ever happened (capacity is then ``total_nodes`` forever).
        self._capacity_log: list[tuple[float, int]] = []

    # -- queries -------------------------------------------------------------

    @property
    def free_nodes(self) -> int:
        """Number of currently unallocated, operational nodes."""
        return self._free

    @property
    def busy_nodes(self) -> int:
        """Number of currently allocated nodes."""
        return self.available_nodes - self._free

    @property
    def down_nodes(self) -> int:
        """Number of nodes currently failed (out of the pool)."""
        return self._down

    @property
    def available_nodes(self) -> int:
        """Current capacity: nodes that exist and are not down."""
        return self.total_nodes - self._down

    def capacity_at(self, time: float) -> int:
        """Capacity that held at ``time`` (from the recorded failure history)."""
        log = self._capacity_log
        idx = bisect_right(log, (time, 1 << 62)) - 1
        return log[idx][1] if idx >= 0 else self.total_nodes

    def capacity_steps(self) -> list[tuple[float, int]]:
        """Recorded ``(time, capacity_from_time)`` breakpoints (a copy).

        Feed this to :meth:`repro.core.schedule.Schedule.validate` as its
        ``capacity`` argument to check a finished run against the
        time-varying machine.
        """
        return list(self._capacity_log)

    def fits(self, job: Job) -> bool:
        """True iff the job could start right now."""
        return job.nodes <= self._free

    def can_ever_fit(self, job: Job) -> bool:
        """True iff the job fits an empty machine at all."""
        return job.nodes <= self.total_nodes

    def allocation_of(self, job_id: int) -> int | None:
        """Nodes currently held by ``job_id``, or ``None`` if not running."""
        return self._allocations.get(job_id)

    @property
    def running_jobs(self) -> list[int]:
        """Ids of jobs currently holding nodes (unspecified order)."""
        return list(self._allocations)

    # -- state changes -------------------------------------------------------

    def allocate(self, job: Job) -> None:
        """Give ``job`` its partition.  Raises if it does not fit."""
        if job.job_id in self._allocations:
            raise ValueError(f"job {job.job_id} is already running")
        if self.available_nodes == 0:
            raise ValueError(
                f"cannot allocate job {job.job_id}: all {self.total_nodes} "
                "nodes are down (capacity is zero)"
            )
        if job.nodes > self._free:
            down = f" ({self._down} down)" if self._down else ""
            raise ValueError(
                f"job {job.job_id} needs {job.nodes} nodes but only "
                f"{self._free} of {self.total_nodes} are free{down}"
            )
        self._allocations[job.job_id] = job.nodes
        self._free -= job.nodes

    def release(self, job_id: int) -> int:
        """Return the partition of ``job_id`` to the free pool.

        Returns the number of nodes released.  Raises ``KeyError`` if the
        job is not running.
        """
        nodes = self._allocations.pop(job_id)
        self._free += nodes
        return nodes

    def fail_nodes(self, nodes: int, now: float) -> None:
        """Take ``nodes`` *free* nodes out of the pool at ``now``.

        The caller (the simulator's ``NODE_DOWN`` handler) must first kill
        enough running jobs to free the failed nodes; raising here instead
        of silently overdrawing keeps the accounting exact.
        """
        if nodes <= 0:
            raise ValueError(f"failed node count must be positive, got {nodes}")
        if nodes > self._free:
            raise ValueError(
                f"{nodes} nodes failed but only {self._free} are free — the "
                "simulator must kill running jobs before removing capacity"
            )
        self._free -= nodes
        self._down += nodes
        self._record_capacity(now)

    def repair_nodes(self, nodes: int, now: float) -> None:
        """Return ``nodes`` repaired nodes to the free pool at ``now``."""
        if nodes <= 0:
            raise ValueError(f"repaired node count must be positive, got {nodes}")
        if nodes > self._down:
            raise ValueError(
                f"cannot repair {nodes} nodes: only {self._down} are down"
            )
        self._free += nodes
        self._down -= nodes
        self._record_capacity(now)

    def _record_capacity(self, now: float) -> None:
        log = self._capacity_log
        capacity = self.total_nodes - self._down
        if log and log[-1][0] == now:
            log[-1] = (now, capacity)
        else:
            log.append((now, capacity))

    def reset(self) -> None:
        """Release everything, repair everything (fresh simulation run)."""
        self._free = self.total_nodes
        self._allocations.clear()
        self._down = 0
        self._capacity_log.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine(total_nodes={self.total_nodes}, free={self._free}, "
            f"down={self._down}, running={len(self._allocations)})"
        )

"""Machine model: a space-shared partition of identical nodes.

Example 5 of the paper fixes the machine: 288 identical nodes of which 256
form the batch partition, variable partitioning, no time sharing, exclusive
access to partitions.  :class:`Machine` models exactly that — a counter of
free identical nodes plus bookkeeping of which job holds how many.

The machine deliberately does *not* model node topology: the paper's
machine supports variable partitioning ("any subset of nodes works"), so
only the count matters.  Heterogeneous node types in the original CTC trace
are handled upstream by the workload transforms (the administrator "decides
to ignore all additional hardware requests", Section 6.1).
"""

from __future__ import annotations

from repro.core.job import Job


class Machine:
    """A pool of ``total_nodes`` identical, space-shared nodes.

    Allocation is by node count only (variable partitioning).  The class
    enforces the two validity constraints of the target machine:

    * a job receives exactly ``job.nodes`` nodes, exclusively;
    * the sum of allocated nodes never exceeds ``total_nodes`` (no time
      sharing).
    """

    __slots__ = ("total_nodes", "_free", "_allocations")

    #: Batch partition size used throughout the paper's evaluation.
    PAPER_BATCH_NODES = 256

    def __init__(self, total_nodes: int = PAPER_BATCH_NODES) -> None:
        if total_nodes <= 0:
            raise ValueError(f"total_nodes must be positive, got {total_nodes}")
        self.total_nodes = total_nodes
        self._free = total_nodes
        self._allocations: dict[int, int] = {}

    # -- queries -------------------------------------------------------------

    @property
    def free_nodes(self) -> int:
        """Number of currently unallocated nodes."""
        return self._free

    @property
    def busy_nodes(self) -> int:
        """Number of currently allocated nodes."""
        return self.total_nodes - self._free

    def fits(self, job: Job) -> bool:
        """True iff the job could start right now."""
        return job.nodes <= self._free

    def can_ever_fit(self, job: Job) -> bool:
        """True iff the job fits an empty machine at all."""
        return job.nodes <= self.total_nodes

    def allocation_of(self, job_id: int) -> int | None:
        """Nodes currently held by ``job_id``, or ``None`` if not running."""
        return self._allocations.get(job_id)

    @property
    def running_jobs(self) -> list[int]:
        """Ids of jobs currently holding nodes (unspecified order)."""
        return list(self._allocations)

    # -- state changes -------------------------------------------------------

    def allocate(self, job: Job) -> None:
        """Give ``job`` its partition.  Raises if it does not fit."""
        if job.job_id in self._allocations:
            raise ValueError(f"job {job.job_id} is already running")
        if job.nodes > self._free:
            raise ValueError(
                f"job {job.job_id} needs {job.nodes} nodes but only "
                f"{self._free} of {self.total_nodes} are free"
            )
        self._allocations[job.job_id] = job.nodes
        self._free -= job.nodes

    def release(self, job_id: int) -> int:
        """Return the partition of ``job_id`` to the free pool.

        Returns the number of nodes released.  Raises ``KeyError`` if the
        job is not running.
        """
        nodes = self._allocations.pop(job_id)
        self._free += nodes
        return nodes

    def reset(self) -> None:
        """Release everything (fresh simulation run)."""
        self._free = self.total_nodes
        self._allocations.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine(total_nodes={self.total_nodes}, free={self._free}, "
            f"running={len(self._allocations)})"
        )

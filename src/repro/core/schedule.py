"""Schedule records and validity checking.

Section 2 of the paper: "A schedule is an allocation of system resources to
individual jobs for certain time periods" and "the final schedule is only
available after the execution of all jobs."  A :class:`Schedule` is that
final record — one :class:`ScheduledJob` per job, with the realised start
and completion times.

Validity (Section 2 again) is defined by the target machine, not by the
jobs: here the constraints of Example 5 are (a) the node capacity is never
exceeded, (b) no job starts before its submission, and (c) a job runs
without interruption for exactly its execution time (no time sharing, no
preemption).  :meth:`Schedule.validate` checks all three with an event sweep
in ``O(n log n)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.job import Job


class ValidityError(ValueError):
    """Raised when a schedule violates a machine constraint."""


@dataclass(frozen=True, slots=True)
class ScheduledJob:
    """The realised allocation of one job.

    ``end_time`` is the realised completion: start + actual runtime for a
    normally completed job; earlier for a cancelled one (killed at its
    estimate limit, or cancelled mid-run by its user).
    """

    job: Job
    start_time: float
    end_time: float
    cancelled: bool = False

    @property
    def response_time(self) -> float:
        """Completion minus submission — the paper's per-job response time."""
        return self.end_time - self.job.submit_time

    @property
    def wait_time(self) -> float:
        """Start minus submission."""
        return self.start_time - self.job.submit_time

    @property
    def weighted_response_time(self) -> float:
        """Response time multiplied by the job's effective weight."""
        return self.response_time * self.job.effective_weight


class Schedule:
    """An immutable collection of :class:`ScheduledJob` records."""

    __slots__ = ("_items", "_by_id")

    def __init__(self, items: Iterable[ScheduledJob]) -> None:
        self._items: tuple[ScheduledJob, ...] = tuple(items)
        self._by_id: dict[int, ScheduledJob] = {}
        for item in self._items:
            if item.job.job_id in self._by_id:
                raise ValidityError(f"job {item.job.job_id} scheduled twice")
            self._by_id[item.job.job_id] = item

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[ScheduledJob]:
        return iter(self._items)

    def __getitem__(self, job_id: int) -> ScheduledJob:
        return self._by_id[job_id]

    def __contains__(self, job_id: int) -> bool:
        return job_id in self._by_id

    @property
    def jobs(self) -> tuple[ScheduledJob, ...]:
        return self._items

    # -- aggregate properties ---------------------------------------------------

    @property
    def makespan(self) -> float:
        """Latest completion time (0 for an empty schedule)."""
        return max((s.end_time for s in self._items), default=0.0)

    @property
    def first_submission(self) -> float:
        return min((s.job.submit_time for s in self._items), default=0.0)

    # -- validity ---------------------------------------------------------------

    def validate(
        self,
        total_nodes: int,
        *,
        capacity: Iterable[tuple[float, int]] | None = None,
    ) -> None:
        """Raise :class:`ValidityError` unless this schedule is valid.

        Checks, per Section 2's machine-defined validity:

        * every job's node request fits the machine,
        * no job starts before its submission time,
        * a completed job occupies the machine for exactly its runtime; a
          cancelled job for at most its estimate (kills can happen any
          time up to the limit),
        * at no instant do concurrently running jobs hold more than the
          machine's capacity at that instant.

        ``capacity`` supplies time-varying capacity as ``(time,
        capacity_from_time)`` breakpoints (``total_nodes`` holds before
        the first breakpoint) — the shape
        :meth:`repro.core.machine.Machine.capacity_steps` and
        :meth:`repro.failures.trace.FailureTrace.capacity_steps` produce.
        Job widths are still checked against the nominal ``total_nodes``:
        a job as wide as the whole machine is legal, it just cannot run
        during an outage.
        """
        events: list[tuple[float, int, int]] = []  # (time, +nodes at start / -nodes at end)
        for item in self._items:
            job = item.job
            if job.nodes > total_nodes:
                raise ValidityError(
                    f"job {job.job_id} requests {job.nodes} nodes on a "
                    f"{total_nodes}-node machine"
                )
            if item.start_time < job.submit_time:
                raise ValidityError(
                    f"job {job.job_id} starts at {item.start_time} before its "
                    f"submission at {job.submit_time}"
                )
            duration = item.end_time - item.start_time
            if item.cancelled:
                # A kill can land any time before natural completion: at the
                # estimate limit (over-limit cancellation), mid-run (user
                # cancellation), or past an exceeded estimate (node failure
                # hitting an overrunning job).
                limit = max(job.runtime, job.estimated_runtime)
                if duration < -1e-9 or duration > limit + 1e-9 * max(1.0, limit):
                    raise ValidityError(
                        f"cancelled job {job.job_id} occupies the machine for "
                        f"{duration}s, beyond its {limit}s limit"
                    )
            elif abs(duration - job.runtime) > 1e-9 * max(1.0, job.runtime):
                raise ValidityError(
                    f"job {job.job_id} occupies the machine for {duration}s, "
                    f"expected {job.runtime}s"
                )
            if duration > 0:
                events.append((item.start_time, 2, job.nodes))
                events.append((item.end_time, 0, -job.nodes))
        # Releases (tag 0) sort before capacity changes (tag 1) before
        # allocations (tag 2) at equal times: jobs killed at a failure
        # instant release before the capacity drops, repairs apply before
        # jobs start on the repaired nodes, and back-to-back jobs on the
        # same nodes stay legal.
        if capacity is not None:
            for time, level in capacity:
                if level < 0 or level > total_nodes:
                    raise ValidityError(
                        f"capacity step ({time}, {level}) outside [0, {total_nodes}]"
                    )
                events.append((time, 1, level))
        events.sort(key=lambda e: (e[0], e[1]))
        used = 0
        cap = total_nodes
        for _time, _tag, value in events:
            if _tag == 1:
                cap = value
            else:
                used += value
            if used > cap:
                raise ValidityError(
                    f"capacity exceeded at t={_time}: {used} > {cap} nodes in use"
                )

    def utilisation_profile(self) -> list[tuple[float, int]]:
        """Step function of busy nodes: list of ``(time, nodes_in_use_after)``.

        Consecutive entries have strictly increasing times; the profile
        starts at the first event and the node count after the last entry
        stays at its value (always 0 for a finite schedule).
        """
        deltas: dict[float, int] = {}
        for item in self._items:
            if item.end_time > item.start_time:
                deltas[item.start_time] = deltas.get(item.start_time, 0) + item.job.nodes
                deltas[item.end_time] = deltas.get(item.end_time, 0) - item.job.nodes
        profile: list[tuple[float, int]] = []
        used = 0
        for time in sorted(deltas):
            used += deltas[time]
            profile.append((time, used))
        return profile

"""Incrementally-maintained scheduling state shared by simulator and schedulers.

Backfilling disciplines plan against the machine's *availability* — free
nodes as a function of future time.  The original implementation rebuilt an
:class:`~repro.core.profile.AvailabilityProfile` from the running-job table
at every decision point: O(m log m) per decision, hundreds of thousands of
times per simulated month.  :class:`SchedulingState` replaces the
rebuild-per-decision pattern with one persistent structure owned by the
simulator and exposed to schedulers through
:class:`~repro.core.scheduler.SchedulerContext`:

* a **persistent availability profile** absorbing job start, completion and
  kill deltas (``on_start`` / ``on_release``) and advancing its origin with
  the simulation clock, so early completions free their projected remainder
  the instant they happen;
* a **sorted projected-release index** — ``(projected_end, job_id)`` pairs
  maintained by binary insertion — replacing the per-decision sort hidden
  inside ``AvailabilityProfile.from_running``;
* **incremental queue statistics** — a width histogram of the wait queue
  with a cached minimum, so disciplines answer "does anything fit at all?"
  without an O(n) scan per decision point;
* **capacity outages** — node failures (:mod:`repro.failures`) enter the
  profile as finite reservations ``[down, up)`` via
  :meth:`SchedulingState.on_capacity_down`, so every discipline plans
  against the degraded machine exactly as it plans around running jobs.

The contract (see ``docs/architecture.md`` for the full invariant table):
only the simulator mutates the state; schedulers read copy-on-write
:meth:`snapshot` s, which are guaranteed to describe *exactly* the same
step function ``from_running`` would rebuild — including the clamping of
overrun jobs (projected end in the past) to an epsilon after *now*.  That
guarantee is mechanical equivalence: schedules under the incremental state
are bit-identical to the rebuild implementation, which
``tests/test_state_equivalence.py`` asserts over the whole registry.

Verification mode (``REPRO_VERIFY_STATE=K`` or ``Simulator(...,
verify_state=K)``) cross-checks every K-th snapshot against a fresh
``from_running`` rebuild and raises :class:`StateDivergenceError` on any
mismatch — the cheap insurance that keeps "incremental" and "correct" the
same thing as the code evolves.
"""

from __future__ import annotations

import os
from bisect import bisect_left, bisect_right, insort

from repro.core.profile import _OVERRUN_EPSILON, AvailabilityProfile


class StateDivergenceError(RuntimeError):
    """The incremental availability profile disagrees with a fresh rebuild.

    Raised only in verification mode; indicates a bookkeeping bug in the
    delta maintenance (or a scheduler mutating state it should not touch).
    """


def verify_every_from_env() -> int:
    """Cross-check cadence requested via ``REPRO_VERIFY_STATE``.

    ``0``/unset/empty disables verification; a positive integer N checks
    every N-th snapshot; any other non-empty value means "every snapshot".
    """
    raw = os.environ.get("REPRO_VERIFY_STATE", "").strip()
    if not raw:
        return 0
    try:
        return max(0, int(raw))
    except ValueError:
        return 1


#: Sentinel job id larger than any real one, for bisecting the overrun prefix.
_MAX_JOB_ID = 1 << 62


class SchedulingState:
    """Persistent machine-availability state, updated by simulator deltas.

    Parameters
    ----------
    total_nodes:
        Machine size; snapshots inherit it.
    origin:
        Simulation start time.
    verify_every:
        Cross-check every N-th snapshot against a ``from_running`` rebuild
        (0 disables).
    backend:
        Resolved kernel backend (``"python"``/``"numpy"``) for batch
        queries; threaded into
        :meth:`~repro.core.profile.AvailabilityProfile.earliest_start_batch`.

    ``deltas``, ``snapshots`` and ``verifications`` count the respective
    operations for the cost benches (Tables 7–8 instrumentation).
    """

    __slots__ = (
        "total_nodes",
        "backend",
        "now",
        "profile",
        "_ends",
        "_jobs",
        "_queue_widths",
        "_queued_count",
        "_queue_min",
        "_capacity",
        "verify_every",
        "_since_verify",
        "deltas",
        "snapshots",
        "verifications",
    )

    def __init__(
        self,
        total_nodes: int,
        *,
        origin: float = 0.0,
        verify_every: int = 0,
        backend: str = "python",
    ) -> None:
        self.total_nodes = total_nodes
        self.backend = backend
        self.now = origin
        #: The persistent profile; schedulers must never mutate it directly —
        #: they receive copy-on-write clones from :meth:`snapshot`.
        self.profile = AvailabilityProfile(total_nodes, origin=origin)
        self._ends: list[tuple[float, int]] = []  # (projected_end, job_id), sorted
        self._jobs: dict[int, tuple[float, int]] = {}  # job_id -> (end, nodes)
        self._queue_widths: dict[int, int] = {}  # nodes -> queued count
        self._queued_count = 0
        self._queue_min: int | None = None
        self._capacity: list[tuple[float, int]] = []  # active (up_time, nodes)
        self.verify_every = verify_every
        self._since_verify = 0
        self.deltas = 0
        self.snapshots = 0
        self.verifications = 0

    # -- clock -----------------------------------------------------------------

    def advance(self, now: float) -> None:
        """Move the state to ``now``, dropping passed profile segments.

        Must be called before any delta at ``now`` is applied — the
        simulator does so by assigning ``ctx.now`` once per event batch.
        Backwards moves are ignored (repeat batches at one instant).
        """
        if now > self.now:
            self.now = now
            self.profile.advance_origin(now)

    # -- job deltas (simulator-only) ---------------------------------------------

    def on_start(self, job_id: int, estimated_runtime: float, nodes: int) -> None:
        """A job started *now*: commit its projected run to the profile."""
        end = self.now + estimated_runtime
        # The persistent profile is prefix-anchored (advance() has already
        # moved the origin to ``now``), so the origin fast path applies.
        self.profile.reserve_from_origin(estimated_runtime, nodes)
        insort(self._ends, (end, job_id))
        self._jobs[job_id] = (end, nodes)
        self.deltas += 1

    def on_release(self, job_id: int) -> None:
        """A running job ended *now* (completion or kill): free its remainder.

        Early completions release the projected tail ``[now, end)``;
        overrun jobs (projection already expired) have nothing left to
        release — their epsilon clamp simply stops being applied to future
        snapshots.
        """
        end, nodes = self._jobs.pop(job_id)
        idx = bisect_left(self._ends, (end, job_id))
        del self._ends[idx]
        if end > self.now:
            self.profile.release(end, nodes)
        self.deltas += 1

    def on_start_batch(self, entries: "list[tuple[float, int, float, int]]") -> None:
        """Apply a time-ordered run of ``(start, job_id, estimate, nodes)``.

        The fused commit behind the simulator's idle-start coalescing:
        equivalent, delta for delta, to ``advance(start)`` + ``on_start``
        per entry (the clock advances through the run), with the method
        dispatch and counter updates hoisted out of the loop.
        """
        profile = self.profile
        ends = self._ends
        jobs = self._jobs
        for start, job_id, estimated_runtime, nodes in entries:
            if start > self.now:
                self.now = start
                profile.advance_origin(start)
            end = start + estimated_runtime
            profile.reserve_from_origin(estimated_runtime, nodes)
            insort(ends, (end, job_id))
            jobs[job_id] = (end, nodes)
        self.deltas += len(entries)

    def on_release_batch(self, entries: "list[tuple[float, int]]") -> None:
        """Apply a time-ordered run of ``(completion_time, job_id)`` releases.

        The fused commit behind the simulator's empty-queue completion
        drain: equivalent, delta for delta, to ``advance(time)`` +
        ``on_release`` per entry.
        """
        profile = self.profile
        ends = self._ends
        jobs = self._jobs
        for time, job_id in entries:
            if time > self.now:
                self.now = time
                profile.advance_origin(time)
            end, nodes = jobs.pop(job_id)
            idx = bisect_left(ends, (end, job_id))
            del ends[idx]
            if end > time:
                profile.release(end, nodes)
        self.deltas += len(entries)

    # -- capacity deltas (simulator-only) ------------------------------------------

    def on_capacity_down(self, until: float, nodes: int) -> None:
        """``nodes`` nodes failed *now* with repair expected at ``until``.

        The outage becomes a finite reservation ``[now, until)`` in the
        persistent profile — planning disciplines route around it exactly
        as they route around running jobs.  The caller (the simulator's
        ``NODE_DOWN`` handler) must already have released every job it
        killed, so the reservation always fits.
        """
        if until <= self.now:
            raise ValueError(
                f"capacity outage until {until} does not extend past now={self.now}"
            )
        # reserve_until, not reserve: the repair breakpoint must sit at
        # exactly ``until`` so later rebuilds (which reserve from a
        # different ``now``) produce bit-identical step functions.
        self.profile.reserve_until(self.now, until, nodes)
        insort(self._capacity, (until, nodes))
        self.deltas += 1

    def on_capacity_up(self, until: float, nodes: int) -> None:
        """The outage reserved until ``until`` was repaired (``now == until``).

        The profile reservation expires on its own as the origin advances;
        only the active-outage index needs the entry dropped.
        """
        self._capacity.remove((until, nodes))
        self.deltas += 1

    # -- queue statistics ---------------------------------------------------------

    def note_enqueued(self, nodes: int) -> None:
        """A job entered the wait queue (simulator-side membership tracking)."""
        self._queue_widths[nodes] = self._queue_widths.get(nodes, 0) + 1
        self._queued_count += 1
        if self._queue_min is None or nodes < self._queue_min:
            self._queue_min = nodes

    def note_enqueued_run(self, jobs: "list") -> None:
        """Batched :meth:`note_enqueued` over a run of arriving jobs."""
        widths = self._queue_widths
        get = widths.get
        queue_min = self._queue_min
        for job in jobs:
            nodes = job.nodes
            widths[nodes] = get(nodes, 0) + 1
            if queue_min is None or nodes < queue_min:
                queue_min = nodes
        self._queue_min = queue_min
        self._queued_count += len(jobs)

    def note_dequeued(self, nodes: int) -> None:
        """A queued job left the queue (started or cancelled)."""
        count = self._queue_widths[nodes] - 1
        if count:
            self._queue_widths[nodes] = count
        else:
            del self._queue_widths[nodes]
            if nodes == self._queue_min:
                self._queue_min = (
                    min(self._queue_widths) if self._queue_widths else None
                )
        self._queued_count -= 1

    def queue_min_nodes(self, expected_count: int) -> int | None:
        """Narrowest queued job, or ``None`` when the stat does not apply.

        The caller states how many jobs the queue it is looking at holds;
        when that disagrees with the tracked membership (a discipline
        wrapper filtered the queue, or a scheduler manages jobs the
        simulator cannot see) the stat is refused rather than silently
        wrong, and the caller falls back to scanning.
        """
        if expected_count != self._queued_count or self._queue_min is None:
            return None
        return self._queue_min

    @property
    def queued_count(self) -> int:
        return self._queued_count

    # -- snapshots ----------------------------------------------------------------

    def snapshot(self) -> AvailabilityProfile:
        """The availability profile as of ``now`` — a copy-on-write clone.

        Equals ``AvailabilityProfile.from_running(total, now,
        projected_releases)`` as a step function: overrun jobs (projected
        end at or before ``now``) are clamped to hold their nodes for the
        same epsilon the reference constructor uses.  Mutating the returned
        profile (disciplines reserve tentative starts into it) never
        touches the persistent state.
        """
        self.snapshots += 1
        snap = self.profile.clone()
        ends = self._ends
        if ends and ends[0][0] <= self.now:
            overrun = bisect_right(ends, (self.now, _MAX_JOB_ID))
            for _end, job_id in ends[:overrun]:
                snap.reserve(self.now, _OVERRUN_EPSILON, self._jobs[job_id][1])
        if self.verify_every:
            self._since_verify += 1
            if self._since_verify >= self.verify_every:
                self._since_verify = 0
                self.verify(snap)
        return snap

    def projected_releases(self) -> list[tuple[float, int]]:
        """``(projected_end, nodes)`` of every running job, end-sorted."""
        jobs = self._jobs
        return [(end, jobs[job_id][1]) for end, job_id in self._ends]

    def earliest_start_batch(
        self, requests: "list[tuple[int, float]]"
    ) -> list[float]:
        """First-fit starts for many ``(nodes, duration)`` requests at *now*.

        A read-only batch query against the current availability: one
        snapshot, one pass (see
        :meth:`~repro.core.profile.AvailabilityProfile.earliest_start_batch`).
        Disciplines planning with interleaved reservations keep using
        their own snapshot's :meth:`~repro.core.profile.AvailabilityProfile.
        allocate` kernel instead — that pair shares the same pruned
        first-fit scan, so every profile consumer benefits from the
        block-max index without further wiring.  Under the numpy backend
        the whole batch runs through the vectorised 2-D kernel
        (:func:`repro.core.vector.earliest_start_batch`).
        """
        return self.snapshot().earliest_start_batch(requests, backend=self.backend)

    # -- verification -------------------------------------------------------------

    def verify(self, snap: AvailabilityProfile | None = None) -> None:
        """Cross-check the incremental profile against a fresh rebuild.

        Raises :class:`StateDivergenceError` when the two disagree as step
        functions (redundant breakpoints ignored on both sides).
        """
        self.verifications += 1
        if snap is None:
            snap = self.profile.clone()
            overrun = bisect_right(self._ends, (self.now, _MAX_JOB_ID))
            for _end, job_id in self._ends[:overrun]:
                snap.reserve(self.now, _OVERRUN_EPSILON, self._jobs[job_id][1])
        rebuilt = AvailabilityProfile.from_running(
            self.total_nodes, self.now, self.projected_releases()
        )
        # Active capacity outages are part of the reference too: a rebuild
        # on a degraded machine must reserve the down nodes until repair.
        for until, nodes in self._capacity:
            if until > self.now:
                rebuilt.reserve_until(self.now, until, nodes)
        incremental = snap.canonical_steps()
        reference = rebuilt.canonical_steps()
        if incremental != reference:
            raise StateDivergenceError(
                f"incremental availability profile diverged from the "
                f"from_running rebuild at t={self.now} "
                f"({len(self._jobs)} running jobs): "
                f"incremental={incremental[:6]}... reference={reference[:6]}..."
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SchedulingState(now={self.now}, running={len(self._jobs)}, "
            f"queued={self._queued_count}, deltas={self.deltas}, "
            f"snapshots={self.snapshots})"
        )

"""NumPy-vectorised kernels behind the simulator's ``backend="numpy"`` path.

The pure-Python simulator is the **oracle**: every kernel in this module is
required to reproduce its results *bit for bit*, so that switching backends
can never change a schedule, an objective, or a cache fingerprint (the
backend is deliberately absent from
:func:`repro.experiments.engine.cell_fingerprint`).  The fast path earns its
keep on three hot loops:

* **event-queue advance** — instead of heap-pushing one
  :class:`~repro.core.events.Event` per submission (N dataclass
  constructions plus N × O(log N) comparison-driven sifts), the arrival
  stream is sorted once with ``np.lexsort`` and merged against the residual
  event heap by :class:`MergedEventFeed`.  Arrivals occupy the virtual
  sequence numbers ``0..N-1`` below the heap's counter
  (``EventQueue(start_sequence=N)``), so the merged order equals the heap
  order of the oracle exactly — including rerun submissions and
  cancellations racing original arrivals at the same instant;
* **batched first-fit scans** — :func:`earliest_start_batch` answers many
  ``(nodes, duration)`` queries against one availability profile as 2-D
  array ops (the ``next-false`` suffix structure below extends the scalar
  block-max index idea to whole batches);
* **metric accumulation** — :class:`ResultColumns` collects the schedule's
  numeric columns during the run, and the ``*_columns`` kernels reduce them
  with ``np.add.accumulate``.

Exactness notes (the reasons the bit-identity contract is *provable*, not
hoped for):

* ``np.lexsort((ids, submit))`` and ``sorted(key=lambda j: (j.submit_time,
  j.job_id))`` produce the same permutation because job ids are unique —
  ties on ``submit_time`` are always broken by the id.
* IEEE-754 elementwise arithmetic (``+``, ``-``, ``*``, ``max``,
  comparisons) is identical between CPython floats and NumPy float64.
* ``np.add.accumulate`` is a strictly *sequential* left-to-right reduction
  (every prefix is materialised), so its final element equals Python's
  ``sum()`` bit for bit.  ``np.sum`` is **not** usable here: its pairwise
  summation re-associates additions and would change objectives in the last
  bits, silently invalidating every cached cell.

NumPy is imported lazily per call, so blocking the import (the no-numpy
fallback test) or running on a machine without it degrades cleanly:
``resolve_backend("auto")`` then selects ``"python"`` and nothing in this
module runs.
"""

from __future__ import annotations

import os
from array import array
from bisect import bisect_right
from heapq import heappop
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.core.events import EventKind, EventQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.job import Job
    from repro.core.profile import AvailabilityProfile
    from repro.core.schedule import Schedule, ScheduledJob

__all__ = [
    "BACKENDS",
    "ENV_BACKEND",
    "MergedEventFeed",
    "ResultColumns",
    "available_backends",
    "average_response_time_columns",
    "average_weighted_response_time_columns",
    "earliest_start_batch",
    "exact_sum",
    "numpy_or_none",
    "resolve_backend",
    "sorted_stream",
]

#: Environment variable overriding an unspecified backend choice.
ENV_BACKEND = "REPRO_BACKEND"

#: Accepted values of the ``backend`` parameter (``None`` means "consult
#: :data:`ENV_BACKEND`, then auto-select").
BACKENDS = ("auto", "python", "numpy")


def numpy_or_none():
    """The ``numpy`` module, or ``None`` when it cannot be imported.

    Imported lazily on every call (module import is cached by the
    interpreter, so this costs one dict lookup) — which is what lets the
    fallback test block the import *after* this module is loaded.
    """
    try:
        import numpy
    except ImportError:
        return None
    return numpy


def _numpy():
    np = numpy_or_none()
    if np is None:  # pragma: no cover - exercised via the fallback test
        raise RuntimeError(
            "the numpy simulation backend was requested but numpy is not "
            "importable; install numpy or use backend='python'"
        )
    return np


def available_backends() -> tuple[str, ...]:
    """The concrete backends usable right now (``python`` always is)."""
    return ("python", "numpy") if numpy_or_none() is not None else ("python",)


def resolve_backend(backend: str | None) -> str:
    """Resolve a backend request to a concrete ``"python"`` or ``"numpy"``.

    ``None`` (the default everywhere) consults the :data:`ENV_BACKEND`
    environment variable and falls back to ``"auto"``; ``"auto"`` selects
    ``"numpy"`` when importable and ``"python"`` otherwise.  An explicit
    ``"numpy"`` without an importable numpy raises :class:`RuntimeError`
    (the caller asked for something the machine cannot do — silently
    degrading would make benchmarks lie); unknown names raise
    :class:`ValueError`.
    """
    if backend is None:
        backend = os.environ.get(ENV_BACKEND, "").strip() or "auto"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown simulation backend {backend!r}; expected one of "
            f"{', '.join(BACKENDS)} (or None to consult ${ENV_BACKEND})"
        )
    if backend == "auto":
        return "numpy" if numpy_or_none() is not None else "python"
    if backend == "numpy":
        _numpy()  # fail fast with the explanatory RuntimeError
    return backend


# -- pre-sorted arrival arrays --------------------------------------------------


def sorted_stream(jobs: Iterable["Job"]) -> tuple[list["Job"], list[float], bool]:
    """Sort a job stream by ``(submit_time, job_id)`` via ``np.lexsort``.

    Returns ``(stream, submit_times, ids_unique)``: the sorted job list,
    the matching submission instants as plain Python floats (the merged
    feed compares them against heap event times), and whether the ids were
    unique — ``False`` sends the caller to the scalar
    :func:`~repro.core.job.validate_stream` for the canonical error.

    The permutation equals the oracle's ``sorted(key=(submit_time,
    job_id))`` because unique ids make the key total; with duplicate ids
    the caller raises before the order could matter.
    """
    np = _numpy()
    jobs = list(jobs)
    n = len(jobs)
    if n == 0:
        return [], [], True
    submit = np.fromiter((job.submit_time for job in jobs), dtype=np.float64, count=n)
    ids = np.fromiter((job.job_id for job in jobs), dtype=np.int64, count=n)
    order = np.lexsort((ids, submit))
    stream = [jobs[i] for i in order]
    times = submit[order].tolist()
    unique = int(np.unique(ids).size) == n
    return stream, times, unique


_SUBMISSION = EventKind.SUBMISSION


class MergedEventFeed:
    """Merge a pre-sorted arrival array with the residual event heap.

    Presents the same ``peek_time`` / ``pop_next`` / truthiness interface
    as :class:`~repro.core.events.EventQueue`, but the N original
    submissions never enter the heap: they are consumed from the sorted
    arrays by a cursor.  Arrivals carry the virtual sequence numbers
    ``0..N-1`` — strictly below every sequence the queue (constructed with
    ``start_sequence=N``) will ever hand out — so the merge comparison
    reduces to: at equal times, an arrival precedes every heap event whose
    kind is ``SUBMISSION`` or later, and follows completions and node
    events, exactly the ``(time, kind, sequence)`` total order of the
    oracle's heap.
    """

    __slots__ = ("_events", "_jobs", "_times", "_idx", "_n")

    def __init__(
        self, events: EventQueue, jobs: Sequence["Job"], times: Sequence[float]
    ) -> None:
        if len(jobs) != len(times):
            raise ValueError("arrival jobs and times disagree on length")
        self._events = events
        self._jobs = jobs
        self._times = times
        self._idx = 0
        self._n = len(jobs)

    def __bool__(self) -> bool:
        return self._idx < self._n or bool(self._events._heap)

    def __len__(self) -> int:
        return (self._n - self._idx) + len(self._events._heap)

    def peek_time(self) -> float:
        """Earliest pending instant across both sources."""
        heap = self._events._heap
        if self._idx >= self._n:
            return heap[0].time
        arrival = self._times[self._idx]
        if not heap:
            return arrival
        event = heap[0].time
        return arrival if arrival <= event else event

    def pop_next(self) -> tuple[EventKind, Any]:
        """Remove and return the earliest ``(kind, payload)`` pair."""
        heap = self._events._heap
        idx = self._idx
        if idx < self._n:
            if not heap:
                self._idx = idx + 1
                return _SUBMISSION, self._jobs[idx]
            arrival = self._times[idx]
            head = heap[0]
            if arrival < head.time or (
                arrival == head.time and head.kind >= _SUBMISSION
            ):
                self._idx = idx + 1
                return _SUBMISSION, self._jobs[idx]
        event = heappop(heap)
        return event.kind, event.payload

    # -- run extraction (the simulator's event-coalescing fast paths) ----------

    #: Shared empty-run result: failed extraction probes happen once per
    #: uncoalesced decision, so returning a constant keeps them allocation-free.
    _EMPTY_RUN: "tuple[list, list, int]" = ([], [], 0)

    @property
    def arrivals_exhausted(self) -> bool:
        """True once every original arrival has been consumed — from then on
        the feed is exactly the residual heap."""
        return self._idx >= self._n

    def next_arrival_time(self) -> float | None:
        """Instant of the next pending *original* arrival (``None`` if spent)."""
        return self._times[self._idx] if self._idx < self._n else None

    def take_blocked_arrivals(
        self, free_nodes: int
    ) -> tuple[list["Job"], list[float], int]:
        """Consume the maximal run of arrivals that cannot possibly start.

        A pending original arrival belongs to the run when it occurs
        strictly before the earliest heap event (so nothing else happens in
        between — in particular no completion frees nodes) *and* requests
        more than ``free_nodes`` nodes (so it can neither start nor, free
        nodes being unchanged throughout the run, enable any other queued
        job under a discipline guaranteeing
        :attr:`~repro.core.scheduler.CoalescingCaps.blocked_arrivals`).

        Returns ``(jobs, times, closed_instants)``.  ``closed_instants``
        counts the distinct instants the run closes; when the run stops at
        a same-instant arrival that *does* fit, that last instant stays
        open — the per-event loop finishes its batch and owns its decision
        point.
        """
        heap = self._events._heap
        bound = heap[0].time if heap else None
        times = self._times
        jobs = self._jobs
        i = self._idx
        n = self._n
        start = i
        closed = 0
        last: float | None = None
        while i < n:
            t = times[i]
            if bound is not None and t >= bound:
                break
            if jobs[i].nodes <= free_nodes:
                if t == last:
                    closed -= 1
                break
            if t != last:
                closed += 1
                last = t
            i += 1
        if i == start:
            return self._EMPTY_RUN
        self._idx = i
        return jobs[start:i], times[start:i], closed

    def take_idle_starts(self, free_nodes: int) -> tuple[list["Job"], list[float], int]:
        """Consume the maximal run of arrival instants that start instantly.

        With an empty wait queue and a scheduler guaranteeing
        :attr:`~repro.core.scheduler.CoalescingCaps.idle_starts`, a batch
        of arrivals that jointly fits the free nodes starts immediately and
        leaves the queue empty again.  This consumes whole instants only
        (never part of a batch), each strictly before the earliest heap
        event, while the cumulative node demand fits ``free_nodes``.
        Returns ``(jobs, times, instants)`` — all consumed instants are
        closed by construction.
        """
        heap = self._events._heap
        bound = heap[0].time if heap else None
        times = self._times
        jobs = self._jobs
        i = self._idx
        n = self._n
        start = i
        free = free_nodes
        instants = 0
        while i < n:
            t = times[i]
            if bound is not None and t >= bound:
                break
            j = i
            need = 0
            while j < n and times[j] == t:
                need += jobs[j].nodes
                if need > free:
                    break
                j += 1
            if j < n and times[j] == t:
                break  # instant does not jointly fit: leave it whole
            free -= need
            i = j
            instants += 1
            if free == 0:
                break
        self._idx = i
        return jobs[start:i], times[start:i], instants


# -- batched first-fit over canonical profile steps ----------------------------


def earliest_start_batch(
    profile: "AvailabilityProfile",
    requests: Sequence[tuple[int, float]],
    after: float | None = None,
) -> list[float]:
    """Vectorised first-fit starts for many ``(nodes, duration)`` requests.

    Bit-identical to the scalar
    :meth:`~repro.core.profile.AvailabilityProfile.earliest_start_batch`
    oracle.  The construction mirrors the scalar kernel's invariants:

    * ``next_false[i]`` — the first segment at or after ``i`` that cannot
      host the request — is a reversed ``np.minimum.accumulate`` over the
      infeasible indices (the batched generalisation of the block-max
      skip index);
    * a feasible segment ``i`` answers the query iff ``next_false[i] == n``
      (the window runs into the eternally-free tail) or
      ``times[next_false[i]] >= candidate_i + duration`` — the exact test
      the scalar scan performs, in the same float arithmetic;
    * within one feasible run the candidate start is non-decreasing while
      ``next_false`` is constant, so if the run's first segment fails the
      whole run fails — the first valid index overall is therefore the
      same segment the scalar jump-scan lands on.
    """
    np = _numpy()
    k = len(requests)
    if k == 0:
        return []
    times_list = profile._times
    total = profile.total_nodes
    nodes = np.fromiter((r[0] for r in requests), dtype=np.int64, count=k)
    if nodes.max() > total:
        bad = int(nodes[int(np.argmax(nodes > total))])
        raise ValueError(f"{bad} nodes never fit a {total}-node machine")
    durations = np.fromiter((r[1] for r in requests), dtype=np.float64, count=k)
    times = np.asarray(times_list, dtype=np.float64)
    free = np.asarray(profile._free, dtype=np.int64)
    n = times.size
    origin = times_list[0]
    start_at = origin if after is None or after < origin else after
    first_idx = bisect_right(times_list, start_at) - 1

    feasible = free[None, :] >= nodes[:, None]
    indices = np.arange(n)
    next_false = np.minimum.accumulate(
        np.where(feasible, n, indices[None, :])[:, ::-1], axis=1
    )[:, ::-1]
    candidate = np.maximum(times, start_at)
    times_ext = np.append(times, np.inf)
    fits = times_ext[next_false] >= candidate[None, :] + durations[:, None]
    valid = feasible & fits
    if first_idx > 0:
        valid[:, :first_idx] = False
    first = np.argmax(valid, axis=1)
    return np.maximum(times[first], start_at).tolist()


# -- columnar result buffers and exact metric kernels --------------------------


class ResultColumns:
    """Schedule records as parallel numeric columns, in completion order.

    The numpy backend appends one row per finished record exactly where
    the oracle appends its :class:`~repro.core.schedule.ScheduledJob`, so
    row ``i`` of the columns and item ``i`` of the schedule describe the
    same record — which is what makes the column reductions below equal
    the scalar objective loops term for term.  ``area`` stores
    ``job.area`` (``nodes * runtime``) computed in Python at append time,
    the default AWRT weight.
    """

    __slots__ = ("submit", "start", "end", "area")

    def __init__(self) -> None:
        self.submit = array("d")
        self.start = array("d")
        self.end = array("d")
        self.area = array("d")

    def __len__(self) -> int:
        return len(self.end)

    def append(self, item: "ScheduledJob") -> None:
        job = item.job
        self.submit.append(job.submit_time)
        self.start.append(item.start_time)
        self.end.append(item.end_time)
        self.area.append(job.area)

    def extend(self, items: Sequence["ScheduledJob"]) -> None:
        """Append a run of records (the completion-drain fast path)."""
        submit = self.submit.append
        start = self.start.append
        end = self.end.append
        area = self.area.append
        for item in items:
            job = item.job
            submit(job.submit_time)
            start(item.start_time)
            end(item.end_time)
            area(job.area)

    @classmethod
    def from_schedule(cls, schedule: "Schedule | Iterable[ScheduledJob]") -> "ResultColumns":
        """Columns of an already-built schedule (analysis over the oracle)."""
        cols = cls()
        for item in schedule:
            cols.append(item)
        return cols

    def views(self) -> dict[str, Any]:
        """Zero-copy ``float64`` views of the columns (requires numpy)."""
        np = _numpy()
        return {
            name: np.frombuffer(getattr(self, name), dtype=np.float64)
            for name in self.__slots__
        }


def exact_sum(values: Any) -> float:
    """Left-to-right IEEE sum of a float64 array — Python ``sum()`` bits.

    Implemented as the last element of ``np.add.accumulate``, which is a
    strictly sequential reduction; ``np.sum``'s pairwise re-association
    would differ in the final ulps and is banned from every objective.
    """
    np = _numpy()
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return 0.0
    return float(np.add.accumulate(values)[-1])


def average_response_time_columns(columns: ResultColumns) -> float:
    """ART over columns; equals ``objectives.average_response_time`` exactly."""
    n = len(columns)
    if n == 0:
        return 0.0
    np = _numpy()
    end = np.frombuffer(columns.end, dtype=np.float64)
    submit = np.frombuffer(columns.submit, dtype=np.float64)
    return exact_sum(end - submit) / n


def average_weighted_response_time_columns(columns: ResultColumns) -> float:
    """AWRT (area weights) over columns; equals the scalar loop exactly."""
    n = len(columns)
    if n == 0:
        return 0.0
    np = _numpy()
    end = np.frombuffer(columns.end, dtype=np.float64)
    submit = np.frombuffer(columns.submit, dtype=np.float64)
    area = np.frombuffer(columns.area, dtype=np.float64)
    return exact_sum((end - submit) * area) / n

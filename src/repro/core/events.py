"""Event types and the event queue of the discrete-event engine.

The scheduling system of the paper reacts to exactly two external stimuli:
the arrival of job submission data ("a stream of job submission data",
Section 2) and the completion of a running job (which may differ from the
projected completion because estimates are upper limits).  Internally we add
a ``TIMER`` event kind so schedulers can request wake-ups (PSRS's wide-job
patience, policy rules like Example 4's 10am class) without polling, and the
``NODE_UP`` / ``NODE_DOWN`` pair through which a
:class:`~repro.failures.trace.FailureTrace` feeds "the sudden failure of a
hardware component" (Section 2) into the loop.

Events are processed in ``(time, priority, sequence)`` order.  Completions
are processed *before* submissions at the same instant — a scheduler seeing
a new job should already know about every node freed at that time — and the
monotone ``sequence`` counter makes the order total and deterministic.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Any


class EventKind(enum.IntEnum):
    """Kinds of simulator events; the integer value is the same-time priority.

    Completions come first so everything at one instant sees the freed
    nodes.  Node repairs apply before node failures (a simultaneous
    repair+failure nets out without a transient negative capacity), and
    both precede submissions — a job arriving at a failure instant sees
    the degraded machine.  Cancellations process after submissions at the
    same instant (a job submitted and cancelled in the same second is
    first seen, then withdrawn), and before timers.
    """

    COMPLETION = 0
    NODE_UP = 1
    NODE_DOWN = 2
    SUBMISSION = 3
    CANCELLATION = 4
    TIMER = 5


@dataclass(frozen=True, slots=True, order=True)
class Event:
    """A single simulator event.

    Ordering is by time, then kind priority, then insertion sequence, so a
    heap of events pops deterministically.  ``payload`` carries the job for
    submission/completion events and an arbitrary token for timers.
    """

    time: float
    kind: EventKind
    sequence: int
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A binary-heap priority queue of :class:`Event` objects.

    ``start_sequence`` offsets the insertion counter: the numpy backend
    keeps the N original submissions *outside* the heap (pre-sorted
    arrival arrays merged by :class:`repro.core.vector.MergedEventFeed`)
    and reserves the virtual sequences ``0..N-1`` for them, so every
    event actually pushed here — cancellations, completions, rerun
    submissions — orders after a same-time, same-kind arrival exactly as
    it would have in the oracle's all-heap ordering.
    """

    __slots__ = ("_heap", "_sequence")

    def __init__(self, start_sequence: int = 0) -> None:
        self._heap: list[Event] = []
        self._sequence = start_sequence

    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event and return it."""
        event = Event(time, kind, self._sequence, payload)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event.  Raises ``IndexError`` if empty."""
        return heapq.heappop(self._heap)

    def peek(self) -> Event:
        """Return the earliest event without removing it."""
        return self._heap[0]

    def peek_time(self) -> float:
        """Time of the earliest event.  Raises ``IndexError`` if empty."""
        return self._heap[0].time

    def pop_next(self) -> tuple[EventKind, Any]:
        """Remove the earliest event, returning its ``(kind, payload)``.

        The simulator's dispatch interface, shared with
        :class:`repro.core.vector.MergedEventFeed` so both backends drive
        one event loop.
        """
        event = heapq.heappop(self._heap)
        return event.kind, event.payload

    def take_completion_run(
        self, bound: float | None
    ) -> tuple[list[Event], int]:
        """Pop the maximal run of completion events below ``bound``.

        The run-extraction primitive of the simulator's empty-queue drain
        fast path: consumes consecutive ``COMPLETION`` events whose times
        are strictly before ``bound`` (the next pending arrival instant;
        ``None`` means unbounded) and returns ``(events, closed_instants)``.

        ``closed_instants`` counts the distinct instants in the run that
        the run itself *closes* — instants at which no further event is
        pending.  When the run stops because a non-completion heap event
        shares the last consumed instant, that instant stays open (the
        caller's per-event loop will finish its batch and count its
        decision point), so it is excluded from the count.  Completions at
        exactly ``bound`` are never consumed: they belong to the arrival's
        batch.
        """
        heap = self._heap
        out: list[Event] = []
        closed = 0
        last: float | None = None
        while heap:
            event = heap[0]
            if event.kind is not EventKind.COMPLETION:
                if last is not None and event.time == last:
                    closed -= 1
                break
            if bound is not None and event.time >= bound:
                break
            heapq.heappop(heap)
            if event.time != last:
                closed += 1
                last = event.time
            out.append(event)
        return out, closed

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

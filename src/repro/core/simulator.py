"""The discrete-event simulator driving an on-line scheduler.

The simulator owns the clock, the event queue, the machine, the table of
running jobs, and the incremental
:class:`~repro.core.state.SchedulingState` (persistent availability
profile + queue statistics) that schedulers read through the context.  The
scheduler owns the wait queue and the policy.  Per decision point (a batch
of events at one instant) the flow is:

1. apply every completion at this instant (release nodes, notify scheduler),
2. apply every submission at this instant (notify scheduler),
3. ask the scheduler which queued jobs to start now, allocate them, and
   push their completion events.

Completions are applied before submissions at equal times (see
:mod:`repro.core.events`), so a newly submitted job sees every node freed at
its arrival instant — the behaviour of a real batch system where the
resource manager processes its event queue in order.

Jobs whose actual runtime exceeds the user limit can optionally be cancelled
at the limit (``cancel_over_limit=True``), matching policy rule 2 of
Example 5 ("If the execution of a job exceeds this upper limit, the job may
be cancelled").  The paper's evaluation does not exercise cancellation (the
CTC trace records realised runtimes), so the default is off.

Node failures (Section 2's "sudden failure of a hardware component") enter
the loop as ``NODE_DOWN``/``NODE_UP`` events from a
:class:`~repro.failures.trace.FailureTrace`.  A failure first consumes free
nodes; when those do not cover it, the simulator kills running jobs —
youngest first, so the least work is destroyed — and hands each casualty to
the run's :class:`~repro.failures.recovery.RecoveryPolicy`, which either
abandons it (the partial execution becomes a cancelled record) or requeues
a rerun.  The outage itself becomes a finite capacity reservation in the
scheduling state (the repair ETA is known the moment the node goes down),
so backfilling disciplines plan around it like any other commitment.
"""

from __future__ import annotations

import time
import warnings
from heapq import heappop
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.core import vector
from repro.core.events import EventKind, EventQueue
from repro.core.job import Job, validate_stream
from repro.core.machine import Machine
from repro.core.schedule import Schedule, ScheduledJob
from repro.core.scheduler import RunningJob, Scheduler, SchedulerContext
from repro.core.state import SchedulingState, verify_every_from_env
from repro.core.vector import resolve_backend

if TYPE_CHECKING:  # pragma: no cover - typing only (failures imports core)
    from repro.failures.recovery import RecoveryPolicy
    from repro.failures.trace import FailureTrace


@dataclass(frozen=True, slots=True)
class Cancellation:
    """A user withdrawing a job at ``time`` (failure-injection input).

    A queued job disappears from the wait queue; a running job is killed
    (its partial execution appears in the schedule with ``cancelled=True``).
    Cancellations of already-completed jobs are ignored — the realistic
    race of a user cancelling just as the job finishes.
    """

    time: float
    job_id: int


#: Sentinel distinguishing "keyword not passed" from every real value in the
#: deprecated keyword shims below.
_UNSET: Any = object()


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """How a :class:`Simulator` runs — everything that is not an input.

    Collapses the former keyword tail of ``Simulator(...)`` into one
    picklable bundle (the old keywords survive as deprecated shims).  The
    fields change *how* a result is computed, never *what* it is: every
    backend/state combination is bit-identical (the equivalence suites'
    contract), which is why none of them enters a cache fingerprint.

    ``backend`` selects the simulation kernels: ``"python"`` (the oracle),
    ``"numpy"`` (the vectorised fast path of :mod:`repro.core.vector`),
    ``"auto"`` (numpy when importable, else python) or ``None`` (the
    default — consult the ``REPRO_BACKEND`` environment variable, then
    auto).  The remaining fields keep their historical meanings (see the
    :class:`Simulator` docstring).
    """

    backend: str | None = None
    cancel_over_limit: bool = False
    collect_trace: bool = False
    incremental_state: bool = True
    verify_state: int | None = None
    #: Collect the fine-grained per-phase wall-clock breakdown
    #: (``SimulationResult.phase_seconds`` gains ``events``/``commit``/
    #: ``coalesce``/``other`` entries).  Off by default: the extra clock
    #: reads would tax the hot loop the breakdown exists to explain.
    profile_phases: bool = False


@dataclass(frozen=True, slots=True)
class ScenarioInputs:
    """Fault-injection inputs of one run, bundled.

    Collapses the former keyword tail of :meth:`Simulator.run` —
    ``cancellations`` (user withdrawals), ``failures`` (a
    :class:`~repro.failures.trace.FailureTrace`) and ``recovery`` (policy
    object or spec string) — into one object that can be built once and
    reused across runs, regimes and backends.
    """

    cancellations: Sequence[Cancellation] = ()
    failures: "FailureTrace | None" = None
    recovery: "RecoveryPolicy | str | None" = None


@dataclass(slots=True)
class SimulationResult:
    """Outcome of one simulation run."""

    schedule: Schedule
    #: Number of decision points at which the scheduler was invoked.
    decision_points: int
    #: Peak length of the scheduler's wait queue observed at decision points.
    max_queue_length: int
    #: Final simulated time (== schedule makespan unless the stream was empty).
    end_time: float
    #: Ids of jobs cancelled while still queued (they never ran and do not
    #: appear in the schedule).
    cancelled_queued: tuple[int, ...] = ()
    #: Ids of jobs killed while running (partial execution in the schedule).
    killed_running: tuple[int, ...] = ()
    #: Wall-clock seconds spent inside ``select_jobs`` across all decision
    #: points — the per-decision cost of the scheduling algorithm proper.
    decision_time: float = 0.0
    #: Deltas applied to / snapshots taken from the incremental scheduling
    #: state (both 0 when the rebuild fallback ran).
    profile_deltas: int = 0
    profile_snapshots: int = 0
    #: Ids of jobs killed by node failures, in kill order.  A job recovered
    #: and killed again appears once per kill; abandoned kills also appear
    #: in the schedule as cancelled records.
    failure_killed: tuple[int, ...] = ()
    #: Partial attempts of jobs that were killed by a failure and later
    #: recovered (resubmitted / restarted).  These records are *not* part of
    #: ``schedule`` — there the job appears once, with its final attempt —
    #: but they occupy the machine and count towards capacity validation.
    interrupted: tuple[ScheduledJob, ...] = ()
    #: Node-seconds of capacity removed by the failure trace (down × nodes).
    lost_node_seconds: float = 0.0
    #: Node-seconds of job execution destroyed by failures: work done in
    #: killed attempts that no checkpoint preserved, plus restart overheads.
    wasted_node_seconds: float = 0.0
    #: Total seconds failure-killed jobs spent between the kill and the
    #: start of their recovery attempt (0 for abandoned jobs).
    requeue_delay: float = 0.0
    #: Columnar numeric view of ``schedule`` (submit/start/end/area arrays
    #: in completion order), accumulated by the numpy backend so objectives
    #: reduce vectorised; ``None`` under the python backend.  Excluded from
    #: equality — the backends' results compare equal without it.
    columns: "vector.ResultColumns | None" = field(
        default=None, compare=False, repr=False
    )
    #: Wall-clock seconds by simulator phase.  Always carries ``total``
    #: (whole run) and ``decide`` (== ``decision_time``); with
    #: ``SimulationConfig.profile_phases`` it adds ``events`` (per-event
    #: dispatch), ``commit`` (start/timer/stats bookkeeping after each
    #: decision), ``coalesce`` (bulk fast paths) and ``other`` (the
    #: remainder).  Excluded from equality — timings never affect results.
    phase_seconds: dict = field(default_factory=dict, compare=False, repr=False)
    #: Event-coalescing fast-path counters (all zero when coalescing never
    #: engaged — the python oracle, traced runs, or incapable schedulers):
    #: runs/jobs per path plus the decision points they bulk-advanced.
    coalesced: dict = field(default_factory=dict, compare=False, repr=False)

    @property
    def job_count(self) -> int:
        return len(self.schedule)

    @property
    def interrupted_jobs(self) -> int:
        """Distinct jobs that lost at least one attempt to a node failure."""
        return len(set(self.failure_killed))

    @classmethod
    def empty(cls) -> "SimulationResult":
        """The result of scheduling nothing (degenerate partition buckets).

        :meth:`Simulator.run` refuses empty workloads; callers that slice a
        stream and may produce empty slices build this record instead.
        """
        return cls(
            schedule=Schedule(()),
            decision_points=0,
            max_queue_length=0,
            end_time=0.0,
        )


@dataclass(slots=True)
class _Trace:
    """Optional per-run instrumentation collected by the simulator."""

    queue_lengths: list[tuple[float, int]] = field(default_factory=list)
    free_nodes: list[tuple[float, int]] = field(default_factory=list)


class Simulator:
    """Run a job stream through a scheduler on a machine.

    Parameters
    ----------
    machine:
        The target machine.  A fresh simulation resets it.
    scheduler:
        Any :class:`~repro.core.scheduler.Scheduler`.
    config:
        A :class:`SimulationConfig`; ``None`` means all defaults.  Its
        fields keep their historical meanings:

        * ``backend`` — simulation kernels (``"python"`` oracle /
          ``"numpy"`` fast path / ``"auto"``; ``None`` consults
          ``REPRO_BACKEND`` then auto-selects).  Resolved once at
          construction, exposed as :attr:`backend`; both backends are
          bit-identical (``tests/test_vector_equivalence.py``).
        * ``cancel_over_limit`` — kill jobs at their estimate when the
          actual runtime exceeds it (recorded ``cancelled=True``).
        * ``collect_trace`` — record queue length and free nodes at every
          decision point (for the analysis plots); adds memory overhead.
        * ``incremental_state`` — maintain a
          :class:`~repro.core.state.SchedulingState` across events
          (default); ``False`` selects the reference rebuild-per-decision
          path — same schedules, bit for bit (the equivalence oracle).
        * ``verify_state`` — cross-check the incremental state against a
          fresh rebuild every N-th snapshot (0 disables; ``None`` reads
          ``REPRO_VERIFY_STATE``).
    backend:
        Convenience override for ``config.backend`` (the one config field
        callers flip routinely); not deprecated.
    cancel_over_limit, collect_trace, incremental_state, verify_state:
        Deprecated keyword shims folding into ``config``; passing any of
        them emits a :class:`DeprecationWarning`.
    """

    def __init__(
        self,
        machine: Machine,
        scheduler: Scheduler,
        config: SimulationConfig | None = None,
        *,
        backend: str | None = None,
        cancel_over_limit: bool = _UNSET,
        collect_trace: bool = _UNSET,
        incremental_state: bool = _UNSET,
        verify_state: int | None = _UNSET,
    ) -> None:
        legacy = {
            name: value
            for name, value in (
                ("cancel_over_limit", cancel_over_limit),
                ("collect_trace", collect_trace),
                ("incremental_state", incremental_state),
                ("verify_state", verify_state),
            )
            if value is not _UNSET
        }
        if config is None:
            config = SimulationConfig()
        if legacy:
            warnings.warn(
                f"Simulator keyword(s) {', '.join(sorted(legacy))} are "
                "deprecated; pass SimulationConfig(...) as the config "
                "argument instead",
                DeprecationWarning,
                stacklevel=2,
            )
            config = replace(config, **legacy)
        if backend is not None:
            config = replace(config, backend=backend)
        self.machine = machine
        self.scheduler = scheduler
        self.config = config
        #: The concrete backend this simulator runs on ("python"/"numpy"),
        #: resolved once (environment consulted, auto-fallback applied).
        self.backend = resolve_backend(config.backend)
        self.trace = _Trace() if config.collect_trace else None

    # Read-only views of the config fields, for callers that inspected the
    # former instance attributes.
    @property
    def cancel_over_limit(self) -> bool:
        return self.config.cancel_over_limit

    @property
    def collect_trace(self) -> bool:
        return self.config.collect_trace

    @property
    def incremental_state(self) -> bool:
        return self.config.incremental_state

    @property
    def verify_state(self) -> int | None:
        return self.config.verify_state

    def run(
        self,
        jobs: Iterable[Job],
        cancellations: Sequence[Cancellation] = _UNSET,
        *,
        failures: "FailureTrace | None" = _UNSET,
        recovery: "RecoveryPolicy | str | None" = _UNSET,
        scenario: ScenarioInputs | None = None,
    ) -> SimulationResult:
        """Simulate the whole stream and return the final schedule.

        ``scenario`` bundles the fault-injection inputs
        (:class:`ScenarioInputs`) — or a compilable
        :class:`~repro.scenarios.spec.ScenarioSpec`, in which case the
        spec is compiled against ``jobs`` first: ScenarioInputs is the
        *compiled target* of the scenario algebra, and the compiled
        stream replaces ``jobs`` (arrival components may rewrite it):

        * ``cancellations`` injects user withdrawals; each must reference
          a job in the stream and fire no earlier than its submission.
        * ``failures`` injects a node failure/repair trace
          (:class:`~repro.failures.trace.FailureTrace`); ``recovery``
          decides what happens to jobs killed by a failure — a
          :class:`~repro.failures.recovery.RecoveryPolicy`, a spec string
          such as ``"abandon"`` or
          ``"checkpoint:interval=3600,overhead=60"``, or ``None`` for the
          default full resubmission.

        The loose ``cancellations``/``failures``/``recovery`` keywords are
        deprecated shims for the same inputs.
        """
        legacy = {
            name: value
            for name, value in (
                ("cancellations", cancellations),
                ("failures", failures),
                ("recovery", recovery),
            )
            if value is not _UNSET
        }
        if legacy:
            warnings.warn(
                f"Simulator.run keyword(s) {', '.join(sorted(legacy))} are "
                "deprecated; pass ScenarioInputs(...) as scenario= instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if scenario is not None:
                raise TypeError(
                    "pass either scenario=ScenarioInputs(...) or the "
                    f"deprecated keyword(s) {', '.join(sorted(legacy))}, "
                    "not both"
                )
            scenario = ScenarioInputs(**legacy)
        cancel_over_limit = self.cancel_over_limit
        if scenario is None:
            scenario = ScenarioInputs()
        elif not isinstance(scenario, ScenarioInputs):
            # A ScenarioSpec (or anything spec-shaped): compile it against
            # the stream.  Duck-typed so the core never imports the
            # scenarios package.
            compile_spec = getattr(scenario, "compile", None)
            if compile_spec is None:
                raise TypeError(
                    "scenario must be ScenarioInputs or a compilable "
                    f"ScenarioSpec, got {type(scenario).__name__}"
                )
            compiled = compile_spec(jobs)
            jobs = compiled.jobs
            scenario = compiled.inputs
            cancel_over_limit = cancel_over_limit or compiled.cancel_over_limit
        cancellations = scenario.cancellations
        failures = scenario.failures
        recovery = scenario.recovery

        backend = self.backend
        stream: Sequence[Job]
        if backend == "numpy":
            # Pre-sorted arrival arrays: one lexsort instead of N heap
            # pushes; duplicate ids fall back to the scalar validator for
            # the canonical error.
            stream, arrival_times, ids_unique = vector.sorted_stream(jobs)
        else:
            stream = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
        if not stream:
            raise ValueError(
                "cannot simulate an empty workload: no jobs, no events, no "
                "schedule — use SimulationResult.empty() if a degenerate "
                "stream is expected"
            )
        if backend == "numpy":
            if not ids_unique:
                validate_stream(list(stream))
        else:
            validate_stream(list(stream))
        by_id = {job.job_id: job for job in stream}
        for job in stream:
            if not self.machine.can_ever_fit(job):
                raise ValueError(
                    f"job {job.job_id} requests {job.nodes} nodes but the machine "
                    f"has only {self.machine.total_nodes}; filter the workload first "
                    "(see repro.workloads.transforms.cap_nodes)"
                )
        for cancel in cancellations:
            if cancel.job_id not in by_id:
                raise ValueError(f"cancellation references unknown job {cancel.job_id}")
            if cancel.time < by_id[cancel.job_id].submit_time:
                raise ValueError(
                    f"job {cancel.job_id} cancelled at {cancel.time} before its "
                    f"submission at {by_id[cancel.job_id].submit_time}"
                )
        policy: "RecoveryPolicy | None" = None
        if failures is not None and failures:
            from repro.failures.recovery import ResubmitPolicy, recovery_from_spec

            failures.validate_for(self.machine.total_nodes)
            policy = (
                ResubmitPolicy() if recovery is None else recovery_from_spec(recovery)
            )
        else:
            failures = None

        self.machine.reset()
        self.scheduler.reset()
        # The numpy backend keeps the N original submissions out of the
        # heap entirely: the sorted arrival arrays hold the virtual
        # sequences 0..N-1 and the queue counter starts above them, so the
        # merged (time, kind, sequence) order equals the oracle's heap
        # order event for event.
        events = EventQueue(
            start_sequence=len(stream) if backend == "numpy" else 0
        )
        feed: "EventQueue | vector.MergedEventFeed"
        columns: "vector.ResultColumns | None" = None
        if backend == "numpy":
            feed = vector.MergedEventFeed(events, stream, arrival_times)
            columns = vector.ResultColumns()
        else:
            feed = events
        pending_timers: set[float] = set()
        running: dict[int, RunningJob] = {}
        state: SchedulingState | None = None
        if self.config.incremental_state:
            verify_every = (
                self.config.verify_state
                if self.config.verify_state is not None
                else verify_every_from_env()
            )
            state = SchedulingState(
                self.machine.total_nodes,
                verify_every=verify_every,
                backend=backend,
            )
        active_outages: list[tuple[float, int]] = []
        ctx = SchedulerContext(
            self.machine, running, state=state, capacity_outages=active_outages
        )
        ctx.vectorize = backend == "numpy"
        completed: list[ScheduledJob] = []
        decision_points = 0
        decision_time = 0.0
        max_queue = 0
        now = 0.0

        if backend != "numpy":
            for job in stream:
                events.push(job.submit_time, EventKind.SUBMISSION, job)
        for cancel in cancellations:
            events.push(cancel.time, EventKind.CANCELLATION, cancel.job_id)
        if failures is not None:
            for fail in failures:
                events.push(fail.down_time, EventKind.NODE_DOWN, fail)
                events.push(fail.up_time, EventKind.NODE_UP, fail)
        started_ids: set[int] = set()
        finished_ids: set[int] = set()
        cancelled_queued: list[int] = []
        killed_running: list[int] = []
        #: Latest submitted version of each job (rerun attempts replace the
        #: original here; ``by_id`` keeps the original submissions, which is
        #: what recovery policies reason about).
        current: dict[int, Job] = {}
        failure_killed: list[int] = []
        interrupted: list[ScheduledJob] = []
        #: job_id -> (runtime seconds safely checkpointed, restart overhead
        #: baked into the current attempt's runtime) — the recovery policy's
        #: cross-attempt memory.
        recovery_state: dict[int, tuple[float, float]] = {}
        #: job_id -> kill time, for jobs awaiting their recovery attempt.
        killed_at: dict[int, float] = {}
        resubmit_pending: set[int] = set()
        resubmit_cancelled: set[int] = set()
        wasted_node_seconds = 0.0
        requeue_delay = 0.0

        # -- event coalescing (see docs/architecture.md) -----------------------
        # Bulk-advance maximal runs of events that provably need no
        # inter-event scheduler decision.  The scheduler opts in through
        # its capability flags; only the numpy backend coalesces (the
        # python oracle keeps the per-event loop, which is what the
        # equivalence suites compare against), and tracing forces the
        # per-event loop so the trace stays complete.
        caps = self.scheduler.coalescing_caps()
        coalesce = (
            caps if backend == "numpy" and self.trace is None and caps else None
        )
        # A "pure" run has no cancellations and no failures: once the
        # original arrivals are spent, the heap can only ever hold live
        # COMPLETION events (no reruns, no kills, no timers under the
        # capability contract) — licence for the backlogged-drain subloop
        # below to skip the generic dispatch entirely.
        pure_drain = coalesce is not None and policy is None and not cancellations
        coalesced = {
            "blocked_arrival_runs": 0,
            "blocked_arrival_jobs": 0,
            "idle_start_runs": 0,
            "idle_start_jobs": 0,
            "drain_runs": 0,
            "drained_completions": 0,
            "decision_points": 0,
        }
        profile_phases = self.config.profile_phases
        # Hot-loop bindings: the loop below runs a few times per job, so the
        # repeated attribute walks are measurable at bench scale.  Every
        # hoisted object is construction-stable for the whole run.
        machine = self.machine
        scheduler = self.scheduler
        select_jobs = scheduler.select_jobs
        feed_peek = feed.peek_time
        feed_pop = feed.pop_next
        perf_counter = time.perf_counter
        run_clock_start = perf_counter()
        coalesce_seconds = 0.0
        events_seconds = 0.0
        commit_seconds = 0.0

        while feed:
            if coalesce is not None:
                if profile_phases:
                    t_coalesce = perf_counter()
                pending_now = scheduler.pending_count
                if pending_now:
                    if pure_drain and feed.arrivals_exhausted:
                        # Backlogged drain: arrivals spent, queue non-empty,
                        # pure scenario.  Every heap event is a live
                        # completion and every instant is a decision point,
                        # so run the tight release→decide→commit loop with
                        # the generic peek/dispatch machinery (and the
                        # cancellation/failure bookkeeping a pure run never
                        # reads) stripped out.  Identical decisions: each
                        # iteration is exactly the generic body for a
                        # completions-only batch under the capability
                        # contract (no-op ``on_complete``, no wakeups, and
                        # submissions — the only way the queue grows — never
                        # happen, so the ``max_queue`` probe is dead too).
                        if profile_phases:
                            coalesce_seconds += perf_counter() - t_coalesce
                        heap = events._heap
                        pending = pending_now
                        machine_release = machine.release
                        machine_allocate = machine.allocate
                        events_push = events.push
                        completed_append = completed.append
                        columns_append = columns.append
                        if state is not None:
                            state_on_release = state.on_release
                            note_dequeued = state.note_dequeued
                            state_on_start = state.on_start
                            state_advance = state.advance
                        else:
                            state_on_release = None
                            state_advance = None
                        while heap and pending:
                            if profile_phases:
                                t_events = perf_counter()
                            event = heappop(heap)
                            t = event.time
                            item = event.payload
                            jid = item.job.job_id
                            machine_release(jid)
                            del running[jid]
                            if state_on_release is not None:
                                state_on_release(jid)
                            completed_append(item)
                            columns_append(item)
                            while heap and heap[0].time == t:
                                item = heappop(heap).payload
                                jid = item.job.job_id
                                machine_release(jid)
                                del running[jid]
                                if state_on_release is not None:
                                    state_on_release(jid)
                                completed_append(item)
                                columns_append(item)
                            now = t
                            # Inlined ``ctx.now = t`` (slot write + state
                            # advance) — the property dispatch is measurable
                            # at this call rate.
                            ctx._now = t
                            if state_advance is not None:
                                state_advance(t)
                            decision_points += 1
                            t_select = perf_counter()
                            started = select_jobs(ctx)
                            t_commit = perf_counter()
                            decision_time += t_commit - t_select
                            if profile_phases:
                                events_seconds += t_select - t_events
                            for job in started:
                                cancelled = (
                                    cancel_over_limit
                                    and job.estimate is not None
                                    and job.runtime > job.estimate
                                )
                                duration = job.estimate if cancelled else job.runtime
                                item = ScheduledJob(
                                    job=job,
                                    start_time=t,
                                    end_time=t + duration,
                                    cancelled=cancelled,
                                )
                                machine_allocate(job)
                                running[job.job_id] = RunningJob(
                                    job=job, start_time=t
                                )
                                if state_on_release is not None:
                                    note_dequeued(job.nodes)
                                    state_on_start(
                                        job.job_id, job.estimated_runtime, job.nodes
                                    )
                                events_push(item.end_time, EventKind.COMPLETION, item)
                            pending -= len(started)
                            if profile_phases:
                                commit_seconds += perf_counter() - t_commit
                        continue
                    # Backlogged: arrivals strictly before the next heap
                    # event and too wide for the free nodes can neither
                    # start nor unblock anything (the discipline's
                    # ``blocked_arrivals`` guarantee) — enqueue the whole
                    # run without touching the decision machinery.
                    if coalesce.blocked_arrivals and not resubmit_pending:
                        run_jobs, run_times, closed = feed.take_blocked_arrivals(
                            machine.free_nodes
                        )
                        if run_jobs:
                            for job in run_jobs:
                                current[job.job_id] = job
                            if state is not None:
                                state.note_enqueued_run(run_jobs)
                            scheduler.on_submit_run(run_jobs, ctx)
                            ctx.now = run_times[-1]
                            decision_points += closed
                            coalesced["blocked_arrival_runs"] += 1
                            coalesced["blocked_arrival_jobs"] += len(run_jobs)
                            coalesced["decision_points"] += closed
                            queue_len = scheduler.pending_count
                            if queue_len > max_queue:
                                max_queue = queue_len
                else:
                    # Empty queue: alternate completion drains and
                    # immediate starts until neither makes progress (a
                    # light-load phase collapses into this inner loop).
                    while feed:
                        progressed = False
                        if coalesce.empty_drain:
                            run_events, closed = events.take_completion_run(
                                feed.next_arrival_time()
                            )
                            if run_events:
                                fresh: list[ScheduledJob] = []
                                for event in run_events:
                                    item = event.payload
                                    jid = item.job.job_id
                                    run_entry = running.get(jid)
                                    if (
                                        run_entry is None
                                        or run_entry.start_time != item.start_time
                                    ):
                                        continue  # stale: a killed attempt
                                    machine.release(jid)
                                    del running[jid]
                                    finished_ids.add(jid)
                                    fresh.append(item)
                                if fresh:
                                    completed.extend(fresh)
                                    if columns is not None:
                                        columns.extend(fresh)
                                    if state is not None:
                                        state.on_release_batch(
                                            [(f.end_time, f.job.job_id) for f in fresh]
                                        )
                                # ``on_complete`` is the base no-op under
                                # the ``empty_drain`` capability.
                                now = run_events[-1].time
                                ctx.now = now
                                decision_points += closed
                                coalesced["drain_runs"] += 1
                                coalesced["drained_completions"] += len(run_events)
                                coalesced["decision_points"] += closed
                                progressed = True
                        if coalesce.idle_starts and not resubmit_pending:
                            run_jobs, run_times, instants = feed.take_idle_starts(
                                machine.free_nodes
                            )
                            if run_jobs:
                                start_entries = []
                                for job, start_t in zip(run_jobs, run_times):
                                    jid = job.job_id
                                    current[jid] = job
                                    started_ids.add(jid)
                                    if jid in killed_at:
                                        requeue_delay += start_t - killed_at.pop(jid)
                                    over = (
                                        cancel_over_limit
                                        and job.estimate is not None
                                        and job.runtime > job.estimate
                                    )
                                    duration = job.estimate if over else job.runtime
                                    item = ScheduledJob(
                                        job=job,
                                        start_time=start_t,
                                        end_time=start_t + duration,
                                        cancelled=over,
                                    )
                                    machine.allocate(job)
                                    running[jid] = RunningJob(
                                        job=job, start_time=start_t
                                    )
                                    start_entries.append(
                                        (start_t, jid, job.estimated_runtime, job.nodes)
                                    )
                                    events.push(item.end_time, EventKind.COMPLETION, item)
                                if state is not None:
                                    # enqueue+dequeue of the same widths is
                                    # state-neutral, so only the start
                                    # deltas need committing.
                                    state.on_start_batch(start_entries)
                                now = run_times[-1]
                                ctx.now = now
                                decision_points += instants
                                coalesced["idle_start_runs"] += 1
                                coalesced["idle_start_jobs"] += len(run_jobs)
                                coalesced["decision_points"] += instants
                                progressed = True
                        if not progressed:
                            break
                if profile_phases:
                    coalesce_seconds += perf_counter() - t_coalesce
                if not feed:
                    break
            now = feed_peek()
            ctx.now = now
            if profile_phases:
                t_events = perf_counter()
            batch_enqueued = False
            # Batch every event at this instant; completions first by the
            # event-kind priority.
            while feed and feed_peek() == now:
                kind, payload = feed_pop()
                if kind is EventKind.COMPLETION:
                    item: ScheduledJob = payload
                    jid = item.job.job_id
                    run_entry = running.get(jid)
                    if run_entry is None or run_entry.start_time != item.start_time:
                        # Stale completion of a killed attempt.  Rerun
                        # attempts reuse the job id, so membership alone is
                        # not enough — the start time identifies the attempt
                        # (attempt starts strictly increase).
                        continue
                    machine.release(jid)
                    del running[jid]
                    if state is not None:
                        state.on_release(jid)
                    finished_ids.add(jid)
                    completed.append(item)
                    if columns is not None:
                        columns.append(item)
                    if coalesce is None:
                        # Coalescing capability implies the base (no-op)
                        # ``on_complete`` — skip the call on the fast path.
                        scheduler.on_complete(item.job, ctx)
                elif kind is EventKind.NODE_UP:
                    fail = payload
                    self.machine.repair_nodes(fail.nodes, now)
                    if state is not None:
                        state.on_capacity_up(fail.up_time, fail.nodes)
                    active_outages.remove((fail.up_time, fail.nodes))
                elif kind is EventKind.NODE_DOWN:
                    fail = payload
                    needed = fail.nodes - self.machine.free_nodes
                    if needed > 0:
                        # Free nodes do not cover the failure: kill running
                        # jobs, youngest first (least work destroyed), until
                        # enough nodes are freed.  ``validate_for`` bounds
                        # concurrent failures by the machine size, so the
                        # running jobs always hold enough.
                        victims = sorted(
                            running.values(),
                            key=lambda r: (-r.start_time, -r.job.job_id),
                        )
                        freed = 0
                        for victim in victims:
                            if freed >= needed:
                                break
                            freed += victim.job.nodes
                            wasted_node_seconds += self._kill_for_failure(
                                victim,
                                now=now,
                                policy=policy,
                                ctx=ctx,
                                state=state,
                                events=events,
                                running=running,
                                by_id=by_id,
                                completed=completed,
                                started_ids=started_ids,
                                finished_ids=finished_ids,
                                failure_killed=failure_killed,
                                interrupted=interrupted,
                                recovery_state=recovery_state,
                                killed_at=killed_at,
                                resubmit_pending=resubmit_pending,
                                columns=columns,
                            )
                    self.machine.fail_nodes(fail.nodes, now)
                    if state is not None:
                        state.on_capacity_down(fail.up_time, fail.nodes)
                    active_outages.append((fail.up_time, fail.nodes))
                elif kind is EventKind.SUBMISSION:
                    job = payload
                    if job.job_id in resubmit_pending:
                        resubmit_pending.discard(job.job_id)
                        if job.job_id in resubmit_cancelled:
                            # Cancelled in the gap between kill and rerun:
                            # the rerun never reaches the queue.
                            resubmit_cancelled.discard(job.job_id)
                            finished_ids.add(job.job_id)
                            continue
                    current[job.job_id] = job
                    if state is not None:
                        state.note_enqueued(job.nodes)
                    scheduler.on_submit(job, ctx)
                    batch_enqueued = True
                elif kind is EventKind.CANCELLATION:
                    job_id: int = payload
                    job = current.get(job_id, by_id[job_id])
                    if job_id in running:
                        # Kill mid-run: partial execution enters the record.
                        start_time = running[job_id].start_time
                        self.machine.release(job_id)
                        del running[job_id]
                        if state is not None:
                            state.on_release(job_id)
                        finished_ids.add(job_id)
                        killed_running.append(job_id)
                        item = ScheduledJob(
                            job=job,
                            start_time=start_time,
                            end_time=now,
                            cancelled=True,
                        )
                        completed.append(item)
                        if columns is not None:
                            columns.append(item)
                        self.scheduler.on_complete(job, ctx)
                    elif job_id in resubmit_pending:
                        # Killed by a failure, recovery attempt not yet
                        # submitted: the user withdraws the rerun.
                        if job_id not in resubmit_cancelled:
                            resubmit_cancelled.add(job_id)
                            killed_at.pop(job_id, None)
                            cancelled_queued.append(job_id)
                    elif job_id not in finished_ids and job_id not in started_ids:
                        # Still queued: withdraw it.
                        self.scheduler.on_cancel(job, ctx)
                        if state is not None:
                            state.note_dequeued(job.nodes)
                        cancelled_queued.append(job_id)
                    # else: already finished — the realistic no-op race.
                else:
                    # TIMER events need no state change; they exist to
                    # create a decision point.  Inside this batch the
                    # event's time is ``now`` by construction.
                    pending_timers.discard(now)

            if profile_phases:
                events_seconds += time.perf_counter() - t_events
            decision_points += 1
            t_select = perf_counter()
            started = select_jobs(ctx)
            t_commit = perf_counter()
            decision_time += t_commit - t_select
            for job in started:
                started_ids.add(job.job_id)
                if job.job_id in killed_at:
                    requeue_delay += now - killed_at.pop(job.job_id)
                cancelled = (
                    cancel_over_limit
                    and job.estimate is not None
                    and job.runtime > job.estimate
                )
                duration = job.estimate if cancelled else job.runtime
                item = ScheduledJob(
                    job=job,
                    start_time=now,
                    end_time=now + duration,
                    cancelled=cancelled,
                )
                machine.allocate(job)  # raises if the scheduler overcommitted
                running[job.job_id] = RunningJob(job=job, start_time=now)
                if state is not None:
                    state.note_dequeued(job.nodes)
                    state.on_start(job.job_id, job.estimated_runtime, job.nodes)
                events.push(item.end_time, EventKind.COMPLETION, item)

            if coalesce is None:
                # Honour timer requests; only queue jobs justify a wake-up,
                # so a drained scheduler cannot keep an otherwise-finished
                # simulation alive forever.  Coalescing capability implies
                # the base (None) ``next_wakeup``, so the probe is skipped
                # on that path.
                wake = scheduler.next_wakeup(ctx)
                if (
                    wake is not None
                    and wake > now
                    and wake not in pending_timers
                    and (scheduler.pending_count > 0 or running)
                ):
                    pending_timers.add(wake)
                    events.push(wake, EventKind.TIMER)

                try:
                    queue_len = scheduler.pending_count
                except NotImplementedError:  # pragma: no cover - exotic schedulers
                    queue_len = 0
                max_queue = max(max_queue, queue_len)
                if self.trace is not None:
                    self.trace.queue_lengths.append((now, queue_len))
                    self.trace.free_nodes.append((now, machine.free_nodes))
            elif batch_enqueued:
                # The wait queue only ever grows inside ``on_submit``, so
                # the peak queue length is always attained at a decision
                # point whose batch carried a submission — completion-only
                # drain decisions cannot raise it and skip the probe.
                queue_len = scheduler.pending_count
                if queue_len > max_queue:
                    max_queue = queue_len
            if profile_phases:
                commit_seconds += perf_counter() - t_commit

        if running:
            raise RuntimeError(
                f"simulation drained its events with {len(running)} jobs still "
                "running — scheduler pushed no completion?"
            )
        leftover = self.scheduler.pending_count
        if leftover:
            raise RuntimeError(
                f"simulation ended with {leftover} jobs still queued — the "
                "scheduler starved them (every job fits the machine, so a "
                "work-conserving scheduler must eventually start everything)"
            )

        total_seconds = time.perf_counter() - run_clock_start
        phase_seconds = {"total": total_seconds, "decide": decision_time}
        if profile_phases:
            phase_seconds["events"] = events_seconds
            phase_seconds["commit"] = commit_seconds
            phase_seconds["coalesce"] = coalesce_seconds
            phase_seconds["other"] = max(
                0.0,
                total_seconds
                - events_seconds
                - commit_seconds
                - coalesce_seconds
                - decision_time,
            )

        schedule = Schedule(completed)
        return SimulationResult(
            schedule=schedule,
            decision_points=decision_points,
            max_queue_length=max_queue,
            end_time=now,
            cancelled_queued=tuple(cancelled_queued),
            killed_running=tuple(killed_running),
            decision_time=decision_time,
            profile_deltas=state.deltas if state is not None else 0,
            profile_snapshots=state.snapshots if state is not None else 0,
            failure_killed=tuple(failure_killed),
            interrupted=tuple(interrupted),
            lost_node_seconds=(
                failures.lost_node_seconds() if failures is not None else 0.0
            ),
            wasted_node_seconds=wasted_node_seconds,
            requeue_delay=requeue_delay,
            columns=columns,
            phase_seconds=phase_seconds,
            coalesced=coalesced,
        )

    def _kill_for_failure(
        self,
        victim: RunningJob,
        *,
        now: float,
        policy: "RecoveryPolicy | None",
        ctx: SchedulerContext,
        state: SchedulingState | None,
        events: EventQueue,
        running: dict[int, RunningJob],
        by_id: dict[int, Job],
        completed: list[ScheduledJob],
        started_ids: set[int],
        finished_ids: set[int],
        failure_killed: list[int],
        interrupted: list[ScheduledJob],
        recovery_state: dict[int, tuple[float, float]],
        killed_at: dict[int, float],
        resubmit_pending: set[int],
        columns: "vector.ResultColumns | None",
    ) -> float:
        """Kill ``victim`` for a node failure; returns wasted node-seconds.

        Releases the partition, records the partial attempt, and dispatches
        the recovery policy: abandonment turns the attempt into the job's
        final (cancelled) schedule record; recovery stores the attempt under
        ``interrupted`` and schedules a rerun submission carrying the
        remaining runtime under the original identity.
        """
        attempt = victim.job
        job_id = attempt.job_id
        self.machine.release(job_id)
        del running[job_id]
        if state is not None:
            state.on_release(job_id)
        record = ScheduledJob(
            job=attempt, start_time=victim.start_time, end_time=now, cancelled=True
        )
        failure_killed.append(job_id)
        executed = now - victim.start_time
        saved, overhead_paid = recovery_state.get(job_id, (0.0, 0.0))
        original = by_id[job_id]
        assert policy is not None  # failures without a policy cannot happen
        outcome = policy.on_interrupt(
            original,
            now=now,
            executed=executed,
            saved=saved,
            overhead_paid=overhead_paid,
        )
        nodes = attempt.nodes
        if outcome.resubmit_at is None:
            # Abandoned: the partial attempt is the job's final record, and
            # everything it executed (plus any checkpoints from earlier
            # attempts, now useless) is wasted.
            finished_ids.add(job_id)
            completed.append(record)
            if columns is not None:
                columns.append(record)
            waste = (executed + saved) * nodes
        else:
            if outcome.resubmit_at < now:
                raise ValueError(
                    f"recovery policy {policy.spec!r} resubmits job {job_id} "
                    f"at {outcome.resubmit_at}, before the kill at {now}"
                )
            interrupted.append(record)
            started_ids.discard(job_id)
            rerun = replace(original, runtime=outcome.remaining_runtime)
            events.push(outcome.resubmit_at, EventKind.SUBMISSION, rerun)
            resubmit_pending.add(job_id)
            killed_at[job_id] = now
            recovery_state[job_id] = (outcome.saved, outcome.overhead)
            # Work preserved by new checkpoints survives; the rest of this
            # attempt's execution is wasted.
            waste = (executed - (outcome.saved - saved)) * nodes
        self.scheduler.on_complete(attempt, ctx)
        return waste


def simulate(
    jobs: Iterable[Job],
    scheduler: Scheduler,
    total_nodes: int = Machine.PAPER_BATCH_NODES,
    *,
    config: SimulationConfig | None = None,
    scenario: ScenarioInputs | None = None,
    backend: str | None = None,
    cancellations: Sequence[Cancellation] = _UNSET,
    failures: "FailureTrace | None" = _UNSET,
    recovery: "RecoveryPolicy | str | None" = _UNSET,
    **kwargs: object,
) -> SimulationResult:
    """One-call convenience wrapper: build a machine, run, return the result.

    ``config``/``scenario``/``backend`` are the current surface; the loose
    ``cancellations``/``failures``/``recovery`` keywords (and any legacy
    ``Simulator`` keyword in ``**kwargs``) pass through to the deprecated
    shims, which emit the ``DeprecationWarning``.
    """
    simulator = Simulator(
        Machine(total_nodes), scheduler, config, backend=backend, **kwargs  # type: ignore[arg-type]
    )
    legacy = {
        name: value
        for name, value in (
            ("cancellations", cancellations),
            ("failures", failures),
            ("recovery", recovery),
        )
        if value is not _UNSET
    }
    if legacy:
        return simulator.run(jobs, scenario=scenario, **legacy)  # type: ignore[arg-type]
    return simulator.run(jobs, scenario=scenario)

"""The discrete-event simulator driving an on-line scheduler.

The simulator owns the clock, the event queue, the machine, the table of
running jobs, and the incremental
:class:`~repro.core.state.SchedulingState` (persistent availability
profile + queue statistics) that schedulers read through the context.  The
scheduler owns the wait queue and the policy.  Per decision point (a batch
of events at one instant) the flow is:

1. apply every completion at this instant (release nodes, notify scheduler),
2. apply every submission at this instant (notify scheduler),
3. ask the scheduler which queued jobs to start now, allocate them, and
   push their completion events.

Completions are applied before submissions at equal times (see
:mod:`repro.core.events`), so a newly submitted job sees every node freed at
its arrival instant — the behaviour of a real batch system where the
resource manager processes its event queue in order.

Jobs whose actual runtime exceeds the user limit can optionally be cancelled
at the limit (``cancel_over_limit=True``), matching policy rule 2 of
Example 5 ("If the execution of a job exceeds this upper limit, the job may
be cancelled").  The paper's evaluation does not exercise cancellation (the
CTC trace records realised runtimes), so the default is off.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.events import EventKind, EventQueue
from repro.core.job import Job, validate_stream
from repro.core.machine import Machine
from repro.core.schedule import Schedule, ScheduledJob
from repro.core.scheduler import RunningJob, Scheduler, SchedulerContext
from repro.core.state import SchedulingState, verify_every_from_env


@dataclass(frozen=True, slots=True)
class Cancellation:
    """A user withdrawing a job at ``time`` (failure-injection input).

    A queued job disappears from the wait queue; a running job is killed
    (its partial execution appears in the schedule with ``cancelled=True``).
    Cancellations of already-completed jobs are ignored — the realistic
    race of a user cancelling just as the job finishes.
    """

    time: float
    job_id: int


@dataclass(slots=True)
class SimulationResult:
    """Outcome of one simulation run."""

    schedule: Schedule
    #: Number of decision points at which the scheduler was invoked.
    decision_points: int
    #: Peak length of the scheduler's wait queue observed at decision points.
    max_queue_length: int
    #: Final simulated time (== schedule makespan unless the stream was empty).
    end_time: float
    #: Ids of jobs cancelled while still queued (they never ran and do not
    #: appear in the schedule).
    cancelled_queued: tuple[int, ...] = ()
    #: Ids of jobs killed while running (partial execution in the schedule).
    killed_running: tuple[int, ...] = ()
    #: Wall-clock seconds spent inside ``select_jobs`` across all decision
    #: points — the per-decision cost of the scheduling algorithm proper.
    decision_time: float = 0.0
    #: Deltas applied to / snapshots taken from the incremental scheduling
    #: state (both 0 when the rebuild fallback ran).
    profile_deltas: int = 0
    profile_snapshots: int = 0

    @property
    def job_count(self) -> int:
        return len(self.schedule)


@dataclass(slots=True)
class _Trace:
    """Optional per-run instrumentation collected by the simulator."""

    queue_lengths: list[tuple[float, int]] = field(default_factory=list)
    free_nodes: list[tuple[float, int]] = field(default_factory=list)


class Simulator:
    """Run a job stream through a scheduler on a machine.

    Parameters
    ----------
    machine:
        The target machine.  A fresh simulation resets it.
    scheduler:
        Any :class:`~repro.core.scheduler.Scheduler`.
    cancel_over_limit:
        If True, a job whose actual runtime exceeds its estimate is killed
        at the estimate (recorded with ``cancelled=True``).
    collect_trace:
        If True, record queue length and free nodes at every decision point
        (for the analysis plots); adds memory overhead on large runs.
    incremental_state:
        If True (the default), maintain a
        :class:`~repro.core.state.SchedulingState` across events and hand
        schedulers cheap snapshots through ``ctx.profile``.  ``False``
        selects the reference rebuild-per-decision path — same schedules,
        bit for bit (the equivalence test's oracle).
    verify_state:
        Cross-check the incremental state against a fresh rebuild every
        N-th snapshot (0 disables).  ``None`` (the default) reads
        ``REPRO_VERIFY_STATE`` from the environment.
    """

    def __init__(
        self,
        machine: Machine,
        scheduler: Scheduler,
        *,
        cancel_over_limit: bool = False,
        collect_trace: bool = False,
        incremental_state: bool = True,
        verify_state: int | None = None,
    ) -> None:
        self.machine = machine
        self.scheduler = scheduler
        self.cancel_over_limit = cancel_over_limit
        self.collect_trace = collect_trace
        self.incremental_state = incremental_state
        self.verify_state = verify_state
        self.trace = _Trace() if collect_trace else None

    def run(
        self,
        jobs: Iterable[Job],
        cancellations: Sequence[Cancellation] = (),
    ) -> SimulationResult:
        """Simulate the whole stream and return the final schedule.

        ``cancellations`` injects user withdrawals / failures; each must
        reference a job in the stream and fire no earlier than its
        submission.
        """
        stream: Sequence[Job] = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
        validate_stream(list(stream))
        by_id = {job.job_id: job for job in stream}
        for job in stream:
            if not self.machine.can_ever_fit(job):
                raise ValueError(
                    f"job {job.job_id} requests {job.nodes} nodes but the machine "
                    f"has only {self.machine.total_nodes}; filter the workload first "
                    "(see repro.workloads.transforms.cap_nodes)"
                )
        for cancel in cancellations:
            if cancel.job_id not in by_id:
                raise ValueError(f"cancellation references unknown job {cancel.job_id}")
            if cancel.time < by_id[cancel.job_id].submit_time:
                raise ValueError(
                    f"job {cancel.job_id} cancelled at {cancel.time} before its "
                    f"submission at {by_id[cancel.job_id].submit_time}"
                )

        self.machine.reset()
        self.scheduler.reset()
        events = EventQueue()
        pending_timers: set[float] = set()
        running: dict[int, RunningJob] = {}
        state: SchedulingState | None = None
        if self.incremental_state:
            verify_every = (
                self.verify_state
                if self.verify_state is not None
                else verify_every_from_env()
            )
            state = SchedulingState(
                self.machine.total_nodes, verify_every=verify_every
            )
        ctx = SchedulerContext(self.machine, running, state=state)
        completed: list[ScheduledJob] = []
        decision_points = 0
        decision_time = 0.0
        max_queue = 0
        now = 0.0

        for job in stream:
            events.push(job.submit_time, EventKind.SUBMISSION, job)
        for cancel in cancellations:
            events.push(cancel.time, EventKind.CANCELLATION, cancel.job_id)
        started_ids: set[int] = set()
        finished_ids: set[int] = set()
        cancelled_queued: list[int] = []
        killed_running: list[int] = []

        while events:
            now = events.peek().time
            ctx.now = now
            # Batch every event at this instant; completions first by the
            # event-kind priority.
            while events and events.peek().time == now:
                event = events.pop()
                if event.kind is EventKind.COMPLETION:
                    item: ScheduledJob = event.payload
                    if item.job.job_id not in running:
                        continue  # stale completion of a killed job
                    self.machine.release(item.job.job_id)
                    del running[item.job.job_id]
                    if state is not None:
                        state.on_release(item.job.job_id)
                    finished_ids.add(item.job.job_id)
                    completed.append(item)
                    self.scheduler.on_complete(item.job, ctx)
                elif event.kind is EventKind.SUBMISSION:
                    if state is not None:
                        state.note_enqueued(event.payload.nodes)
                    self.scheduler.on_submit(event.payload, ctx)
                elif event.kind is EventKind.CANCELLATION:
                    job_id: int = event.payload
                    job = by_id[job_id]
                    if job_id in running:
                        # Kill mid-run: partial execution enters the record.
                        start_time = running[job_id].start_time
                        self.machine.release(job_id)
                        del running[job_id]
                        if state is not None:
                            state.on_release(job_id)
                        finished_ids.add(job_id)
                        killed_running.append(job_id)
                        completed.append(
                            ScheduledJob(
                                job=job,
                                start_time=start_time,
                                end_time=now,
                                cancelled=True,
                            )
                        )
                        self.scheduler.on_complete(job, ctx)
                    elif job_id not in finished_ids and job_id not in started_ids:
                        # Still queued: withdraw it.
                        self.scheduler.on_cancel(job, ctx)
                        if state is not None:
                            state.note_dequeued(job.nodes)
                        cancelled_queued.append(job_id)
                    # else: already finished — the realistic no-op race.
                else:
                    # TIMER events need no state change; they exist to
                    # create a decision point.
                    pending_timers.discard(event.time)

            decision_points += 1
            t_select = time.perf_counter()
            started = self.scheduler.select_jobs(ctx)
            decision_time += time.perf_counter() - t_select
            for job in started:
                started_ids.add(job.job_id)
                cancelled = (
                    self.cancel_over_limit
                    and job.estimate is not None
                    and job.runtime > job.estimate
                )
                duration = job.estimate if cancelled else job.runtime
                item = ScheduledJob(
                    job=job,
                    start_time=now,
                    end_time=now + duration,
                    cancelled=cancelled,
                )
                self.machine.allocate(job)  # raises if the scheduler overcommitted
                running[job.job_id] = RunningJob(job=job, start_time=now)
                if state is not None:
                    state.note_dequeued(job.nodes)
                    state.on_start(job.job_id, job.estimated_runtime, job.nodes)
                events.push(item.end_time, EventKind.COMPLETION, item)

            # Honour timer requests; only queue jobs justify a wake-up, so a
            # drained scheduler cannot keep an otherwise-finished simulation
            # alive forever.
            wake = self.scheduler.next_wakeup(ctx)
            if (
                wake is not None
                and wake > now
                and wake not in pending_timers
                and (self.scheduler.pending_count > 0 or running)
            ):
                pending_timers.add(wake)
                events.push(wake, EventKind.TIMER)

            try:
                queue_len = self.scheduler.pending_count
            except NotImplementedError:  # pragma: no cover - exotic schedulers
                queue_len = 0
            max_queue = max(max_queue, queue_len)
            if self.trace is not None:
                self.trace.queue_lengths.append((now, queue_len))
                self.trace.free_nodes.append((now, self.machine.free_nodes))

        if running:
            raise RuntimeError(
                f"simulation drained its events with {len(running)} jobs still "
                "running — scheduler pushed no completion?"
            )
        leftover = self.scheduler.pending_count
        if leftover:
            raise RuntimeError(
                f"simulation ended with {leftover} jobs still queued — the "
                "scheduler starved them (every job fits the machine, so a "
                "work-conserving scheduler must eventually start everything)"
            )

        schedule = Schedule(completed)
        return SimulationResult(
            schedule=schedule,
            decision_points=decision_points,
            max_queue_length=max_queue,
            end_time=now,
            cancelled_queued=tuple(cancelled_queued),
            killed_running=tuple(killed_running),
            decision_time=decision_time,
            profile_deltas=state.deltas if state is not None else 0,
            profile_snapshots=state.snapshots if state is not None else 0,
        )


def simulate(
    jobs: Iterable[Job],
    scheduler: Scheduler,
    total_nodes: int = Machine.PAPER_BATCH_NODES,
    *,
    cancellations: Sequence[Cancellation] = (),
    **kwargs: object,
) -> SimulationResult:
    """One-call convenience wrapper: build a machine, run, return the result."""
    return Simulator(Machine(total_nodes), scheduler, **kwargs).run(  # type: ignore[arg-type]
        jobs, cancellations=cancellations
    )

"""Availability profile: free nodes as a step function of future time.

Backfilling needs to answer "when is the earliest time a ``nodes``-wide job
can run for ``duration`` seconds without displacing existing commitments?".
The :class:`AvailabilityProfile` maintains the number of free nodes over
``[now, infinity)`` as a piecewise-constant function and supports

* :meth:`earliest_start` — first-fit query against the profile, and
* :meth:`reserve` — committing nodes over an interval (a running job's
  projected remainder, or a queued job's reservation under conservative
  backfilling).

All durations fed into a profile are *projected* (based on user estimates);
the paper stresses that realised completions may be earlier, which is why
backfilling can still delay jobs relative to FCFS (Section 5.2).

Historically the schedulers rebuilt a profile from live state at every
decision point; today :class:`repro.core.state.SchedulingState` maintains
one *persistent* profile across events instead, which is why the class also
supports

* :meth:`release` — returning the projected remainder of an early
  completion to the free pool,
* :meth:`advance_origin` — dropping segments the simulation clock has
  passed, and
* :meth:`clone` — copy-on-write snapshots handed to the disciplines.

``from_running`` remains the reference constructor: the incremental path is
cross-checked against it (see ``SchedulingState.verify``), and contexts
without a state fall back to it.

Implementation note: profiles are the measured hot spot of conservative
backfilling (hundreds of thousands of first-fit queries per simulated
month).  Profiles here are small (tens to a few hundred segments), so tight
Python loops over plain lists beat NumPy, whose per-call overhead dominates
at these sizes — measured both ways; see ``benchmarks/bench_profile.py``.

Three query kernels keep the first-fit scan cheap as profiles grow:

* every query funnels through one module-level kernel (:func:`_first_fit`)
  with the hot lists hoisted into locals;
* profiles with ≥ :data:`_INDEX_MIN_SEGMENTS` segments lazily build a
  **block-max index** (max free nodes per :data:`_INDEX_BLOCK`-segment
  block) that lets the feasibility scan skip whole runs of infeasible
  breakpoints; any mutation invalidates it, clones share it.  (A plain
  suffix-max is vacuous here: the final segment is always fully free, so
  every suffix max equals ``total_nodes`` — the blocked form is the useful
  prefix structure.  See the decision record in ``docs/architecture.md``.)
* :meth:`earliest_start_batch` answers many queries against a fixed
  profile in one pass, and :meth:`allocate` fuses the query with its
  reservation, skipping the redundant feasibility re-validation —
  conservative and slack backfilling issue exactly that pair per queued
  job.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Sequence

#: Segments per block of the lazily-built block-max feasibility index.
_INDEX_BLOCK = 32

#: Minimum segment count before a query builds the block-max index; below
#: it the plain scan wins (index upkeep would cost more than it saves).
_INDEX_MIN_SEGMENTS = 96

#: Entries kept in the per-profile first-fit memo before it is wiped.  The
#: bound is enforced by a deterministic clear-on-full (never an eviction
#: order that could depend on hash iteration), so two runs of the same
#: scenario always see the same hit/miss sequence — not that a miss could
#: change an answer, but determinism keeps the cache a non-observable.
_MEMO_MAX = 128


def _first_fit(
    times: list[float],
    free: list[int],
    n: int,
    block_max: list[int] | None,
    nodes: int,
    duration: float,
    start_at: float,
) -> float:
    """First ``t >= start_at`` with ``free >= nodes`` over ``[t, t+duration)``.

    The single query kernel behind :meth:`AvailabilityProfile.earliest_start`,
    :meth:`~AvailabilityProfile.earliest_start_batch` and
    :meth:`~AvailabilityProfile.allocate`.  ``block_max`` (when not ``None``)
    holds ``max(free[k*B:(k+1)*B])`` per block and must describe exactly
    ``free``; the caller guarantees ``nodes <= total_nodes`` so the scan
    always terminates on the final, fully-free segment.
    """
    idx = bisect_right(times, start_at) - 1
    while True:
        # Skip infeasible segments; _free[-1] == total_nodes >= nodes, so
        # neither loop runs off the end.
        if block_max is None:
            while free[idx] < nodes:
                idx += 1
        else:
            # Finish the current block by scan, then hop infeasible blocks.
            end_of_block = ((idx // _INDEX_BLOCK) + 1) * _INDEX_BLOCK
            if end_of_block > n:
                end_of_block = n
            while idx < end_of_block and free[idx] < nodes:
                idx += 1
            if idx == end_of_block:
                block = idx // _INDEX_BLOCK
                while block_max[block] < nodes:
                    block += 1
                idx = block * _INDEX_BLOCK
                while free[idx] < nodes:
                    idx += 1
        t = times[idx]
        candidate = t if t > start_at else start_at
        end = candidate + duration
        j = idx + 1
        while j < n:
            if times[j] >= end:
                return candidate
            if free[j] < nodes:
                break
            j += 1
        else:
            return candidate
        idx = j


class AvailabilityProfile:
    """Piecewise-constant free-node function over ``[origin, inf)``.

    Internally two parallel lists: ``_times`` (strictly increasing,
    ``_times[0] == origin``) and ``_free`` where ``_free[i]`` holds on
    ``[_times[i], _times[i+1])`` and ``_free[-1]`` holds forever after.
    Every reservation is a finite interval, so ``_free[-1]`` always equals
    ``total_nodes`` — the machine eventually drains.
    """

    __slots__ = ("_times", "_free", "total_nodes", "_shared", "_block_max", "_memo")

    def __init__(self, total_nodes: int, origin: float = 0.0) -> None:
        if total_nodes <= 0:
            raise ValueError(f"total_nodes must be positive, got {total_nodes}")
        self.total_nodes = total_nodes
        self._times: list[float] = [origin]
        self._free: list[int] = [total_nodes]
        self._shared = False
        self._block_max: list[int] | None = None
        self._memo: dict[tuple[int, float], float] | None = None

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_running(
        cls,
        total_nodes: int,
        now: float,
        running: Iterable[tuple[float, int]],
    ) -> "AvailabilityProfile":
        """Build a profile from running jobs in one pass.

        ``running`` yields ``(projected_end_time, nodes)`` pairs.  Projected
        ends in the past (overrunning jobs whose estimate already elapsed)
        are clamped to *just after* ``now``: the scheduler knows the nodes
        are still busy but has no information beyond that; using an epsilon
        keeps the profile consistent while letting other work be planned.
        """
        profile = cls(total_nodes, origin=now)
        pairs = [
            (end if end > now else now + _OVERRUN_EPSILON, nodes)
            for end, nodes in running
        ]
        if not pairs:
            return profile
        pairs.sort()
        busy = sum(nodes for _end, nodes in pairs)
        if busy > total_nodes:
            raise ValueError(
                f"running jobs hold {busy} nodes on a {total_nodes}-node machine"
            )
        times = [now]
        free = [total_nodes - busy]
        level = total_nodes - busy
        for end, nodes in pairs:
            level += nodes
            if times[-1] == end:
                free[-1] = level
            else:
                times.append(end)
                free.append(level)
        profile._times = times
        profile._free = free
        return profile

    def clone(self) -> "AvailabilityProfile":
        """Copy-on-write snapshot: O(1) until either copy mutates.

        Both instances share the segment lists and carry a shared flag;
        the first mutation on either side (reserve, release,
        advance_origin) copies the lists before writing.  Queries never
        detach.
        """
        other = AvailabilityProfile.__new__(AvailabilityProfile)
        other.total_nodes = self.total_nodes
        other._times = self._times
        other._free = self._free
        # The block-max index and the first-fit memo describe the shared
        # segment lists, so the clone inherits both; whichever copy mutates
        # first drops only its own references (the epoch contract: a
        # mutation starts a new epoch with an empty memo, see
        # docs/architecture.md).
        other._block_max = self._block_max
        other._memo = self._memo
        other._shared = True
        self._shared = True
        return other

    def _detach(self) -> None:
        if self._shared:
            self._times = list(self._times)
            self._free = list(self._free)
            self._shared = False

    # -- queries ----------------------------------------------------------------

    @property
    def origin(self) -> float:
        return self._times[0]

    def free_at(self, time: float) -> int:
        """Free nodes at ``time`` (must be >= origin)."""
        if time < self._times[0]:
            raise ValueError(f"time {time} precedes profile origin {self._times[0]}")
        return self._free[bisect_right(self._times, time) - 1]

    def steps(self) -> list[tuple[float, int]]:
        """The profile as ``(time, free_nodes_from_time)`` pairs (a copy)."""
        return list(zip(self._times, self._free))

    def canonical_steps(self) -> list[tuple[float, int]]:
        """Steps with redundant breakpoints merged.

        Incremental maintenance can leave breakpoints where the free count
        does not change (a release exactly cancelling a reservation edge);
        they never affect queries, but equality comparisons — the
        incremental-vs-rebuild cross-check — must ignore them.
        """
        out: list[tuple[float, int]] = []
        for time, free in zip(self._times, self._free):
            if out and out[-1][1] == free:
                continue
            out.append((time, free))
        return out

    def _query_index(self) -> list[int] | None:
        """The block-max feasibility index, built lazily for large profiles."""
        block_max = self._block_max
        if block_max is None:
            free = self._free
            if len(free) >= _INDEX_MIN_SEGMENTS:
                block_max = self._block_max = [
                    max(free[i : i + _INDEX_BLOCK])
                    for i in range(0, len(free), _INDEX_BLOCK)
                ]
        return block_max

    def earliest_start(self, nodes: int, duration: float, after: float | None = None) -> float:
        """Earliest ``t >= after`` with ``free >= nodes`` on ``[t, t+duration)``.

        ``after`` defaults to the profile origin.  Always returns a finite
        time provided ``nodes <= total_nodes`` (the final segment is fully
        free); raises ``ValueError`` otherwise.
        """
        if nodes > self.total_nodes:
            raise ValueError(f"{nodes} nodes never fit a {self.total_nodes}-node machine")
        times = self._times
        origin = times[0]
        if after is None or after <= origin:
            # Memoizable: the answer depends only on (nodes, duration) and
            # the step function of the current epoch.  A cached start from
            # before an ``advance_origin`` stays valid exactly when it has
            # not been overtaken by the new origin — the levels on
            # ``[origin, inf)`` are untouched by origin advances, and every
            # instant in ``[origin, cached)`` was already scanned and found
            # infeasible — so staleness is a cheap comparison, not a flush.
            memo = self._memo
            key = (nodes, duration)
            if memo is not None:
                cached = memo.get(key)
                if cached is not None and cached >= origin:
                    return cached
            start = _first_fit(
                times, self._free, len(times), self._query_index(), nodes, duration, origin
            )
            if memo is None:
                memo = self._memo = {}
            elif len(memo) >= _MEMO_MAX:
                memo.clear()
            memo[key] = start
            return start
        return _first_fit(
            times, self._free, len(times), self._query_index(), nodes, duration, after
        )

    def earliest_start_batch(
        self,
        requests: Sequence[tuple[int, float]],
        after: float | None = None,
        *,
        backend: str | None = None,
    ) -> list[float]:
        """First-fit starts for many ``(nodes, duration)`` requests at once.

        All requests are answered against this *fixed* profile (no
        reservations between them — use :meth:`allocate` per job when each
        answer must constrain the next).  One pass hoists the segment
        lists and the feasibility index out of the per-request path, so a
        batch of k queries costs far less than k :meth:`earliest_start`
        calls.  Results are exactly ``[self.earliest_start(n, d, after)
        for n, d in requests]``.

        ``backend="numpy"`` routes the batch through the vectorised 2-D
        kernel (:func:`repro.core.vector.earliest_start_batch`), which is
        bit-identical by construction; any other value keeps the scalar
        loop below.
        """
        if backend == "numpy":
            from repro.core import vector

            return vector.earliest_start_batch(self, requests, after)
        times = self._times
        free = self._free
        n = len(times)
        origin = times[0]
        start_at = origin if after is None or after < origin else after
        total = self.total_nodes
        block_max = self._query_index()
        out: list[float] = []
        for nodes, duration in requests:
            if nodes > total:
                raise ValueError(f"{nodes} nodes never fit a {total}-node machine")
            out.append(_first_fit(times, free, n, block_max, nodes, duration, start_at))
        return out

    def allocate(self, nodes: int, duration: float, after: float | None = None) -> float:
        """Fused :meth:`earliest_start` + :meth:`reserve`; returns the start.

        Finds the earliest feasible window and commits the reservation in
        one pass — the found window is free by construction, so the
        re-validation scan :meth:`reserve` performs is skipped.  The
        resulting profile is bit-identical to the two-call sequence
        (same breakpoints, same float arithmetic); conservative and
        slack backfilling call this once per queued job.
        """
        if nodes > self.total_nodes:
            raise ValueError(f"{nodes} nodes never fit a {self.total_nodes}-node machine")
        if duration <= 0:
            # reserve() treats non-positive durations as no-ops; match it.
            return self.earliest_start(nodes, duration, after)
        self._detach()
        times = self._times
        origin = times[0]
        start_at = origin if after is None or after < origin else after
        candidate = _first_fit(
            times, self._free, len(times), self._query_index(), nodes, duration, start_at
        )
        end = candidate + duration
        self._block_max = None
        self._memo = None
        self._ensure_breakpoint(candidate)
        self._ensure_breakpoint(end)
        free = self._free
        lo = bisect_left(times, candidate)
        hi = bisect_left(times, end)
        for i in range(lo, hi):
            free[i] -= nodes
        return candidate

    # -- mutation ----------------------------------------------------------------

    def reserve(self, start: float, duration: float, nodes: int) -> None:
        """Subtract ``nodes`` free nodes over ``[start, start + duration)``.

        Raises ``ValueError`` if the reservation would drive any segment
        negative — callers must query :meth:`earliest_start` first.
        Zero-duration reservations are no-ops.
        """
        if duration <= 0:
            return
        self._reserve_span(start, start + duration, nodes)

    def reserve_until(self, start: float, end: float, nodes: int) -> None:
        """Subtract ``nodes`` free nodes over ``[start, end)``.

        Like :meth:`reserve`, but the end breakpoint is placed at exactly
        ``end`` rather than the float sum ``start + duration`` — callers
        that know the end instant (capacity outages with a repair ETA) use
        this so independently-built profiles agree bit for bit.
        """
        if end <= start:
            return
        self._reserve_span(start, end, nodes)

    def reserve_from_origin(self, duration: float, nodes: int) -> None:
        """Subtract ``nodes`` over ``[origin, origin + duration)``.

        The start-a-job-*now* fast path, equivalent to
        ``reserve(origin, duration, nodes)`` on a *prefix-anchored*
        profile — one in which every reservation interval begins at the
        origin, so availability is ``total - sum(nodes_k for end_k > t)``
        and non-decreasing in time.  The first segment is then the
        minimum over any span starting at the origin, and checking it
        replaces the per-segment feasibility scan.  The persistent
        profile (running-job remainders, active outages) and the EASY
        decision snapshots satisfy the invariant by construction;
        profiles carrying future-start reservations (conservative
        backfilling) must keep using :meth:`reserve`.
        """
        if duration <= 0:
            return
        self._detach()
        self._block_max = None
        self._memo = None
        free = self._free
        if free[0] < nodes:
            raise ValueError(
                f"reservation of {nodes} nodes from origin exceeds "
                f"availability ({free[0]} free)"
            )
        times = self._times
        end = times[0] + duration
        # Inlined _ensure_breakpoint(end) + bisect_left(times, end): one
        # bisect serves both the insertion point and the subtraction bound.
        idx = bisect_right(times, end) - 1
        if times[idx] == end:
            hi = idx
        else:
            times.insert(idx + 1, end)
            free.insert(idx + 1, free[idx])
            hi = idx + 1
        for i in range(hi):
            free[i] -= nodes

    def _reserve_span(self, start: float, end: float, nodes: int) -> None:
        self._detach()
        self._block_max = None
        self._memo = None
        times = self._times
        free = self._free
        if start < times[0]:
            raise ValueError(f"reservation start {start} precedes origin {times[0]}")
        self._ensure_breakpoint(start)
        self._ensure_breakpoint(end)
        lo = bisect_left(times, start)
        hi = bisect_left(times, end)
        for i in range(lo, hi):
            if free[i] < nodes:
                raise ValueError(
                    f"reservation of {nodes} nodes over [{start}, {end}) exceeds "
                    f"availability ({free[i]} free at {times[i]})"
                )
        for i in range(lo, hi):
            free[i] -= nodes

    def release(self, end: float, nodes: int) -> None:
        """Add ``nodes`` free nodes back over ``[origin, end)``.

        The inverse of :meth:`reserve` for the *remainder* of a commitment:
        when a job completes at the current origin but was projected to run
        until ``end``, its nodes become free over exactly that interval.
        Callers must first advance the origin to the completion instant
        (see :meth:`advance_origin`); ``end <= origin`` is a no-op — the
        projection already expired on its own.

        Raises ``ValueError`` if the release would lift any segment above
        ``total_nodes`` (releasing nodes that were never reserved).
        """
        if nodes <= 0 or end <= self._times[0]:
            return
        self._detach()
        self._block_max = None
        self._memo = None
        times = self._times
        free = self._free
        total = self.total_nodes
        # Inlined _ensure_breakpoint(end) + bisect_left(times, end).
        idx = bisect_right(times, end) - 1
        if times[idx] == end:
            hi = idx
        else:
            times.insert(idx + 1, end)
            free.insert(idx + 1, free[idx])
            hi = idx + 1
        for i in range(hi):
            if free[i] + nodes > total:
                raise ValueError(
                    f"release of {nodes} nodes up to {end} exceeds total_nodes "
                    f"({free[i]} already free at {times[i]})"
                )
        for i in range(hi):
            free[i] += nodes

    def advance_origin(self, now: float) -> None:
        """Move the origin forward to ``now``, dropping passed segments.

        Keeps the profile anchored at the simulation clock so persistent
        maintenance does not accumulate dead history.  ``now`` at or before
        the current origin is a no-op; the free level holding at ``now``
        becomes the new first segment.
        """
        if now <= self._times[0]:
            return
        self._detach()
        self._block_max = None
        times = self._times
        free = self._free
        idx = bisect_right(times, now) - 1
        if idx > 0:
            del times[:idx]
            del free[:idx]
        times[0] = now

    def _ensure_breakpoint(self, time: float) -> None:
        times = self._times
        idx = bisect_right(times, time) - 1
        if times[idx] != time:
            times.insert(idx + 1, time)
            self._free.insert(idx + 1, self._free[idx])


#: Projected remainder assumed for a job that exceeded its estimate.  The
#: scheduler cannot know the true remainder; one second keeps the profile
#: well-formed without blocking the future.
_OVERRUN_EPSILON = 1.0

"""Core substrate: job and machine models, events, the discrete-event
simulation engine, schedule records and validity checking.

This package is the foundation every other subsystem builds on.  It knows
nothing about specific scheduling algorithms or workload models; it only
defines

* what a :class:`~repro.core.job.Job` is (the rigid job model of the paper's
  Example 5),
* what a :class:`~repro.core.machine.Machine` is (a space-shared partition of
  identical nodes, no time sharing, exclusive access),
* how simulated time advances (:mod:`repro.core.engine`),
* what a finished :class:`~repro.core.schedule.Schedule` looks like and what
  makes it *valid*,
* the :class:`~repro.core.profile.AvailabilityProfile` step function used by
  backfilling and reservations, and
* the incremental :class:`~repro.core.state.SchedulingState` the simulator
  maintains across events and exposes to schedulers as cheap snapshots.
"""

from repro.core.job import Job, JobState
from repro.core.machine import Machine
from repro.core.schedule import Schedule, ScheduledJob, ValidityError
from repro.core.events import Event, EventKind, EventQueue
from repro.core.profile import AvailabilityProfile
from repro.core.simulator import (
    ScenarioInputs,
    SimulationConfig,
    SimulationResult,
    Simulator,
)
from repro.core.state import SchedulingState, StateDivergenceError
from repro.core.vector import available_backends, resolve_backend

__all__ = [
    "AvailabilityProfile",
    "Event",
    "EventKind",
    "EventQueue",
    "Job",
    "JobState",
    "Machine",
    "ScenarioInputs",
    "Schedule",
    "ScheduledJob",
    "SchedulingState",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "StateDivergenceError",
    "ValidityError",
    "available_backends",
    "resolve_backend",
]

"""Packed columnar job arrays — the zero-copy workload wire format.

The experiment engine fans a grid of (config × regime) cells out over a
process pool, and every cell simulates the *same* job stream.  Shipping
that stream as a tuple of :class:`~repro.core.job.Job` dataclasses costs
~47 bytes of pickle per job *per cell*; a 5 000-job workload over the
paper's 13-cell grid serializes the same jobs 13 times (~3 MB of redundant
bytes, plus 13 × the deserialization CPU in the workers).

:class:`PackedJobs` encodes the stream once into parallel ``array``-module
columns — C doubles for the float fields, C ``int64`` for the integer
fields, byte masks for the two optional fields — so that

* the whole workload pickles as a handful of contiguous machine-value
  buffers (~50 bytes/job once, instead of per cell),
* :func:`fingerprint_packed` can digest it column-wise without
  materialising :class:`Job` objects, byte-identical to
  :func:`repro.experiments.engine.fingerprint_jobs`, and
* workers hydrate it exactly once per pool lifetime (see
  :class:`repro.experiments.workload_store.WorkloadStore`).

``pack_jobs`` / ``unpack_jobs`` round-trip bit-identically: every field of
every job — including ``meta`` mappings, which ride along sparsely because
the class-priority admission wrapper reads ``job.meta['class']`` — compares
equal after a round trip, which ``tests/test_packing.py`` asserts over
randomized streams (inf estimates, zero weights, zero runtimes, ``None``
optionals).

NumPy interop: :meth:`PackedJobs.numpy_views` exposes the numeric columns
as zero-copy ``numpy`` views when NumPy is importable (vectorised workload
statistics read straight out of the packed buffer).  It is a *view*
facility only — the simulator hot paths stay on plain lists, where the
measured per-call overhead of NumPy loses at profile-sized inputs (see the
decision record in ``docs/architecture.md``).
"""

from __future__ import annotations

import hashlib
from array import array
from typing import Any, Iterator, Mapping, Sequence

from repro.core.job import Job

__all__ = [
    "PackedJobs",
    "pack_jobs",
    "unpack_jobs",
    "fingerprint_packed",
    "job_record",
    "numpy_available",
]


def job_record(
    job_id: int,
    submit_time: float,
    nodes: int,
    runtime: float,
    estimate: float | None,
    user: int,
    weight: float | None,
) -> str:
    """Canonical one-line record of a job's simulator-visible fields.

    This is *the* formatting both fingerprint paths share:
    ``fingerprint_jobs`` feeds it per :class:`Job`, ``fingerprint_packed``
    per packed column row — so the two digests are byte-identical by
    construction and the cache format version never bumps over a packing
    change.  ``repr`` keeps full float precision (streams differing in the
    last bit get distinct digests); ``meta`` is deliberately absent — it
    has never been part of a stream's cache identity.
    """
    return f"{job_id},{submit_time!r},{nodes},{runtime!r},{estimate!r},{user},{weight!r}\n"


class PackedJobs:
    """A job stream as parallel machine-value columns.

    Columns (one entry per job, submission order preserved):

    ``job_ids``/``users``/``nodes``
        signed 64-bit integers (``array('q')``);
    ``submit``/``runtime``/``estimate``/``weight``
        C doubles (``array('d')`` — bit-identical to Python floats);
    ``has_estimate``/``has_weight``
        byte masks (``array('B')``) distinguishing a stored ``0.0`` from
        ``None`` (the "use the default" sentinel of :class:`Job`).

    ``metas`` carries the rare non-empty ``Job.meta`` mappings as sparse
    ``(index, mapping)`` pairs; streams without metadata pay nothing.

    Instances pickle as raw column buffers (``__reduce__``): a packed
    5 000-job workload costs about one pickled job tuple — but it ships
    once per pool lifetime instead of once per cell, and hydrates without
    running 5 000 dataclass ``__init__``/``__post_init__`` validations
    per cell.
    """

    __slots__ = (
        "job_ids",
        "submit",
        "nodes",
        "runtime",
        "estimate",
        "has_estimate",
        "users",
        "weight",
        "has_weight",
        "metas",
        "_views",
    )

    def __init__(
        self,
        job_ids: array,
        submit: array,
        nodes: array,
        runtime: array,
        estimate: array,
        has_estimate: array,
        users: array,
        weight: array,
        has_weight: array,
        metas: tuple[tuple[int, Mapping[str, Any]], ...] = (),
    ) -> None:
        n = len(job_ids)
        columns = (submit, nodes, runtime, estimate, has_estimate, users, weight, has_weight)
        if any(len(col) != n for col in columns):
            raise ValueError("packed columns disagree on length")
        self.job_ids = job_ids
        self.submit = submit
        self.nodes = nodes
        self.runtime = runtime
        self.estimate = estimate
        self.has_estimate = has_estimate
        self.users = users
        self.weight = weight
        self.has_weight = has_weight
        self.metas = metas
        self._views: dict[str, Any] | None = None

    def __len__(self) -> int:
        return len(self.job_ids)

    def __reduce__(self):
        return (
            PackedJobs,
            (
                self.job_ids,
                self.submit,
                self.nodes,
                self.runtime,
                self.estimate,
                self.has_estimate,
                self.users,
                self.weight,
                self.has_weight,
                self.metas,
            ),
        )

    def records(self) -> Iterator[str]:
        """Per-job canonical record lines (see :func:`job_record`)."""
        has_est = self.has_estimate
        has_wt = self.has_weight
        est = self.estimate
        wt = self.weight
        for i in range(len(self.job_ids)):
            yield job_record(
                self.job_ids[i],
                self.submit[i],
                self.nodes[i],
                self.runtime[i],
                est[i] if has_est[i] else None,
                self.users[i],
                wt[i] if has_wt[i] else None,
            )

    def numpy_views(self) -> dict[str, Any]:
        """Zero-copy NumPy views of the numeric columns.

        Returns ``{"job_ids": int64[:], "submit": float64[:], ...}``
        backed by the packed buffers — no copies, mutations are visible
        both ways.  The view objects are materialised once per instance
        and cached (repeated kernel calls pay one dict copy, not nine
        ``frombuffer`` constructions); the returned dict itself is a fresh
        copy each call, so callers may add or drop keys freely.  Raises
        :class:`RuntimeError` when NumPy is not importable, so the core
        stays importable without it.
        """
        if self._views is not None:
            return dict(self._views)
        if not numpy_available():
            raise RuntimeError(
                "PackedJobs.numpy_views requires numpy, which is not installed"
            )
        import numpy as np

        self._views = {
            "job_ids": np.frombuffer(self.job_ids, dtype=np.int64),
            "submit": np.frombuffer(self.submit, dtype=np.float64),
            "nodes": np.frombuffer(self.nodes, dtype=np.int64),
            "runtime": np.frombuffer(self.runtime, dtype=np.float64),
            "estimate": np.frombuffer(self.estimate, dtype=np.float64),
            "has_estimate": np.frombuffer(self.has_estimate, dtype=np.uint8),
            "users": np.frombuffer(self.users, dtype=np.int64),
            "weight": np.frombuffer(self.weight, dtype=np.float64),
            "has_weight": np.frombuffer(self.has_weight, dtype=np.uint8),
        }
        return dict(self._views)

    def nbytes(self) -> int:
        """Total size of the column buffers in bytes (excludes metas)."""
        return sum(
            len(col) * col.itemsize
            for col in (
                self.job_ids,
                self.submit,
                self.nodes,
                self.runtime,
                self.estimate,
                self.has_estimate,
                self.users,
                self.weight,
                self.has_weight,
            )
        )


def numpy_available() -> bool:
    """Whether the optional NumPy view facility can be used."""
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - image always ships numpy
        return False
    return True


def pack_jobs(jobs: Sequence[Job]) -> PackedJobs:
    """Encode a job stream into :class:`PackedJobs` columns.

    Bit-identical round trip: ``unpack_jobs(pack_jobs(jobs)) == list(jobs)``
    field for field.  Integer fields must fit a signed 64-bit value (every
    real trace does by orders of magnitude); ``array`` raises
    ``OverflowError`` otherwise rather than truncating silently.
    """
    n = len(jobs)
    job_ids = array("q", bytes(8 * n))
    submit = array("d", bytes(8 * n))
    nodes = array("q", bytes(8 * n))
    runtime = array("d", bytes(8 * n))
    estimate = array("d", bytes(8 * n))
    has_estimate = array("B", bytes(n))
    users = array("q", bytes(8 * n))
    weight = array("d", bytes(8 * n))
    has_weight = array("B", bytes(n))
    metas: list[tuple[int, Mapping[str, Any]]] = []
    for i, job in enumerate(jobs):
        job_ids[i] = job.job_id
        submit[i] = job.submit_time
        nodes[i] = job.nodes
        runtime[i] = job.runtime
        if job.estimate is not None:
            estimate[i] = job.estimate
            has_estimate[i] = 1
        users[i] = job.user
        if job.weight is not None:
            weight[i] = job.weight
            has_weight[i] = 1
        if job.meta:
            metas.append((i, job.meta))
    return PackedJobs(
        job_ids, submit, nodes, runtime, estimate, has_estimate,
        users, weight, has_weight, tuple(metas),
    )


def unpack_jobs(packed: PackedJobs) -> tuple[Job, ...]:
    """Rebuild the :class:`Job` stream a :class:`PackedJobs` encodes.

    Hydration fast path: every record in a packed stream came from a
    :class:`Job` that already passed ``__post_init__`` validation
    (``pack_jobs`` packs instances), so rebuilding allocates with
    ``__new__`` and fills the frozen slots directly instead of running
    the dataclass constructor and its six range checks per row — workers
    hydrate a 5 000-job workload several times faster.  Field-for-field
    equality with the constructor path is pinned by the hypothesis
    round-trip suite in ``tests/test_packing.py``.
    """
    meta_by_index = dict(packed.metas)
    job_ids = packed.job_ids
    submit = packed.submit
    nodes = packed.nodes
    runtime = packed.runtime
    est = packed.estimate
    has_est = packed.has_estimate
    users = packed.users
    wt = packed.weight
    has_wt = packed.has_weight
    new = Job.__new__
    fill = object.__setattr__
    get_meta = meta_by_index.get
    out = []
    append = out.append
    for i in range(len(job_ids)):
        job = new(Job)
        fill(job, "job_id", job_ids[i])
        fill(job, "submit_time", submit[i])
        fill(job, "nodes", nodes[i])
        fill(job, "runtime", runtime[i])
        fill(job, "estimate", est[i] if has_est[i] else None)
        fill(job, "user", users[i])
        fill(job, "weight", wt[i] if has_wt[i] else None)
        meta = get_meta(i)
        fill(job, "meta", {} if meta is None else meta)
        append(job)
    return tuple(out)


def fingerprint_packed(packed: PackedJobs) -> str:
    """Streaming content digest of a packed stream.

    Feeds the hasher one canonical record at a time straight from the
    columns — no :class:`Job` materialisation, no monolithic concatenated
    string — and produces *exactly* the digest
    :func:`repro.experiments.engine.fingerprint_jobs` computes for the
    unpacked stream (both feed :func:`job_record` lines into SHA-256).
    """
    hasher = hashlib.sha256()
    for record in packed.records():
        hasher.update(record.encode("ascii"))
    return hasher.hexdigest()

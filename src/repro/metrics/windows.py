"""Per-time-window objective evaluation.

Example 5's two objectives apply in different time windows, so evaluating
a combined scheduler requires conditioning each objective on its window:
daytime ART over the jobs the daytime rule governs, night AWRT over the
rest.  We attribute a job to the window containing its *submission* —
that is when the scheduling system decides under which rule the job is
handled (a job submitted at 7pm is a daytime job even if it finishes at
2am).  Attribution by completion is available for sensitivity checks.
"""

from __future__ import annotations

from typing import Literal

from repro.core.schedule import Schedule
from repro.metrics.objectives import (
    average_response_time,
    average_weighted_response_time,
)
from repro.schedulers.regimes import TimeWindow

Attribution = Literal["submit", "completion"]


def filter_by_window(
    schedule: Schedule,
    window: TimeWindow,
    *,
    inside: bool = True,
    attribution: Attribution = "submit",
) -> Schedule:
    """Sub-schedule of jobs attributed to (or outside) the window."""
    def anchor(item) -> float:
        return item.job.submit_time if attribution == "submit" else item.end_time

    return Schedule(
        item for item in schedule if window.contains(anchor(item)) == inside
    )


def windowed_art(
    schedule: Schedule, window: TimeWindow, *, attribution: Attribution = "submit"
) -> float:
    """ART over the jobs inside the window (Rule 5's objective)."""
    return average_response_time(
        filter_by_window(schedule, window, inside=True, attribution=attribution)
    )


def windowed_awrt(
    schedule: Schedule, window: TimeWindow, *, attribution: Attribution = "submit"
) -> float:
    """AWRT over the jobs outside the window (Rule 6's objective)."""
    return average_weighted_response_time(
        filter_by_window(schedule, window, inside=False, attribution=attribution)
    )

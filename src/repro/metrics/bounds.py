"""Theoretical lower bounds on schedule cost (Section 2.3).

"Occasionally, this [theoretical] method is used to determine lower bounds
for schedules.  These lower bounds can provide an estimate for a potential
improvement of the schedule by switching to a different algorithm."

This module implements classical lower bounds applicable to the paper's
setting (rigid jobs, release dates, space sharing, no preemption) and an
*empirical competitiveness* report relating a measured schedule to them.

All bounds rest on the **squashed single-machine relaxation**: replace the
``m``-node machine by one processor of speed ``m`` node-seconds per second
(processor sharing allowed) and each rigid job by a task of length
``area_j / m``.  Any valid parallel schedule induces a feasible squashed
schedule with identical completion times (the parallel machine never does
more than ``m`` node-seconds of work per second), so optima of the
relaxation bound every real schedule from below:

* :func:`makespan_lower_bound` — max of the area bound and the
  longest-single-job bound;
* :func:`srpt_squashed_bound` — optimal mean response of the relaxation
  with release dates, computed exactly by SRPT (optimal for
  ``1 | r_j, pmtn | sum C_j``);
* :func:`smith_squashed_bound` — optimal total *weighted* completion time
  of the release-free relaxation via Smith's rule (optimal for
  ``1 || sum w_j C_j``, Smith [19]; with release dates the weighted
  problem is NP-hard, so the release-free optimum is used and release
  dates are subtracted on the outside);
* :func:`art_lower_bound` / :func:`awrt_lower_bound` — the trivial
  per-job bounds (``response >= runtime``), always valid, used as floors.

These power :func:`improvement_potential`, the Section 2.3 estimate of how
much headroom a better algorithm could still have.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from repro.core.job import Job
from repro.core.schedule import Schedule
from repro.schedulers.weights import WeightFn, area_weight


def makespan_lower_bound(jobs: Sequence[Job], total_nodes: int) -> float:
    """Max of area and longest-job bounds on the makespan."""
    if not jobs:
        return 0.0
    first_release = min(j.submit_time for j in jobs)
    area_bound = first_release + sum(j.area for j in jobs) / total_nodes
    job_bound = max(j.submit_time + j.runtime for j in jobs)
    return max(area_bound, job_bound)


def art_lower_bound(jobs: Sequence[Job]) -> float:
    """Trivial ART bound: every response is at least the job's runtime."""
    if not jobs:
        return 0.0
    return sum(j.runtime for j in jobs) / len(jobs)


def awrt_lower_bound(jobs: Sequence[Job], weight: WeightFn = area_weight) -> float:
    """Trivial AWRT bound: ``sum(w_j * p_j) / n``."""
    if not jobs:
        return 0.0
    return sum(weight(j) * j.runtime for j in jobs) / len(jobs)


def srpt_squashed_bound(jobs: Sequence[Job], total_nodes: int) -> float:
    """Mean response of SRPT on the squashed relaxation (a valid ART bound).

    SRPT (shortest remaining processing time) is optimal for
    ``1 | r_j, pmtn | sum C_j``; with lengths ``area_j / m`` and the real
    release dates, its mean flow time lower-bounds the ART of every valid
    schedule of the original instance, capturing contention that the
    per-job bound misses.  Exact event-driven simulation, O(n log n).
    """
    if not jobs:
        return 0.0
    releases = sorted(
        ((j.submit_time, j.area / total_nodes, j.job_id) for j in jobs)
    )
    n = len(releases)
    heap: list[tuple[float, int, float]] = []  # (remaining, id, release)
    total_response = 0.0
    clock = releases[0][0]
    idx = 0
    while idx < n or heap:
        if not heap:
            clock = max(clock, releases[idx][0])
        # Admit everything released by `clock`.
        while idx < n and releases[idx][0] <= clock:
            r, length, job_id = releases[idx]
            heapq.heappush(heap, (length, job_id, r))
            idx += 1
        remaining, job_id, release = heapq.heappop(heap)
        next_release = releases[idx][0] if idx < n else float("inf")
        if clock + remaining <= next_release:
            clock += remaining
            total_response += clock - release
        else:
            worked = next_release - clock
            clock = next_release
            heapq.heappush(heap, (remaining - worked, job_id, release))
    return total_response / n


def smith_squashed_bound(
    jobs: Sequence[Job], total_nodes: int, weight: WeightFn = area_weight
) -> float:
    """Optimal ``sum w_j C_j`` of the release-free squashed relaxation.

    Smith's rule (largest ``w/p`` first) is optimal for
    ``1 || sum w_j C_j``; dropping release dates only lowers the optimum,
    so the result bounds the total weighted completion time of every valid
    schedule.  Returns the *total* (not mean) so callers can subtract
    ``sum w_j r_j`` when bounding weighted response.
    """
    if not jobs:
        return 0.0
    tasks = [(j.area / total_nodes, weight(j)) for j in jobs]

    def ratio(entry: tuple[float, float]) -> float:
        length, w = entry
        return float("inf") if length == 0 else w / length

    tasks.sort(key=ratio, reverse=True)
    clock = 0.0
    cost = 0.0
    for length, w in tasks:
        clock += length
        cost += w * clock
    return cost


@dataclass(frozen=True, slots=True)
class ImprovementPotential:
    """Section 2.3's 'potential improvement' estimate for one schedule."""

    measured: float
    lower_bound: float

    @property
    def ratio(self) -> float:
        """Measured cost over the bound — an empirical competitive ratio
        (>= 1 up to bound looseness)."""
        if self.lower_bound == 0:
            return float("inf") if self.measured > 0 else 1.0
        return self.measured / self.lower_bound

    @property
    def headroom(self) -> float:
        """Fraction of the measured cost that a better algorithm could at
        most remove (0 when the schedule already meets the bound)."""
        if self.measured == 0:
            return 0.0
        return max(0.0, 1.0 - self.lower_bound / self.measured)


def improvement_potential(
    schedule: Schedule,
    jobs: Sequence[Job],
    total_nodes: int,
    *,
    weighted: bool = False,
) -> ImprovementPotential:
    """Relate a measured schedule cost to the best applicable lower bound."""
    from repro.metrics.objectives import (
        average_response_time,
        average_weighted_response_time,
    )

    if weighted:
        measured = average_weighted_response_time(schedule)
        # Bound weighted *response*: subtract the release contribution from
        # the completion-time bound, floor at the per-job bound.
        release_term = sum(area_weight(j) * j.submit_time for j in jobs)
        completion_bound = smith_squashed_bound(jobs, total_nodes)
        n = max(len(jobs), 1)
        bound = max(
            awrt_lower_bound(jobs),
            (completion_bound - release_term) / n,
        )
    else:
        measured = average_response_time(schedule)
        bound = max(art_lower_bound(jobs), srpt_squashed_bound(jobs, total_nodes))
    return ImprovementPotential(measured=measured, lower_bound=bound)

"""Objective functions and schedule metrics (Sections 2.2 and 4).

The paper's two evaluation objectives:

* :func:`average_response_time` — "the sum of the differences between the
  completion time and submission time for each job divided by the number of
  jobs" (weekday daytime, Rule 5 of Example 5);
* :func:`average_weighted_response_time` — the same with each difference
  multiplied by the job's resource consumption (nights/weekends, Rule 6,
  chosen because the sum of idle times "does not support on-line
  scheduling" and the makespan "is mainly an off-line criterion").

Plus the criteria the administrator considered and rejected
(:func:`makespan`, :func:`idle_node_seconds`) and the usual companions from
the job scheduling literature (utilisation, wait, slowdown), all usable as
criterion functions in the :mod:`repro.policy` framework.
"""

from repro.metrics.objectives import (
    average_bounded_slowdown,
    average_response_time,
    average_wait_time,
    average_weighted_response_time,
    idle_node_seconds,
    makespan,
    total_weighted_completion_time,
    utilisation,
)
from repro.metrics.bounds import (
    ImprovementPotential,
    art_lower_bound,
    awrt_lower_bound,
    improvement_potential,
    makespan_lower_bound,
    smith_squashed_bound,
    srpt_squashed_bound,
)
from repro.metrics.windows import (
    filter_by_window,
    windowed_art,
    windowed_awrt,
)
from repro.metrics.classes import (
    class_breakdown,
    class_compute_share,
    class_response_time,
    format_class_breakdown,
)

__all__ = [
    "ImprovementPotential",
    "art_lower_bound",
    "average_bounded_slowdown",
    "average_response_time",
    "average_wait_time",
    "average_weighted_response_time",
    "awrt_lower_bound",
    "class_breakdown",
    "class_compute_share",
    "class_response_time",
    "filter_by_window",
    "format_class_breakdown",
    "idle_node_seconds",
    "improvement_potential",
    "makespan",
    "makespan_lower_bound",
    "smith_squashed_bound",
    "srpt_squashed_bound",
    "total_weighted_completion_time",
    "utilisation",
    "windowed_art",
    "windowed_awrt",
]

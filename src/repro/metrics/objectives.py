"""Scalar objective functions over finished schedules.

Every function maps a :class:`~repro.core.schedule.Schedule` to one number
(the paper's *schedule cost*, Section 2.2) so that schedules can be ranked
mechanically.  Lower is better for all functions except
:func:`utilisation`.
"""

from __future__ import annotations

from typing import Callable

from repro.core.job import Job
from repro.core.schedule import Schedule
from repro.schedulers.weights import WeightFn, area_weight


def average_response_time(schedule: Schedule) -> float:
    """Mean of (completion - submission) over all jobs — the paper's ART.

    The unweighted daytime objective of Example 5 ("all jobs should be
    treated equally independent of their resource consumption").
    """
    if len(schedule) == 0:
        return 0.0
    return sum(item.response_time for item in schedule) / len(schedule)


def average_weighted_response_time(
    schedule: Schedule, weight: WeightFn = area_weight
) -> float:
    """Weight-normalised mean response time — the paper's AWRT.

    Each response time is multiplied by the job's weight (resource
    consumption, ``nodes * runtime``, by default) and the sum is divided by
    the number of jobs, matching the paper's "calculated in the same fashion
    as the average response time … multiplied with the weight of this job".
    The absolute magnitudes of Tables 3–6 (1e11-ish for ~1e5 jobs) confirm
    the sum is divided by the job count, not by the total weight.
    """
    if len(schedule) == 0:
        return 0.0
    return (
        sum(item.response_time * weight(item.job) for item in schedule)
        / len(schedule)
    )


def makespan(schedule: Schedule) -> float:
    """Latest completion time — considered and rejected in Section 4
    ("mainly an off-line criterion")."""
    return schedule.makespan


def total_weighted_completion_time(
    schedule: Schedule, weight: WeightFn = area_weight
) -> float:
    """Sum of weight * completion time — the classical theory objective that
    Smith's rule optimises on one machine."""
    return sum(item.end_time * weight(item.job) for item in schedule)


def idle_node_seconds(
    schedule: Schedule,
    total_nodes: int,
    frame_start: float | None = None,
    frame_end: float | None = None,
) -> float:
    """Sum of idle node-seconds within a time frame (Rule 6's first candidate;
    rejected because "it is based on a time frame" and therefore off-line).

    The frame defaults to ``[first submission, makespan]``.
    """
    if len(schedule) == 0:
        return 0.0
    start = schedule.first_submission if frame_start is None else frame_start
    end = schedule.makespan if frame_end is None else frame_end
    if end <= start:
        return 0.0
    busy = 0.0
    for item in schedule:
        lo = max(item.start_time, start)
        hi = min(item.end_time, end)
        if hi > lo:
            busy += (hi - lo) * item.job.nodes
    return (end - start) * total_nodes - busy


def utilisation(
    schedule: Schedule,
    total_nodes: int,
    frame_start: float | None = None,
    frame_end: float | None = None,
) -> float:
    """Fraction of node-seconds doing work within the frame (higher is better)."""
    if len(schedule) == 0:
        return 0.0
    start = schedule.first_submission if frame_start is None else frame_start
    end = schedule.makespan if frame_end is None else frame_end
    if end <= start:
        return 0.0
    capacity = (end - start) * total_nodes
    return 1.0 - idle_node_seconds(schedule, total_nodes, start, end) / capacity


def average_wait_time(schedule: Schedule) -> float:
    """Mean of (start - submission)."""
    if len(schedule) == 0:
        return 0.0
    return sum(item.wait_time for item in schedule) / len(schedule)


def average_bounded_slowdown(schedule: Schedule, threshold: float = 10.0) -> float:
    """Mean bounded slowdown: response / max(runtime, threshold), floored at 1.

    Not used by the paper but standard in the JSSPP literature that follows
    it; the threshold damps the exploding slowdowns of near-zero-runtime
    jobs.
    """
    if len(schedule) == 0:
        return 0.0
    total = 0.0
    for item in schedule:
        denom = max(item.job.runtime, threshold)
        total += max(1.0, item.response_time / denom)
    return total / len(schedule)


#: Signature shared by schedule-cost functions usable as policy criteria.
ObjectiveFn = Callable[[Schedule], float]

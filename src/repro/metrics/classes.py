"""Per-class criterion functions (Example 1's rule set, measurable).

Example 1's rules reference job *categories* — the drug design lab, the
chemistry department, the university, industrial partners — and Section
2.2 demands that every policy rule map to a single-criterion function.
These are those functions, for workloads whose jobs carry a
``meta['class']`` label:

* :func:`class_response_time` — mean response of one class (Rule 1's
  "as soon as possible" for the drug design lab);
* :func:`class_compute_share` — fraction of delivered node-seconds
  consumed by one class (Rule 4's "computation time sold to industry");
* :func:`class_breakdown` — the full per-class table.

Classless jobs fall into the ``None`` class; all functions are usable as
:class:`repro.policy.rules.Criterion` evaluators via ``functools.partial``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.schedule import Schedule


def _label(item) -> str | None:
    return item.job.meta.get("class")


def class_response_time(schedule: Schedule, job_class: str | None) -> float:
    """Mean response time of jobs in one class (0 when the class is empty)."""
    items = [i for i in schedule if _label(i) == job_class]
    if not items:
        return 0.0
    return sum(i.response_time for i in items) / len(items)


def class_compute_share(schedule: Schedule, job_class: str | None) -> float:
    """Share of delivered node-seconds consumed by one class.

    'Delivered' means realised execution (``nodes * runtime``), the
    quantity Example 1's industry quota would be accounted in.
    """
    total = sum(i.job.area for i in schedule)
    if total == 0:
        return 0.0
    mine = sum(i.job.area for i in schedule if _label(i) == job_class)
    return mine / total


@dataclass(frozen=True, slots=True)
class ClassRow:
    """Per-class aggregate record."""

    job_class: str | None
    jobs: int
    mean_response: float
    mean_wait: float
    compute_share: float


def class_breakdown(schedule: Schedule) -> list[ClassRow]:
    """Per-class table, ordered by descending compute share."""
    groups: dict[str | None, list] = {}
    for item in schedule:
        groups.setdefault(_label(item), []).append(item)
    total_area = sum(i.job.area for i in schedule) or 1.0
    rows = [
        ClassRow(
            job_class=label,
            jobs=len(items),
            mean_response=sum(i.response_time for i in items) / len(items),
            mean_wait=sum(i.wait_time for i in items) / len(items),
            compute_share=sum(i.job.area for i in items) / total_area,
        )
        for label, items in groups.items()
    ]
    rows.sort(key=lambda r: -r.compute_share)
    return rows


def format_class_breakdown(rows: list[ClassRow]) -> str:
    lines = [
        f"{'class':<14}{'jobs':>6}{'mean resp (s)':>15}{'mean wait (s)':>15}{'share':>8}"
    ]
    for row in rows:
        label = row.job_class if row.job_class is not None else "(none)"
        lines.append(
            f"{label:<14}{row.jobs:>6}{row.mean_response:>15.0f}"
            f"{row.mean_wait:>15.0f}{row.compute_share:>8.1%}"
        )
    return "\n".join(lines)

"""Fluid gang-scheduling simulator and the FCFS-gang policy of [15].

Semantics (see the package docstring): jobs live in slots; all non-empty
slots share the machine's time equally, so every running job progresses at
rate ``1/k`` where ``k`` is the number of populated slots.  FCFS-gang puts
each arriving job into the lowest-numbered slot with enough free nodes,
else opens a new slot.  Slots never exchange jobs; an emptied slot stops
counting toward ``k``.

The simulation is event driven over arrivals and completions and is exact
for the fluid model: between events every rate is constant, so remaining
work decreases linearly and the earliest completion is
``min(remaining) * k`` wall seconds away.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.job import Job, validate_stream


class GangValidityError(ValueError):
    """Raised when a gang schedule violates the slot-capacity rules."""


@dataclass(frozen=True, slots=True)
class GangScheduledJob:
    """Realised gang execution of one job."""

    job: Job
    slot: int
    start_time: float
    end_time: float

    @property
    def response_time(self) -> float:
        return self.end_time - self.job.submit_time

    @property
    def stretch(self) -> float:
        """Wall time in service over pure runtime (>= 1 under time sharing)."""
        if self.job.runtime == 0:
            return 1.0
        return (self.end_time - self.start_time) / self.job.runtime


class GangResult:
    """Outcome of a gang-scheduled run."""

    __slots__ = ("jobs", "max_slots", "total_nodes")

    def __init__(
        self, jobs: Iterable[GangScheduledJob], max_slots: int, total_nodes: int
    ) -> None:
        self.jobs = tuple(jobs)
        self.max_slots = max_slots
        self.total_nodes = total_nodes

    def __len__(self) -> int:
        return len(self.jobs)

    def __getitem__(self, job_id: int) -> GangScheduledJob:
        for item in self.jobs:
            if item.job.job_id == job_id:
                return item
        raise KeyError(job_id)

    @property
    def makespan(self) -> float:
        return max((j.end_time for j in self.jobs), default=0.0)

    def average_response_time(self) -> float:
        if not self.jobs:
            return 0.0
        return sum(j.response_time for j in self.jobs) / len(self.jobs)

    def average_weighted_response_time(self) -> float:
        if not self.jobs:
            return 0.0
        return (
            sum(j.response_time * j.job.effective_weight for j in self.jobs)
            / len(self.jobs)
        )

    def validate(self) -> None:
        """Check the slot-capacity invariant and per-job sanity.

        Jobs never migrate between slots, so per-slot capacity is checked
        with an interval sweep over each slot's members.  Time sharing
        means stretches are at least 1 (every job needs at least its
        runtime of wall time).
        """
        by_slot: dict[int, list[GangScheduledJob]] = {}
        for item in self.jobs:
            if item.start_time < item.job.submit_time:
                raise GangValidityError(
                    f"job {item.job.job_id} starts before its submission"
                )
            if item.end_time - item.start_time < item.job.runtime - 1e-6:
                raise GangValidityError(
                    f"job {item.job.job_id} received less service than its runtime"
                )
            by_slot.setdefault(item.slot, []).append(item)
        for slot, members in by_slot.items():
            events: list[tuple[float, int, int]] = []
            for item in members:
                if item.end_time > item.start_time:
                    events.append((item.start_time, 1, item.job.nodes))
                    events.append((item.end_time, 0, -item.job.nodes))
            events.sort()
            used = 0
            for _t, _tag, delta in events:
                used += delta
                if used > self.total_nodes:
                    raise GangValidityError(
                        f"slot {slot} exceeds machine capacity ({used} nodes)"
                    )


def fcfs_gang_schedule(
    jobs: Sequence[Job],
    total_nodes: int,
    *,
    max_slots: int | None = None,
) -> GangResult:
    """Run the FCFS gang scheduler of [15] over a job stream.

    ``max_slots`` caps the multiprogramming level (a common real-system
    limit); arriving jobs that fit no slot wait in FCFS order for a slot
    to make room.  ``None`` means unbounded slots — every job starts the
    moment it arrives, the purely time-shared regime.
    """
    stream = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
    validate_stream(list(stream))
    for job in stream:
        if job.nodes > total_nodes:
            raise ValueError(
                f"job {job.job_id} needs {job.nodes} nodes on a "
                f"{total_nodes}-node machine"
            )
    if max_slots is not None and max_slots < 1:
        raise ValueError("max_slots must be at least 1")

    # Slot state: stable ids, free node counts, member remaining work.
    slot_free: dict[int, int] = {}
    slot_members: dict[int, dict[int, float]] = {}   # slot -> {job_id: remaining}
    job_slot: dict[int, int] = {}
    job_info: dict[int, Job] = {j.job_id: j for j in stream}
    starts: dict[int, float] = {}
    finished: list[GangScheduledJob] = []
    waiting: list[Job] = []
    next_slot_id = 0
    peak_slots = 0
    clock = stream[0].submit_time if stream else 0.0
    idx = 0
    n = len(stream)

    def active_slots() -> int:
        return sum(1 for members in slot_members.values() if members)

    def try_place(job: Job, now: float) -> bool:
        nonlocal next_slot_id
        for slot in sorted(slot_members):
            if slot_free[slot] >= job.nodes:
                _admit(slot, job, now)
                return True
        if max_slots is None or len(slot_members) < max_slots:
            slot = next_slot_id
            next_slot_id += 1
            slot_free[slot] = total_nodes
            slot_members[slot] = {}
            _admit(slot, job, now)
            return True
        return False

    def _admit(slot: int, job: Job, now: float) -> None:
        slot_free[slot] -= job.nodes
        slot_members[slot][job.job_id] = job.runtime
        job_slot[job.job_id] = slot
        starts[job.job_id] = now

    def advance(delta: float) -> None:
        """Progress every running job by wall time ``delta``."""
        k = active_slots()
        if k == 0 or delta <= 0:
            return
        rate = 1.0 / k
        for members in slot_members.values():
            for job_id in members:
                members[job_id] -= delta * rate

    def pop_completions(now: float) -> None:
        for slot in list(slot_members):
            members = slot_members[slot]
            done = [job_id for job_id, rem in members.items() if rem <= 1e-9]
            for job_id in done:
                del members[job_id]
                job = job_info[job_id]
                slot_free[slot] += job.nodes
                finished.append(
                    GangScheduledJob(
                        job=job, slot=slot, start_time=starts[job_id], end_time=now
                    )
                )
            if not members:
                del slot_members[slot]
                del slot_free[slot]

    while idx < n or any(slot_members.values()) or waiting:
        k = active_slots()
        next_arrival = stream[idx].submit_time if idx < n else float("inf")
        if k == 0:
            # Nothing running: jump to the next arrival (waiting jobs can
            # only exist when slots are full, which requires k > 0).
            clock = max(clock, next_arrival)
        else:
            min_remaining = min(
                rem for members in slot_members.values() for rem in members.values()
            )
            next_completion = clock + min_remaining * k
            next_time = min(next_completion, next_arrival)
            advance(next_time - clock)
            clock = next_time
        pop_completions(clock)
        # Admit waiting jobs in FCFS order now that slots may have room.
        still_waiting: list[Job] = []
        for job in waiting:
            if not try_place(job, clock):
                still_waiting.append(job)
        waiting = still_waiting
        # Admit newly arrived jobs.
        while idx < n and stream[idx].submit_time <= clock:
            job = stream[idx]
            idx += 1
            if not try_place(job, clock):
                waiting.append(job)
        peak_slots = max(peak_slots, len(slot_members))

    return GangResult(finished, max_slots=peak_slots, total_nodes=total_nodes)

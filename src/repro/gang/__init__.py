"""Gang scheduling substrate (the paper's reference [15]).

The paper's target machine "does not allow time sharing", which rules out
gang scheduling and PSRS's preemptive schedules — but the paper leans on
Schwiegelshohn & Yahyapour, *Improving first-come-first-serve job
scheduling by gang scheduling* (JSSPP'98) [15] when arguing that FCFS "may
produce acceptable results for certain workloads".  This package makes the
comparison concrete: a time-sliced machine model and an FCFS gang
scheduler, so the no-time-sharing design decision of Example 5 can itself
be evaluated (the Section 2.3 constraint "schedule restrictions given by
the system, like the availability of ... gang scheduling").

The model follows the slot semantics of [15]:

* the machine's time is shared between *slots*; each slot holds a set of
  jobs that jointly fit the machine and always run concurrently (a gang);
* with ``k`` populated slots, every job progresses at rate ``1/k``
  (fluid/processor-sharing idealisation of round-robin time slices — the
  standard analysis model, which [15] also uses for its bounds);
* FCFS-gang assigns each arriving job to the first slot with room, or
  opens a new slot; empty slots disappear, restoring full speed to the
  rest.

Because gang-scheduled jobs stretch over time, the non-preemptive
:class:`repro.core.schedule.Schedule` validity rules do not apply; this
package ships its own result record and validity checker.
"""

from repro.gang.simulator import (
    GangResult,
    GangScheduledJob,
    GangValidityError,
    fcfs_gang_schedule,
)

__all__ = [
    "GangResult",
    "GangScheduledJob",
    "GangValidityError",
    "fcfs_gang_schedule",
]

"""The built-in scenario components.

Each class replaces one previously ad-hoc disturbance wiring:

* :class:`FeedbackUsers` — the closed-loop population of
  :mod:`repro.workloads.feedback`, re-expressed as an arrival component
  (the realized trace *is* the workload);
* :class:`LoadSurge` — a seeded flash crowd folded into the stream (the
  genuinely new component proving the algebra is open);
* :class:`RuntimeVariability` — runtime/estimate perturbation plus the
  estimate-limit kill policy that used to ride on
  ``SimulationConfig(cancel_over_limit=True)``;
* :class:`CancellationModel` — the rate-based stream of
  :func:`repro.workloads.transforms.random_cancellations`;
* :class:`FailureModel` — :func:`repro.failures.trace.mtbf_trace` (or an
  explicit event list) plus the recovery policy spec.

All heavy imports happen inside ``apply`` so importing the algebra stays
cheap and numpy-free (the closed-loop generator needs numpy; a spec that
never uses :class:`FeedbackUsers` never imports it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.scenarios.base import (
    CompileState,
    ScenarioComponent,
    register_component,
)


class ArrivalModel(ScenarioComponent):
    """Marker base for components that create or extend the job stream."""


def _derived_horizon(state: CompileState) -> float:
    """Deterministic trace horizon when a component leaves it implicit:
    the last submission plus twice the longest estimated runtime."""
    if not state.jobs:
        raise ValueError(
            "cannot derive a horizon from an empty stream; set horizon= "
            "explicitly on the component"
        )
    last = max(job.submit_time for job in state.jobs)
    longest = max(job.estimated_runtime for job in state.jobs)
    return last + 2.0 * max(longest, 1.0)


@register_component
@dataclass(frozen=True)
class FeedbackUsers(ArrivalModel):
    """Closed-loop user population; its realized trace replaces the stream.

    The population is co-simulated once against a *reference* scheduler
    (registry key, default the paper's FCFS+EASY baseline) and the
    realized trace then plays open-loop against every grid cell — exactly
    how ``run_closed_loop(...).trace`` was wired by hand before.
    """

    kind: ClassVar[str] = "feedback-users"
    phase: ClassVar[str] = "arrive"
    FLOAT_FIELDS: ClassVar[tuple[str, ...]] = (
        "horizon", "mean_think_time", "balk_slowdown",
    )

    n_users: int = 8
    horizon: float = 50_000.0
    mean_think_time: float = 1800.0
    balk_slowdown: float | None = None
    #: Registry key ("row/column") of the reference scheduler the
    #: population reacts to while the trace is realized.
    reference: str = "fcfs/easy"
    total_nodes: int = 256
    seed: int | None = None

    def apply(self, state: CompileState) -> None:
        from repro.schedulers.registry import SchedulerConfig, build_scheduler
        from repro.workloads.feedback import default_population, run_closed_loop

        row, _, column = self.reference.partition("/")
        if not column:
            raise ValueError(
                f"reference must be a 'row/column' registry key, "
                f"got {self.reference!r}"
            )
        seed = self.seed if self.seed is not None else state.component_seed
        users = default_population(
            self.n_users,
            seed=seed,
            mean_think_time=self.mean_think_time,
            balk_slowdown=self.balk_slowdown,
        )
        result = run_closed_loop(
            users,
            build_scheduler(SchedulerConfig(row=row, column=column), self.total_nodes),
            self.total_nodes,
            horizon=self.horizon,
            seed=seed,
        )
        state.jobs = list(result.trace)


@register_component
@dataclass(frozen=True)
class LoadSurge(ArrivalModel):
    """A flash crowd: ``count`` extra jobs arriving within one window.

    Surge jobs take ids above the base stream's maximum (base ids — and
    any cancellations referencing them — stay valid) and the merged
    stream is re-sorted by ``(submit_time, job_id)``.
    """

    kind: ClassVar[str] = "load-surge"
    phase: ClassVar[str] = "augment"
    FLOAT_FIELDS: ClassVar[tuple[str, ...]] = (
        "at", "duration", "runtime_median", "runtime_sigma", "estimate_slack",
    )

    at: float = 0.0
    duration: float = 600.0
    count: int = 50
    max_nodes: int = 8
    runtime_median: float = 600.0
    runtime_sigma: float = 0.5
    #: Estimates are ``runtime * Uniform(1, estimate_slack)``.
    estimate_slack: float = 2.0
    user: int = 9_999
    seed: int | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.count < 0:
            raise ValueError(f"count must be non-negative, got {self.count}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.max_nodes < 1:
            raise ValueError(f"max_nodes must be at least 1, got {self.max_nodes}")
        if self.estimate_slack < 1.0:
            raise ValueError(
                f"estimate_slack must be at least 1, got {self.estimate_slack}"
            )

    def apply(self, state: CompileState) -> None:
        import math
        import random

        from repro.core.job import Job

        rng = random.Random(
            self.seed if self.seed is not None else state.component_seed
        )
        next_id = max((job.job_id for job in state.jobs), default=-1) + 1
        surge = []
        for offset in range(self.count):
            runtime = max(
                self.runtime_median
                * math.exp(self.runtime_sigma * rng.gauss(0.0, 1.0)),
                1.0,
            )
            surge.append(
                Job(
                    job_id=next_id + offset,
                    submit_time=self.at + rng.uniform(0.0, self.duration),
                    nodes=rng.randint(1, self.max_nodes),
                    runtime=runtime,
                    estimate=runtime * rng.uniform(1.0, self.estimate_slack),
                    user=self.user,
                )
            )
        state.jobs = sorted(
            [*state.jobs, *surge], key=lambda j: (j.submit_time, j.job_id)
        )


@register_component
@dataclass(frozen=True)
class RuntimeVariability(ScenarioComponent):
    """Perturb runtimes/estimates and optionally kill jobs at their limit.

    ``sigma`` applies a lognormal multiplicative factor to each runtime
    (estimates untouched, so jobs may overrun their declared limit);
    ``estimate_sigma`` rescrambles estimates exactly like
    :func:`repro.workloads.transforms.with_noisy_estimates`;
    ``enforce_limit`` turns on the estimate-limit kill policy — the
    compiled form of ``SimulationConfig(cancel_over_limit=True)``.
    """

    kind: ClassVar[str] = "runtime-variability"
    phase: ClassVar[str] = "transform"
    FLOAT_FIELDS: ClassVar[tuple[str, ...]] = ("sigma", "estimate_sigma")

    sigma: float = 0.0
    estimate_sigma: float = 0.0
    enforce_limit: bool = False
    seed: int | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.sigma < 0 or self.estimate_sigma < 0:
            raise ValueError("sigma and estimate_sigma must be non-negative")

    def apply(self, state: CompileState) -> None:
        seed = self.seed if self.seed is not None else state.component_seed
        if self.sigma > 0.0:
            import math
            import random
            from dataclasses import replace

            rng = random.Random(seed)
            state.jobs = [
                replace(
                    job,
                    runtime=max(
                        job.runtime * math.exp(rng.gauss(0.0, self.sigma)), 1e-9
                    ),
                )
                for job in state.jobs
            ]
        if self.estimate_sigma > 0.0:
            from repro.workloads.transforms import with_noisy_estimates

            state.jobs = with_noisy_estimates(
                state.jobs, self.estimate_sigma, seed=seed
            )
        if self.enforce_limit:
            state.cancel_over_limit = True


@register_component
@dataclass(frozen=True)
class CancellationModel(ScenarioComponent):
    """Cancel a random fraction of the (final) stream.

    Delegates to :func:`repro.workloads.transforms.random_cancellations`,
    so a spec with an explicit ``seed`` is bit-identical to the hand-built
    stream ``random_cancellations(jobs, fraction, seed)``.  Runs in the
    disturb phase: it always sees the stream *after* arrival and surge
    components, whatever order the spec listed them in.
    """

    kind: ClassVar[str] = "cancellations"
    phase: ClassVar[str] = "disturb"
    FLOAT_FIELDS: ClassVar[tuple[str, ...]] = ("fraction",)

    fraction: float = 0.1
    seed: int | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(f"fraction must be within [0, 1], got {self.fraction}")

    def apply(self, state: CompileState) -> None:
        from repro.workloads.transforms import random_cancellations

        state.cancellations.extend(
            random_cancellations(
                state.jobs,
                self.fraction,
                seed=self.seed if self.seed is not None else state.component_seed,
            )
        )


@register_component
@dataclass(frozen=True)
class FailureModel(ScenarioComponent):
    """Node failures plus the recovery policy.

    Either an explicit ``trace`` of ``(down_time, up_time, nodes)``
    triples (targeted scenarios; the legacy-kwarg translation) or the
    seeded MTBF/MTTR renewal model of
    :func:`repro.failures.trace.mtbf_trace` — equal seeds produce
    byte-identical traces (equal :meth:`FailureTrace.fingerprint`).
    ``horizon=None`` derives the sampling horizon from the compiled
    stream (last submission plus twice the longest estimate).
    """

    kind: ClassVar[str] = "failures"
    phase: ClassVar[str] = "disturb"
    FLOAT_FIELDS: ClassVar[tuple[str, ...]] = (
        "mtbf", "mttr", "horizon", "max_down_fraction",
    )

    mtbf: float | None = None
    mttr: float = 3600.0
    horizon: float | None = None
    max_nodes_per_failure: int = 1
    max_down_fraction: float = 0.5
    total_nodes: int = 256
    #: Explicit failure events as (down_time, up_time, nodes) triples;
    #: mutually exclusive with ``mtbf``.
    trace: tuple[tuple[float, float, int], ...] = ()
    recovery: str | None = None
    seed: int | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(
            self,
            "trace",
            tuple(
                (float(down), float(up), int(nodes))
                for down, up, nodes in self.trace
            ),
        )
        if self.mtbf is not None and self.trace:
            raise ValueError("pass either mtbf= or an explicit trace=, not both")

    def apply(self, state: CompileState) -> None:
        from repro.failures.trace import FailureTrace, NodeFailure, mtbf_trace

        trace: FailureTrace | None = None
        if self.trace:
            trace = FailureTrace(
                NodeFailure(down_time=down, up_time=up, nodes=nodes)
                for down, up, nodes in self.trace
            )
        elif self.mtbf is not None:
            trace = mtbf_trace(
                total_nodes=self.total_nodes,
                horizon=(
                    self.horizon
                    if self.horizon is not None
                    else _derived_horizon(state)
                ),
                mtbf=self.mtbf,
                mttr=self.mttr,
                seed=self.seed if self.seed is not None else state.component_seed,
                max_nodes_per_failure=self.max_nodes_per_failure,
                max_down_fraction=self.max_down_fraction,
            )
        if state.failures is not None:
            raise ValueError(
                "a spec supports at most one FailureModel; merge the traces "
                "into one component instead"
            )
        if trace is not None and len(trace):
            state.failures = trace
        if self.recovery is not None:
            from repro.failures.recovery import recovery_from_spec

            # Canonicalize (and fail fast on malformed specs) at compile
            # time, before the spec reaches fingerprints or workers.
            state.recovery = recovery_from_spec(self.recovery).spec

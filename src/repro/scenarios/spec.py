"""``ScenarioSpec`` — the declarative, digestable scenario container.

``ScenarioSpec.compile(jobs, seed)`` is a *pure function*: equal
``(spec, jobs, seed)`` always produce byte-identical compiled scenarios —
same job stream, same cancellation events, same failure-trace fingerprint
— across processes, pickle round-trips and simulation backends.  That
purity is what lets the experiment engine fingerprint a cell as
``(jobs digest, scenario digest, grid axes)`` and trust the cache.

``digest()`` hashes the *canonical* form: components sorted into
execution order with default-valued fields dropped, so neither the order
a spec was written in nor spelling out defaults changes a cell's cache
identity (see docs/architecture.md, "Scenario algebra").
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from repro.scenarios.base import (
    CompileState,
    ScenarioComponent,
    canonical_components,
    component_from_dict,
    component_seed,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.job import Job
    from repro.core.simulator import ScenarioInputs
    from repro.failures.trace import FailureTrace


@dataclass(frozen=True)
class CompiledScenario:
    """The output of :meth:`ScenarioSpec.compile`.

    ``jobs`` is the final event stream (arrival and transform components
    folded in), ``inputs`` the simulator-ready disturbance bundle, and
    ``cancel_over_limit`` the compiled estimate-limit kill flag.  The
    :class:`~repro.core.simulator.Simulator` consumes all three when a
    spec is passed as ``scenario=``; the engine additionally feeds
    ``digest`` into every cell fingerprint.
    """

    jobs: tuple["Job", ...]
    inputs: "ScenarioInputs"
    cancel_over_limit: bool
    digest: str

    @property
    def failures(self) -> "FailureTrace | None":
        return self.inputs.failures


@dataclass(frozen=True)
class ScenarioSpec:
    """A composable, seeded bundle of scenario components.

    The empty spec is the healthy baseline: it compiles to the unchanged
    stream with no disturbances and digests to ``""`` — the same cache
    identity as running without a scenario at all.
    """

    components: tuple[ScenarioComponent, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "components", tuple(self.components))
        for component in self.components:
            if not isinstance(component, ScenarioComponent):
                raise TypeError(
                    f"components must be ScenarioComponent instances, "
                    f"got {component!r}"
                )

    def with_components(self, *extra: ScenarioComponent) -> "ScenarioSpec":
        """A new spec with ``extra`` appended (order is irrelevant anyway)."""
        return replace(self, components=(*self.components, *extra))

    # -- canonical form and digest ---------------------------------------

    def canonical(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "components": [
                component.canonical()
                for component in canonical_components(self.components)
            ],
        }

    def digest(self) -> str:
        """Canonical content digest; ``""`` for the empty (healthy) spec.

        Component order and default-valued fields never change it; the
        seed and every non-default parameter do.
        """
        if not self.components:
            return ""
        payload = json.dumps(self.canonical(), sort_keys=True)
        return hashlib.sha256(payload.encode("ascii")).hexdigest()

    # -- compilation ------------------------------------------------------

    def compile(
        self, jobs: Iterable["Job"], seed: int | None = None
    ) -> CompiledScenario:
        """Fold every component into ``jobs``; pure in ``(spec, jobs, seed)``.

        ``seed`` overrides the spec's own seed (components with an
        explicit ``seed`` field are pinned regardless).  Components run in
        canonical order — phase first (arrive, augment, transform,
        disturb), canonical form second — never in list order.
        """
        from repro.core.simulator import ScenarioInputs

        spec_seed = self.seed if seed is None else seed
        state = CompileState(jobs=list(jobs), seed=spec_seed)
        occurrences: dict[str, int] = {}
        for component in canonical_components(self.components):
            index = occurrences.get(component.kind, 0)
            occurrences[component.kind] = index + 1
            state.component_seed = component_seed(
                spec_seed, component.kind, index
            )
            component.apply(state)
        return CompiledScenario(
            jobs=tuple(state.jobs),
            inputs=ScenarioInputs(
                cancellations=tuple(state.cancellations),
                failures=state.failures,
                recovery=state.recovery,
            ),
            cancel_over_limit=state.cancel_over_limit,
            digest=self.digest(),
        )

    # -- JSON -------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "components": [c.to_dict() for c in self.components],
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        if not isinstance(payload, Mapping):
            raise ValueError(
                f"a scenario spec must be a JSON object, got {type(payload).__name__}"
            )
        unknown = set(payload) - {"seed", "components"}
        if unknown:
            raise ValueError(
                f"unknown scenario spec field(s): {', '.join(sorted(unknown))}"
            )
        return cls(
            components=tuple(
                component_from_dict(item)
                for item in payload.get("components", ())
            ),
            seed=int(payload.get("seed", 0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))


def spec_from_legacy(
    *,
    failures: "FailureTrace | None" = None,
    recovery: str | None = None,
) -> ScenarioSpec | None:
    """Translate the engine's legacy ``failures=``/``recovery=`` keywords.

    Returns ``None`` when both are absent (no scenario), otherwise a spec
    whose single :class:`~repro.scenarios.components.FailureModel` carries
    the trace verbatim — compiling it rebuilds a byte-identical
    :class:`~repro.failures.trace.FailureTrace` (equal fingerprint), so
    legacy callers and spec callers share one cache identity.
    """
    from repro.scenarios.components import FailureModel

    if failures is None and recovery is None:
        return None
    triples: tuple[tuple[float, float, int], ...] = ()
    if failures is not None:
        triples = tuple((f.down_time, f.up_time, f.nodes) for f in failures)
    return ScenarioSpec((FailureModel(trace=triples, recovery=recovery),))

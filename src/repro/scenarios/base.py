"""Component contract of the scenario algebra.

A scenario is an *algebra of seeded event-stream components*: each
component is a small frozen dataclass that declares

* a unique ``kind`` string (the JSON discriminator and registry key),
* a ``phase`` — the fixed pipeline stage it runs in — and
* a pure ``apply(state)`` that folds the component into the
  :class:`CompileState`.

Order independence is structural, not accidental: components execute in
*canonical* order (phase first, then the sorted canonical form), never in
the order the user listed them, so ``ScenarioSpec((a, b))`` and
``ScenarioSpec((b, a))`` compile byte-identically and share one cache
digest.  Seeds follow the same rule — a component without an explicit
``seed`` derives one from ``(spec seed, kind, occurrence index in
canonical order)``, so permuting the component list never reshuffles any
random stream.

The registry is open: registering a new component kind (one dataclass
with ``kind``, ``phase`` and ``apply``) is all it takes for a new
disturbance to flow through the simulator, the engine, the cache and the
CLI — none of those layers branch on component types.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, ClassVar, Iterator, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.job import Job
    from repro.core.simulator import Cancellation
    from repro.failures.trace import FailureTrace

#: Pipeline stages, in execution order.  ``arrive`` components replace
#: the base stream (closed-loop populations), ``augment`` ones add jobs
#: to it (flash crowds), ``transform`` ones rewrite job fields (runtime
#: variability), ``disturb`` ones attach external events to the final
#: stream (cancellations, failures).  Disturbances therefore always see
#: the fully-assembled stream, whatever order the user wrote the spec in.
PHASES = ("arrive", "augment", "transform", "disturb")

_PHASE_INDEX = {name: index for index, name in enumerate(PHASES)}

#: kind -> component class; populated by :func:`register_component`.
COMPONENT_KINDS: dict[str, type["ScenarioComponent"]] = {}


def register_component(cls: type["ScenarioComponent"]) -> type["ScenarioComponent"]:
    """Class decorator: enter ``cls`` into the kind registry."""
    kind = getattr(cls, "kind", None)
    if not isinstance(kind, str) or not kind:
        raise TypeError(f"{cls.__name__} must declare a non-empty 'kind' string")
    if cls.phase not in _PHASE_INDEX:
        raise TypeError(
            f"{cls.__name__}.phase must be one of {PHASES}, got {cls.phase!r}"
        )
    if kind in COMPONENT_KINDS and COMPONENT_KINDS[kind] is not cls:
        raise ValueError(f"component kind {kind!r} is already registered")
    COMPONENT_KINDS[kind] = cls
    return cls


def component_seed(spec_seed: int, kind: str, occurrence: int) -> int:
    """Deterministic sub-seed for one component instance.

    A function of the spec seed, the component *kind* and its occurrence
    index among same-kind components in canonical order — never of the
    position in the user's component list, so reordering a spec cannot
    reshuffle any component's random stream.
    """
    material = f"{spec_seed}:{kind}:{occurrence}".encode("ascii")
    return int.from_bytes(hashlib.sha256(material).digest()[:8], "big")


@dataclass
class CompileState:
    """Mutable accumulator a spec folds its components into.

    ``component_seed`` is refreshed by :meth:`ScenarioSpec.compile` before
    each ``apply`` call — the derived (or explicit) seed of the component
    currently executing.
    """

    jobs: list["Job"]
    seed: int
    component_seed: int = 0
    cancellations: list["Cancellation"] = dataclasses.field(default_factory=list)
    failures: "FailureTrace | None" = None
    recovery: str | None = None
    cancel_over_limit: bool = False


class ScenarioComponent:
    """Base of every scenario component (frozen dataclasses only).

    Subclasses declare ``kind``/``phase`` class vars and implement
    ``apply``.  ``FLOAT_FIELDS`` names fields normalized to float on
    construction so JSON integers (``"at": 100``) and Python floats
    (``at=100.0``) canonicalize — and digest — identically.
    """

    kind: ClassVar[str] = ""
    phase: ClassVar[str] = ""
    FLOAT_FIELDS: ClassVar[tuple[str, ...]] = ()

    def __post_init__(self) -> None:
        for name in self.FLOAT_FIELDS:
            value = getattr(self, name)
            if value is not None and not isinstance(value, float):
                object.__setattr__(self, name, float(value))

    def apply(self, state: CompileState) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- canonical form --------------------------------------------------

    def params(self) -> dict[str, Any]:
        """Every field, as JSON-serializable values."""
        out: dict[str, Any] = {}
        for field in dataclasses.fields(self):  # type: ignore[arg-type]
            out[field.name] = _jsonable(getattr(self, field.name))
        return out

    def canonical(self) -> dict[str, Any]:
        """``{"kind": ..., **non-default params}`` — the digest form.

        Default-valued fields are dropped, so explicitly spelling out a
        default (``CancellationModel(fraction=0.1, seed=None)`` vs
        ``CancellationModel(fraction=0.1)``) never changes a digest.
        """
        out: dict[str, Any] = {"kind": self.kind}
        for field in dataclasses.fields(self):  # type: ignore[arg-type]
            value = getattr(self, field.name)
            if field.default is not dataclasses.MISSING and value == field.default:
                continue
            if (
                field.default_factory is not dataclasses.MISSING  # type: ignore[misc]
                and value == field.default_factory()  # type: ignore[misc]
            ):
                continue
            out[field.name] = _jsonable(value)
        return out

    def sort_key(self) -> tuple[int, str]:
        return (
            _PHASE_INDEX[self.phase],
            json.dumps(self.canonical(), sort_keys=True),
        )

    # -- JSON ------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return self.canonical()

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioComponent":
        fields = {f.name for f in dataclasses.fields(cls)}  # type: ignore[arg-type]
        kwargs = {}
        for name, value in payload.items():
            if name == "kind":
                continue
            if name not in fields:
                raise ValueError(
                    f"unknown field {name!r} for scenario component "
                    f"{cls.kind!r}; known fields: {', '.join(sorted(fields))}"
                )
            kwargs[name] = value
        return cls(**kwargs)  # type: ignore[call-arg]


def _jsonable(value: Any) -> Any:
    """Tuples become lists so canonical forms survive a JSON round trip."""
    if isinstance(value, tuple):
        return [_jsonable(item) for item in value]
    return value


def component_from_dict(payload: Mapping[str, Any]) -> ScenarioComponent:
    """Rebuild one component from its JSON form (``kind`` discriminates)."""
    kind = payload.get("kind")
    try:
        cls = COMPONENT_KINDS[kind]  # type: ignore[index]
    except KeyError:
        raise ValueError(
            f"unknown scenario component kind {kind!r}; registered kinds: "
            f"{', '.join(sorted(COMPONENT_KINDS))}"
        ) from None
    return cls.from_dict(payload)


def canonical_components(
    components: Iterator[ScenarioComponent] | tuple[ScenarioComponent, ...],
) -> tuple[ScenarioComponent, ...]:
    """Components in execution order: phase first, canonical form second."""
    return tuple(sorted(components, key=lambda c: c.sort_key()))

"""The scenario algebra: one seeded, composable disturbance DSL.

A :class:`ScenarioSpec` bundles order-independent event-stream components
— arrivals, flash crowds, runtime variability, cancellations, failures —
and compiles them into the simulator's
:class:`~repro.core.simulator.ScenarioInputs` plus the final job stream::

    from repro.scenarios import (
        CancellationModel, FailureModel, LoadSurge, ScenarioSpec,
    )

    spec = ScenarioSpec(
        (
            FailureModel(mtbf=40_000.0, mttr=1_800.0, recovery="resubmit"),
            LoadSurge(at=3_600.0, duration=900.0, count=80),
            CancellationModel(fraction=0.05),
        ),
        seed=7,
    )
    compiled = spec.compile(jobs)          # pure in (spec, jobs, seed)
    engine.run(jobs, scenario=spec)        # digest enters every fingerprint

Equal specs digest equally regardless of component order or spelled-out
defaults, so the content-addressed cache, run journals and ``--resume``
all work unchanged for any component — including ones registered after
the fact (see :mod:`repro.scenarios.base`).
"""

from repro.scenarios.base import (
    COMPONENT_KINDS,
    PHASES,
    CompileState,
    ScenarioComponent,
    component_seed,
    register_component,
)
from repro.scenarios.components import (
    ArrivalModel,
    CancellationModel,
    FailureModel,
    FeedbackUsers,
    LoadSurge,
    RuntimeVariability,
)
from repro.scenarios.spec import CompiledScenario, ScenarioSpec, spec_from_legacy

__all__ = [
    "ArrivalModel",
    "COMPONENT_KINDS",
    "CancellationModel",
    "CompileState",
    "CompiledScenario",
    "FailureModel",
    "FeedbackUsers",
    "LoadSurge",
    "PHASES",
    "RuntimeVariability",
    "ScenarioComponent",
    "ScenarioSpec",
    "component_seed",
    "register_component",
    "spec_from_legacy",
]

"""Figures 1 and 2: Pareto-optimal selection and the on-line/off-line region.

Figure 1 shows candidate schedules in criterion space with the
Pareto-optimal ones marked and ranked; Figure 2 sketches the containment of
the on-line achievable region inside the off-line one.  These benchmarks
regenerate both pictures from real simulation data.
"""

from repro.experiments.paper import ctc_workload
from repro.metrics.objectives import (
    average_response_time,
    average_weighted_response_time,
)
from repro.policy import ParetoPoint, fit_linear_objective, pareto_front
from repro.policy.regions import achievable_region
from repro.policy.rules import Criterion
from repro.schedulers.registry import paper_configurations, build_scheduler
from repro.core.simulator import simulate

CRITERIA = [
    Criterion("ART", average_response_time),
    Criterion("AWRT", average_weighted_response_time),
]


def test_fig1_pareto_selection(benchmark):
    """Candidate schedules -> Pareto front -> ranked -> objective synthesis."""

    def build():
        jobs = ctc_workload(600, seed=31)
        points = []
        for config in paper_configurations():
            result = simulate(jobs, build_scheduler(config, 256), 256)
            points.append(
                ParetoPoint(
                    label=config.key,
                    values=tuple(c.evaluate(result.schedule) for c in CRITERIA),
                )
            )
        front = pareto_front(points, CRITERIA)
        return points, front

    points, front = benchmark.pedantic(build, rounds=1, iterations=1)

    print("\nFigure 1. Candidate schedules in (ART, AWRT) space")
    front_labels = {p.label for p in front}
    for p in sorted(points, key=lambda q: q.values[0]):
        marker = "*" if p.label in front_labels else " "
        print(f"  [{marker}] {p.label:<24} ART={p.values[0]:10.0f}  AWRT={p.values[1]:.3E}")
    print(f"  ({len(front)} Pareto-optimal of {len(points)}; * marks the front)")

    assert 1 <= len(front) <= len(points)
    # Synthesis step: rank by ART and fit a consistent scalar objective.
    ranked = sorted(points, key=lambda p: p.values[0])
    ranked_points = [
        ParetoPoint(p.label, p.values, rank=len(ranked) - 1 - i)
        for i, p in enumerate(ranked)
    ]
    objective = fit_linear_objective(ranked_points, CRITERIA)
    assert sum(objective.weights) > 0


def test_fig2_online_vs_offline_region(benchmark):
    """The off-line (exact-knowledge) front envelops the on-line one."""

    def build():
        jobs = ctc_workload(600, seed=32)
        return achievable_region(jobs, CRITERIA, total_nodes=256)

    region = benchmark.pedantic(build, rounds=1, iterations=1)

    print("\nFigure 2. On-line versus off-line achievable region")
    print(f"  on-line points:  {len(region.online_points)}  front: {len(region.online_front)}")
    print(f"  off-line points: {len(region.offline_points)}  front: {len(region.offline_front)}")
    best_on = min(p.values[0] for p in region.online_points)
    best_off = min(p.values[0] for p in region.offline_points)
    print(f"  best on-line ART:  {best_on:.0f}")
    print(f"  best off-line ART: {best_off:.0f}")

    # The containment of Figure 2: exact knowledge extends the reachable
    # region (equality possible for estimate-blind algorithms).
    assert best_off <= best_on * 1.02

"""Dispatch-overhead benchmarks for the parallel experiment engine.

The engine fans the paper's 13-cell grid out over a process pool; before
the workload store, every cell's submission re-pickled the full job tuple.
These benchmarks measure what the zero-copy path saves:

* **payload bytes per cell** — pickled job tuple (legacy) vs the 64-char
  digest (store), with the packed buffer shipped once per pool via the
  worker initializer;
* **pack / unpack / fingerprint throughput** — the fixed costs the store
  adds on the way in;
* **cold pool vs warm store dispatch** (script mode) — wall clock of a
  real pool round-trip with and without the store;
* **journal append** — the fsynced per-cell cost of the run journal, the
  price every journaled cell pays for crash tolerance;
* **remote dispatch latency** — one length-prefixed, checksummed frame
  round trip to an in-thread worker server: the pure per-cell tax of the
  remote execution backend's wire protocol;
* **object-store round trip** — one PUT + integrity-verified GET of a
  representative cache entry against the in-process S3 stub: the
  per-entry tax of the durable object-store fleet cache (HTTP framing,
  checksum stamping and re-verification included).

Run under pytest-benchmark for statistics, or as a script for the CI
perf-smoke baseline::

    PYTHONPATH=src python benchmarks/bench_engine_overhead.py --bench-json BENCH_engine.json
"""

import argparse
import json
import pickle
import random
import tempfile
import time
from pathlib import Path

from repro.core.job import Job
from repro.core.packing import fingerprint_packed, pack_jobs, unpack_jobs
from repro.experiments.engine import fingerprint_jobs

#: Cells in the paper's grid — how many times the legacy path re-pickles.
N_CELLS = 13
N_JOBS = 5_000


def synthetic_workload(n: int = N_JOBS, seed: int = 0) -> list[Job]:
    """A deterministic n-job stream shaped like the CTC stand-in."""
    rng = random.Random(seed)
    jobs = []
    clock = 0.0
    for job_id in range(n):
        clock += rng.expovariate(1.0 / 90.0)
        runtime = rng.uniform(1.0, 5e4)
        jobs.append(
            Job(
                job_id=job_id,
                submit_time=clock,
                nodes=rng.randint(1, 256),
                runtime=runtime,
                estimate=runtime * rng.uniform(1.0, 8.0),
                user=rng.randint(0, 40),
            )
        )
    return jobs


def payload_bytes(jobs: list[Job]) -> dict[str, float]:
    """Dispatch bytes over a full grid: legacy tuple vs digest + one pack."""
    packed = pack_jobs(jobs)
    digest = fingerprint_packed(packed)
    legacy_per_cell = len(pickle.dumps(tuple(jobs), protocol=pickle.HIGHEST_PROTOCOL))
    store_per_cell = len(pickle.dumps(digest, protocol=pickle.HIGHEST_PROTOCOL))
    store_one_time = len(pickle.dumps(packed, protocol=pickle.HIGHEST_PROTOCOL))
    return {
        "legacy_bytes_per_cell": legacy_per_cell,
        "store_bytes_per_cell": store_per_cell,
        "store_one_time_bytes": store_one_time,
        "legacy_grid_bytes": legacy_per_cell * N_CELLS,
        "store_grid_bytes": store_per_cell * N_CELLS + store_one_time,
        "per_cell_reduction_x": legacy_per_cell / store_per_cell,
        "grid_reduction_x": (legacy_per_cell * N_CELLS)
        / (store_per_cell * N_CELLS + store_one_time),
    }


# -- pytest-benchmark entry points -----------------------------------------------


def test_pack_jobs_5k(benchmark):
    jobs = synthetic_workload()
    packed = benchmark(pack_jobs, jobs)
    assert len(packed) == len(jobs)


def test_unpack_jobs_5k(benchmark):
    packed = pack_jobs(synthetic_workload())
    jobs = benchmark(unpack_jobs, packed)
    assert len(jobs) == len(packed)


def test_fingerprint_packed_5k(benchmark):
    jobs = synthetic_workload()
    packed = pack_jobs(jobs)
    digest = benchmark(fingerprint_packed, packed)
    assert digest == fingerprint_jobs(jobs)


def test_pickle_roundtrip_packed_5k(benchmark):
    packed = pack_jobs(synthetic_workload())

    def roundtrip():
        return pickle.loads(pickle.dumps(packed, protocol=pickle.HIGHEST_PROTOCOL))

    out = benchmark(roundtrip)
    assert len(out) == len(packed)


def test_dispatch_payload_reduced_10x():
    """The acceptance bar: per-cell dispatch bytes shrink >= 10x on 5k jobs."""
    stats = payload_bytes(synthetic_workload())
    print(
        f"\nlegacy={stats['legacy_bytes_per_cell']:.0f} B/cell  "
        f"store={stats['store_bytes_per_cell']:.0f} B/cell  "
        f"reduction={stats['per_cell_reduction_x']:.0f}x "
        f"(grid incl. one-time pack: {stats['grid_reduction_x']:.1f}x)"
    )
    assert stats["per_cell_reduction_x"] >= 10.0
    assert stats["grid_reduction_x"] >= 10.0


# -- run-journal append cost ------------------------------------------------------


def measure_journal_append(records: int = 200) -> float:
    """Seconds per fsynced journal record (the per-cell crash-tolerance tax).

    Each grid cell adds a handful of journal records (scheduled, started,
    completed); this measures one append including the fsync, so the
    engine's journaling overhead per 13-cell grid is roughly
    ``3 * 13 * journal_append_per_record``.
    """
    from repro.experiments.journal import RunJournal, manifest_for

    with tempfile.TemporaryDirectory(prefix="repro-bench-journal-") as tmp:
        manifest = manifest_for(
            workload_digest="b" * 16,
            configs=["bench/easy"],
            total_nodes=256,
            weighted=False,
            recompute_threshold=2.0 / 3.0,
            failures_digest="",
            recovery="",
            cache_version=0,
            workload_name="bench",
        )
        path = Path(tmp) / "bench.jsonl"
        with RunJournal.create(path, manifest) as journal:
            t0 = time.perf_counter()
            for i in range(records):
                journal.record_cell(
                    "bench/easy", "completed", fingerprint="b" * 64,
                    objective=float(i),
                )
            elapsed = time.perf_counter() - t0
    return elapsed / records


def test_journal_append_fsynced(benchmark):
    from repro.experiments.journal import RunJournal, manifest_for

    manifest = manifest_for(
        workload_digest="b" * 16,
        configs=["bench/easy"],
        total_nodes=256,
        weighted=False,
        recompute_threshold=2.0 / 3.0,
        failures_digest="",
        recovery="",
        cache_version=0,
        workload_name="bench",
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-journal-") as tmp:
        with RunJournal.create(Path(tmp) / "bench.jsonl", manifest) as journal:
            benchmark(
                journal.record_cell,
                "bench/easy",
                "completed",
                fingerprint="b" * 64,
                objective=1.0,
            )


# -- real pool round-trips (script mode) -----------------------------------------


def _legacy_cell(payload):
    jobs = payload
    return len(jobs)


def _store_cell(digest):
    from repro.experiments.workload_store import resolve_worker_workload

    return len(resolve_worker_workload(digest))


def measure_pool_dispatch(jobs: list[Job], use_store: bool, workers: int = 2) -> float:
    """Wall clock of one grid's worth of no-op cells through a fresh pool.

    Isolates dispatch overhead: each task only deserializes its payload
    (and, store path, resolves the digest from the worker cache) — the
    difference between the two modes is pure serialization cost.
    """
    from concurrent.futures import ProcessPoolExecutor

    from repro.experiments.backends.pool import pool_context
    from repro.experiments.workload_store import WorkloadStore, seed_worker_cache

    kwargs = {}
    if use_store:
        store = WorkloadStore()
        packed = store.register(fingerprint_jobs(jobs), jobs)
        digest = fingerprint_packed(packed)
        kwargs = {"initializer": seed_worker_cache, "initargs": (store.entries(digest),)}
        task, payload = _store_cell, digest
    else:
        task, payload = _legacy_cell, tuple(jobs)

    t0 = time.perf_counter()
    with ProcessPoolExecutor(
        max_workers=workers, mp_context=pool_context(), **kwargs
    ) as pool:
        counts = list(pool.map(task, [payload] * N_CELLS))
    elapsed = time.perf_counter() - t0
    assert counts == [len(jobs)] * N_CELLS
    return elapsed


def measure_remote_dispatch(frames: int = 200) -> float:
    """Seconds per remote protocol round trip (the per-cell fleet tax).

    An in-thread :class:`WorkerServer` answers CACHE_GET probes over a
    real TCP socket: each round trip pays the full frame cost — pickle,
    checksum, send, recv, verify — without any simulation time, so this
    is the pure dispatch latency a remote cell adds over a local one.
    """
    import threading

    from repro.experiments.backends import protocol as proto
    from repro.experiments.backends.worker import WorkerServer

    server = WorkerServer("127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        import socket

        sock = socket.create_connection((server.host, server.port), timeout=5.0)
        try:
            proto.send_frame(sock, proto.Kind.HELLO, {
                "version": proto.PROTOCOL_VERSION, "heartbeat_interval": None,
            })
            assert proto.recv_frame(sock).kind is proto.Kind.WELCOME
            t0 = time.perf_counter()
            for _ in range(frames):
                proto.send_frame(sock, proto.Kind.CACHE_GET, "ab" * 32)
                assert proto.recv_frame(sock).kind is proto.Kind.CACHE_MISS
            elapsed = time.perf_counter() - t0
            proto.send_frame(sock, proto.Kind.BYE, None)
        finally:
            sock.close()
    finally:
        server.close()
    return elapsed / frames


def measure_objectstore_roundtrip(entries: int = 50) -> float:
    """Seconds per object-store PUT + verified GET of one cache entry.

    Drives :class:`ObjectStoreCacheStore` against the in-process S3 stub
    (loopback HTTP, no chaos) with a payload shaped like a real cell
    entry, so the number covers the whole durable-cache tax per entry:
    request signing/framing, the checksum stamp on the way in and the
    sha256 + fingerprint re-verification on the way out.
    """
    import hashlib

    from repro.experiments.backends.objectstore import ObjectStoreCacheStore
    from repro.experiments.backends.s3stub import S3StubServer

    text = json.dumps(
        {"version": 4, "objective": 1.25, "makespan": 3.5e5,
         "trace": [[i, i * 0.5] for i in range(200)]}
    )
    with S3StubServer() as stub:
        store = ObjectStoreCacheStore(
            stub.endpoint, "bench-cache", prefix="grids", cooldown=30.0
        )
        t0 = time.perf_counter()
        for i in range(entries):
            fingerprint = hashlib.sha256(str(i).encode()).hexdigest()
            store.save(fingerprint, text)
            assert store.load(fingerprint) == text
        elapsed = time.perf_counter() - t0
        assert store.errors == 0 and store.quarantined == []
        store.close()
    return elapsed / entries


def test_objectstore_roundtrip(benchmark):
    import hashlib

    from repro.experiments.backends.objectstore import ObjectStoreCacheStore
    from repro.experiments.backends.s3stub import S3StubServer

    text = json.dumps({"version": 4, "objective": 1.25})
    with S3StubServer() as stub:
        store = ObjectStoreCacheStore(
            stub.endpoint, "bench-cache", prefix="grids", cooldown=30.0
        )
        fingerprint = hashlib.sha256(b"bench").hexdigest()

        def roundtrip():
            store.save(fingerprint, text)
            return store.load(fingerprint)

        assert benchmark(roundtrip) == text
        store.close()


def collect_measurements(rounds: int = 3) -> dict[str, float]:
    jobs = synthetic_workload()
    packed = pack_jobs(jobs)

    def best_of(fn) -> float:
        fn()
        best = float("inf")
        for _ in range(rounds):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    measurements = {
        "pack_jobs_5k": best_of(lambda: pack_jobs(jobs)),
        "unpack_jobs_5k": best_of(lambda: unpack_jobs(packed)),
        "fingerprint_packed_5k": best_of(lambda: fingerprint_packed(packed)),
        "fingerprint_jobs_5k": best_of(lambda: fingerprint_jobs(jobs)),
        "pool_dispatch_legacy": measure_pool_dispatch(jobs, use_store=False),
        "pool_dispatch_store": measure_pool_dispatch(jobs, use_store=True),
        "journal_append_per_record": measure_journal_append(),
        "remote_dispatch_per_frame": measure_remote_dispatch(),
        "objectstore_put_get_per_entry": measure_objectstore_roundtrip(),
    }
    measurements.update(payload_bytes(jobs))
    return measurements


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bench-json",
        type=Path,
        default=None,
        help="write measurements to this JSON file (perf-smoke baseline)",
    )
    parser.add_argument("--rounds", type=int, default=3)
    args = parser.parse_args(argv)

    measurements = collect_measurements(rounds=args.rounds)
    for name, value in measurements.items():
        unit = "" if "bytes" in name or name.endswith("_x") else " s"
        print(f"{name}: {value:.6g}{unit}")
    if args.bench_json is not None:
        args.bench_json.write_text(
            json.dumps({"suite": "engine", "seconds": measurements}, indent=2) + "\n"
        )
        print(f"wrote {args.bench_json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

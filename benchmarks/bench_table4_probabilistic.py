"""Table 4 / Figure 5: average response time, probability-distributed workload.

"The artificial workload based on probability distributions basically
supports the results derived with the CTC workload" — the assertions mirror
Table 3's, with the one difference the paper highlights: EASY beats
conservative backfilling for PSRS/SMART in the unweighted case here.
"""

from benchmarks.conftest import print_reports


def test_table4_unweighted(benchmark, experiment_cache):
    result = benchmark.pedantic(
        lambda: experiment_cache("table4", ("unweighted",)), rounds=1, iterations=1
    )
    print_reports(result)
    grid = result.grids["unweighted"]
    fcfs_list = grid.cells["fcfs/list"].objective
    for key, cell in grid.cells.items():
        if key != "fcfs/list":
            assert cell.objective < fcfs_list
    ref = grid.reference.objective
    for row in ("psrs", "smart-ffia", "smart-nfiw"):
        assert grid.cells[f"{row}/easy"].objective < ref
    assert result.agreement["unweighted"] > 0.7


def test_table4_weighted(benchmark, experiment_cache):
    result = benchmark.pedantic(
        lambda: experiment_cache("table4", ("weighted",)), rounds=1, iterations=1
    )
    print_reports(result)
    grid = result.grids["weighted"]
    gg = grid.cells["gg/list"].objective
    for key, cell in grid.cells.items():
        if key != "gg/list":
            assert gg <= cell.objective * 1.02
    assert result.agreement["weighted"] > 0.8

"""Benchmarks for the beyond-the-grid subsystems.

The paper's loose ends, each quantified on the CTC-like workload:

* gang scheduling ([15]) against the space-sharing grid;
* the day/night combined scheduler (Section 7's "evaluate the effect of
  combining the selected algorithms");
* Example 4's drain windows under three estimate-accuracy regimes;
* the Section 2.3 lower-bound headroom of the paper's winners;
* the Section 2.4 closed-loop coupling between scheduler quality and
  elicited workload.
"""

from repro.core.simulator import simulate
from repro.experiments.paper import ctc_workload
from repro.gang import fcfs_gang_schedule
from repro.metrics import (
    average_response_time,
    improvement_potential,
    utilisation,
    windowed_art,
    windowed_awrt,
)
from repro.schedulers import (
    WEEKDAY_DAYTIME,
    DrainingScheduler,
    FCFSScheduler,
    GareyGrahamScheduler,
    OrderedQueueScheduler,
    SubmitOrderPolicy,
    example5_combined_scheduler,
)
from repro.schedulers.disciplines import EasyBackfill
from repro.schedulers.drain import example4_reservations
from repro.schedulers.smart import SmartOrderPolicy, SmartVariant
from repro.schedulers.weights import unit_weight
from repro.workloads.feedback import default_population, run_closed_loop
from repro.workloads.transforms import with_exact_estimates, with_scaled_estimates

NODES = 256
SCALE = 800


def test_gang_vs_space_sharing(benchmark):
    jobs = ctc_workload(SCALE, seed=41)

    def run():
        plain = simulate(jobs, FCFSScheduler.plain(), NODES)
        easy = simulate(jobs, FCFSScheduler.with_easy(), NODES)
        gang2 = fcfs_gang_schedule(jobs, NODES, max_slots=2)
        gang_inf = fcfs_gang_schedule(jobs, NODES)
        return {
            "fcfs": average_response_time(plain.schedule),
            "fcfs+easy": average_response_time(easy.schedule),
            "gang-2": gang2.average_response_time(),
            "gang-inf": gang_inf.average_response_time(),
        }

    arts = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nGang scheduling vs space sharing (unweighted ART, CTC workload)")
    for label, value in arts.items():
        print(f"  {label:<10} {value:12.0f}")
    # [15]'s claim: gang scheduling improves plain FCFS.
    assert arts["gang-2"] < arts["fcfs"]
    # Unbounded time sharing thrashes relative to a bounded MPL.
    assert arts["gang-2"] < arts["gang-inf"]


def test_combined_scheduler_regimes(benchmark):
    jobs = ctc_workload(SCALE, seed=42)

    def smart_easy():
        return OrderedQueueScheduler(
            SmartOrderPolicy(NODES, variant=SmartVariant.FFIA, weight=unit_weight),
            EasyBackfill(),
            name="smart-easy",
        )

    def run():
        out = {}
        for label, factory in (
            ("day-winner", smart_easy),
            ("night-winner", GareyGrahamScheduler),
            ("combined", lambda: example5_combined_scheduler(NODES)),
        ):
            res = simulate(jobs, factory(), NODES)
            out[label] = (
                windowed_art(res.schedule, WEEKDAY_DAYTIME),
                windowed_awrt(res.schedule, WEEKDAY_DAYTIME),
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nCombined day/night scheduler (Section 7's final step)")
    print(f"  {'deployment':<14}{'day ART':>12}{'night AWRT':>14}")
    for label, (art, awrt) in results.items():
        print(f"  {label:<14}{art:>12.0f}{awrt:>14.3E}")
    # The combination must not be the worst deployment on either objective.
    day_arts = {k: v[0] for k, v in results.items()}
    night_awrts = {k: v[1] for k, v in results.items()}
    assert day_arts["combined"] <= max(day_arts.values())
    assert night_awrts["combined"] <= max(night_awrts.values())


def test_drain_windows_estimate_sensitivity(benchmark):
    base = ctc_workload(SCALE, seed=43)
    reservations = example4_reservations()

    def drained(jobs):
        scheduler = DrainingScheduler(SubmitOrderPolicy(), EasyBackfill(), reservations)
        return simulate(jobs, scheduler, NODES)

    def run():
        truthful = drained(with_exact_estimates(base))
        loose = drained(base)
        return {
            "truthful": utilisation(truthful.schedule, NODES),
            "loose": utilisation(loose.schedule, NODES),
        }

    utils = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nExample 4 drain windows: utilisation by estimate accuracy")
    for label, value in utils.items():
        print(f"  {label:<10} {value:8.1%}")
    # Loose estimates waste the machine ahead of every drain.
    assert utils["truthful"] >= utils["loose"]


def test_lower_bound_headroom(benchmark):
    jobs = ctc_workload(SCALE, seed=44)

    def run():
        out = {}
        for label, factory in (
            ("fcfs+easy", FCFSScheduler.with_easy),
            ("gg", GareyGrahamScheduler),
        ):
            res = simulate(jobs, factory(), NODES)
            out[label] = improvement_potential(res.schedule, jobs, NODES)
        return out

    potentials = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nSection 2.3 lower-bound headroom (unweighted)")
    for label, p in potentials.items():
        print(f"  {label:<10} measured={p.measured:10.0f}  bound={p.lower_bound:10.0f}"
              f"  ratio={p.ratio:5.2f}  headroom={p.headroom:5.1%}")
    for p in potentials.values():
        assert p.ratio >= 1.0 - 1e-9


def test_closed_loop_coupling(benchmark):
    population = default_population(16, seed=45, mean_think_time=900.0)

    def run():
        out = {}
        for label, factory in (
            ("fcfs", FCFSScheduler.plain),
            ("gg", GareyGrahamScheduler),
        ):
            result = run_closed_loop(
                population, factory(), 128, horizon=4 * 86_400.0, seed=46
            )
            out[label] = result.total_jobs
        return out

    elicited = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nSection 2.4 closed loop: jobs elicited from the same 16 users")
    for label, count in elicited.items():
        print(f"  {label:<6} {count}")
    assert elicited["gg"] >= elicited["fcfs"]
